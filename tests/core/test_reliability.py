"""Retry policies: backoff schedule, execution, reliable measurement."""

import numpy as np
import pytest

from repro.core import RetryPolicy, measure_vector_reliably
from repro.core.reliability import NO_RETRY
from repro.netsim import FaultPlan, ProbeTimeout
from repro.proximity.landmarks import select_landmarks


class TestSchedule:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, backoff_factor=2.0, max_delay=35.0
        )
        assert policy.schedule() == (10.0, 20.0, 35.0, 35.0)
        assert policy.total_delay() == 100.0
        assert policy.delay(0) == 10.0
        assert policy.delay(10) == 35.0

    def test_no_retry_baseline_never_waits(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.schedule() == ()
        assert NO_RETRY.total_delay() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=100.0, max_delay=10.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestCall:
    def test_succeeds_after_transient_failures(self, tiny_network):
        policy = RetryPolicy(max_attempts=3, base_delay=5.0)
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise ProbeTimeout(0, 1)
            return "ok"

        start = tiny_network.clock.now
        assert policy.call(flaky, clock=tiny_network.clock) == "ok"
        assert attempts == [0, 1, 2]
        # two backoffs were slept through on the simulated clock
        assert tiny_network.clock.now == start + 5.0 + 10.0

    def test_exhaustion_reraises_last(self, tiny_network):
        policy = RetryPolicy(max_attempts=2, base_delay=1.0)

        def always_lost(attempt):
            raise ProbeTimeout(0, 1, reason=f"attempt-{attempt}")

        with pytest.raises(ProbeTimeout) as exc_info:
            policy.call(always_lost, clock=tiny_network.clock)
        assert exc_info.value.reason == "attempt-1"

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise KeyError("not a network fault")

        with pytest.raises(KeyError):
            policy.call(broken)
        assert calls == [0]

    def test_probe_retries_through_loss(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        # seed chosen so the first draw is a loss and a later one is not
        injector = tiny_network.arm_faults(FaultPlan(probe_loss_rate=0.5), seed=3)
        policy = RetryPolicy(max_attempts=8, base_delay=1.0)
        rtt = policy.probe(tiny_network, u, v)
        assert float(rtt) > 0
        assert injector.injected["fault_probe_lost"] >= 1
        assert policy.probe_alive(tiny_network, u, v)
        tiny_network.disarm_faults()


class TestReliableMeasurement:
    def test_matches_plain_measurement_without_faults(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 6, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        vector = measure_vector_reliably(tiny_network, landmarks, host)
        plain = tiny_network.rtt_many(host, landmarks.hosts)
        assert np.allclose(vector, plain)

    def test_reprobes_lost_entries(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 8, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=0.4), seed=11)
        vector = measure_vector_reliably(
            tiny_network,
            landmarks,
            host,
            policy=RetryPolicy(max_attempts=6, base_delay=1.0),
        )
        assert not np.isnan(vector).any()
        assert (vector >= 0).all()
        tiny_network.disarm_faults()

    def test_all_silent_raises(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 4, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=1.0), seed=0)
        with pytest.raises(ProbeTimeout):
            measure_vector_reliably(
                tiny_network, landmarks, host, policy=RetryPolicy(max_attempts=2)
            )
        tiny_network.disarm_faults()
