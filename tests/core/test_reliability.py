"""Retry policies: backoff schedule, execution, reliable measurement."""

import numpy as np
import pytest

from repro.core import RetryPolicy, measure_vector_reliably
from repro.core.reliability import NO_RETRY
from repro.core.telemetry import Telemetry
from repro.netsim import FaultPlan, ProbeTimeout
from repro.netsim.events import EventScheduler
from repro.proximity.landmarks import select_landmarks


class TestSchedule:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, backoff_factor=2.0, max_delay=35.0
        )
        assert policy.schedule() == (10.0, 20.0, 35.0, 35.0)
        assert policy.total_delay() == 100.0
        assert policy.delay(0) == 10.0
        assert policy.delay(10) == 35.0

    def test_no_retry_baseline_never_waits(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.schedule() == ()
        assert NO_RETRY.total_delay() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=100.0, max_delay=10.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestCall:
    def test_succeeds_after_transient_failures(self, tiny_network):
        policy = RetryPolicy(max_attempts=3, base_delay=5.0)
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise ProbeTimeout(0, 1)
            return "ok"

        start = tiny_network.clock.now
        assert policy.call(flaky, clock=tiny_network.clock) == "ok"
        assert attempts == [0, 1, 2]
        # two backoffs were slept through on the simulated clock
        assert tiny_network.clock.now == start + 5.0 + 10.0

    def test_exhaustion_reraises_last(self, tiny_network):
        policy = RetryPolicy(max_attempts=2, base_delay=1.0)

        def always_lost(attempt):
            raise ProbeTimeout(0, 1, reason=f"attempt-{attempt}")

        with pytest.raises(ProbeTimeout) as exc_info:
            policy.call(always_lost, clock=tiny_network.clock)
        assert exc_info.value.reason == "attempt-1"

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise KeyError("not a network fault")

        with pytest.raises(KeyError):
            policy.call(broken)
        assert calls == [0]

    def test_backoff_tracked_without_clock(self):
        """Regression: ``call`` used to skip backoff entirely when no
        clock was passed, so clockless callers silently under-reported
        recovery time."""
        policy = RetryPolicy(max_attempts=3, base_delay=5.0)

        def flaky(attempt):
            if attempt < 2:
                raise ProbeTimeout(0, 1)
            return "ok"

        assert policy.call(flaky) == "ok"  # note: clock=None
        assert policy.backoff_slept_ms == 5.0 + 10.0
        assert policy.retries == 2
        policy.reset_accounting()
        assert policy.backoff_slept_ms == 0.0
        assert policy.retries == 0

    def test_backoff_charged_to_telemetry(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock)
        policy = RetryPolicy(max_attempts=3, base_delay=5.0)

        def always_lost(attempt):
            raise ProbeTimeout(0, 1)

        with pytest.raises(ProbeTimeout):
            policy.call(always_lost, clock=clock, telemetry=telemetry)
        assert telemetry.counters["backoff_ms"] == 15.0
        assert telemetry.event_counts["retry"] == 2
        assert clock.now == 15.0

    def test_probe_advances_network_clock_and_telemetry(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=1.0), seed=0)
        policy = RetryPolicy(max_attempts=3, base_delay=7.0)
        start = tiny_network.clock.now
        backoff_before = tiny_network.telemetry.counters["backoff_ms"]
        with pytest.raises(ProbeTimeout):
            policy.probe(tiny_network, u, v)
        assert tiny_network.clock.now == start + 7.0 + 14.0
        assert (
            tiny_network.telemetry.counters["backoff_ms"] - backoff_before
            == 21.0
        )
        tiny_network.disarm_faults()

    def test_probe_retries_through_loss(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        # seed chosen so the first draw is a loss and a later one is not
        injector = tiny_network.arm_faults(FaultPlan(probe_loss_rate=0.5), seed=3)
        policy = RetryPolicy(max_attempts=8, base_delay=1.0)
        rtt = policy.probe(tiny_network, u, v)
        assert float(rtt) > 0
        assert injector.injected["fault_probe_lost"] >= 1
        assert policy.probe_alive(tiny_network, u, v)
        tiny_network.disarm_faults()


class TestReliableMeasurement:
    def test_matches_plain_measurement_without_faults(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 6, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        vector = measure_vector_reliably(tiny_network, landmarks, host)
        plain = tiny_network.rtt_many(host, landmarks.hosts)
        assert np.allclose(vector, plain)

    def test_reprobes_lost_entries(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 8, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=0.4), seed=11)
        vector = measure_vector_reliably(
            tiny_network,
            landmarks,
            host,
            policy=RetryPolicy(max_attempts=6, base_delay=1.0),
        )
        assert not np.isnan(vector).any()
        assert (vector >= 0).all()
        tiny_network.disarm_faults()

    def test_all_silent_raises(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 4, rng)
        host = int(tiny_network.topology.stub_nodes()[0])
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=1.0), seed=0)
        with pytest.raises(ProbeTimeout):
            measure_vector_reliably(
                tiny_network, landmarks, host, policy=RetryPolicy(max_attempts=2)
            )
        tiny_network.disarm_faults()


class ScriptedNetwork:
    """Replays preset (rtts, spiked) responses for rtt_many_detailed."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.clock = EventScheduler()
        self.telemetry = Telemetry(clock=self.clock)

    def rtt_many_detailed(self, host, hosts, category="rtt_probe"):
        rtts, spiked = self.responses.pop(0)
        assert len(rtts) == len(hosts)
        return (
            np.asarray(rtts, dtype=np.float64),
            np.asarray(spiked, dtype=bool),
        )


class FakeLandmarks:
    def __init__(self, n):
        self.hosts = np.arange(n, dtype=np.int64)


class TestSpikedFill:
    def test_fill_prefers_worst_unspiked_measurement(self):
        """Regression: silent entries were filled with ``nanmax`` of the
        whole vector, so one latency-spiked outlier became the
        pessimistic estimate for every lost landmark."""
        network = ScriptedNetwork(
            [
                ([5.0, 100.0, np.nan, 10.0], [False, True, False, False]),
                ([np.nan], [False]),  # the retry stays silent too
            ]
        )
        vector = measure_vector_reliably(
            network,
            FakeLandmarks(4),
            host=0,
            policy=RetryPolicy(max_attempts=2, base_delay=1.0),
        )
        # worst non-spiked answer (10.0), not the 4x spike (100.0)
        assert vector[2] == 10.0
        assert list(vector[[0, 1, 3]]) == [5.0, 100.0, 10.0]

    def test_fill_falls_back_to_spiked_max_when_nothing_clean(self):
        network = ScriptedNetwork(
            [
                ([np.nan, 50.0], [False, True]),
                ([np.nan], [False]),
            ]
        )
        vector = measure_vector_reliably(
            network,
            FakeLandmarks(2),
            host=0,
            policy=RetryPolicy(max_attempts=2, base_delay=1.0),
        )
        assert vector[0] == 50.0


class FakeClock:
    """Monotonic clock a test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCircuitBreaker:
    def make(self, threshold=3, reset=1.0):
        from repro.core.reliability import CircuitBreaker

        clock = FakeClock()
        return CircuitBreaker(threshold=threshold, reset_timeout_s=reset, clock=clock), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # this call opened it
        assert breaker.state == breaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == breaker.CLOSED  # streak broke; not 2 in a row

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        assert breaker.state == breaker.OPEN
        clock.advance(1.5)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == breaker.HALF_OPEN
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == breaker.CLOSED
        assert breaker.closes == 1
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert breaker.record_failure() is True  # straight back to open
        assert breaker.state == breaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # fresh window, not expired yet

    def test_retry_after_counts_down(self):
        breaker, clock = self.make(threshold=1, reset=2.0)
        assert breaker.retry_after_s() == 0.0  # closed
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_after_s() == pytest.approx(0.5)

    def test_validation(self):
        from repro.core.reliability import CircuitBreaker

        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=0.0)


class TestDecorrelatedJitter:
    def test_delays_stay_within_base_and_cap(self):
        import random

        from repro.core.reliability import DecorrelatedJitter

        jitter = DecorrelatedJitter(base_ms=2.0, cap_ms=50.0, rng=random.Random(7))
        delays = [jitter.next_delay() for _ in range(200)]
        assert all(2.0 <= d <= 50.0 for d in delays)
        assert max(delays) == 50.0  # the ladder does reach the cap

    def test_ladder_grows_from_previous_delay(self):
        import random

        from repro.core.reliability import DecorrelatedJitter

        jitter = DecorrelatedJitter(base_ms=2.0, cap_ms=10_000.0, rng=random.Random(3))
        prev = 2.0
        for _ in range(20):
            delay = jitter.next_delay()
            assert 2.0 <= delay <= prev * 3.0
            prev = delay

    def test_reset_returns_to_base(self):
        import random

        from repro.core.reliability import DecorrelatedJitter

        jitter = DecorrelatedJitter(base_ms=2.0, cap_ms=1000.0, rng=random.Random(5))
        for _ in range(10):
            jitter.next_delay()
        jitter.reset()
        assert jitter.next_delay() <= 6.0  # uniform(base, base*3)

    def test_validation(self):
        from repro.core.reliability import DecorrelatedJitter

        with pytest.raises(ValueError, match="base_ms"):
            DecorrelatedJitter(base_ms=0.0)
        with pytest.raises(ValueError, match="cap_ms"):
            DecorrelatedJitter(base_ms=10.0, cap_ms=5.0)


class TestAdaptiveTimeout:
    def test_cold_start_uses_the_initial_timeout(self):
        from repro.core.reliability import AdaptiveTimeout

        rto = AdaptiveTimeout(initial_s=30.0, min_s=0.25)
        assert rto.timeout() == 30.0
        assert rto.samples == 0

    def test_first_sample_seeds_jacobson_state(self):
        from repro.core.reliability import AdaptiveTimeout

        rto = AdaptiveTimeout(initial_s=30.0, min_s=0.01)
        rto.observe(0.1)
        assert rto.srtt == pytest.approx(0.1)
        assert rto.rttvar == pytest.approx(0.05)
        # srtt + 4 * rttvar = 0.3
        assert rto.timeout() == pytest.approx(0.3)

    def test_timeout_tracks_ewma_and_clamps(self):
        from repro.core.reliability import AdaptiveTimeout

        rto = AdaptiveTimeout(initial_s=30.0, min_s=0.25)
        for _ in range(50):
            rto.observe(0.001)  # 1 ms RTTs: raw RTO would be ~5 ms
        assert rto.timeout() == pytest.approx(0.25)  # clamped to the floor
        rto_hi = AdaptiveTimeout(initial_s=2.0, min_s=0.25)
        for _ in range(50):
            rto_hi.observe(10.0)  # slower than the ceiling allows
        assert rto_hi.timeout() == pytest.approx(2.0)  # clamped to max_s

    def test_karn_backoff_doubles_and_success_collapses(self):
        from repro.core.reliability import AdaptiveTimeout

        rto = AdaptiveTimeout(initial_s=8.0, min_s=0.25)
        rto.observe(0.5)
        base = rto.timeout()
        rto.backoff()
        assert rto.timeout() == pytest.approx(min(8.0, base * 2.0))
        rto.backoff()
        assert rto.timeout() == pytest.approx(min(8.0, base * 4.0))
        rto.observe(0.5)  # a fresh sample collapses the backoff
        assert rto.timeout() < base * 2.0

    def test_validation(self):
        from repro.core.reliability import AdaptiveTimeout

        with pytest.raises(ValueError, match="initial_s"):
            AdaptiveTimeout(initial_s=0.0)
        with pytest.raises(ValueError, match="min_s"):
            AdaptiveTimeout(initial_s=1.0, min_s=0.0)
        with pytest.raises(ValueError, match="max_s"):
            AdaptiveTimeout(initial_s=1.0, min_s=2.0, max_s=1.0)
        rto = AdaptiveTimeout(initial_s=1.0)
        with pytest.raises(ValueError, match="rtt_s"):
            rto.observe(-1.0)
