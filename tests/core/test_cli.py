"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out and "fig16" in out and "qos" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_flag_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        import os

        main(["--scale", "quick", "list"])
        assert os.environ["REPRO_SCALE"] == "quick"


class TestCommands:
    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "mean routing stretch" in out

    def test_run_single_figure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(["run", "gaps"]) == 0
        out = capsys.readouterr().out
        assert "softstate_stretch" in out

    def test_cluster_boots_and_verifies(self, capsys):
        code = main(
            [
                "cluster",
                "--nodes", "12",
                "--lookups", "20",
                "--rate", "4000",
                "--topo-scale", "0.25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster: 12 nodes over loopback" in out
        assert "latency: p50" in out
        assert "verify-against-sim: ok" in out

    def test_cluster_overload_flags_reach_config(self):
        from repro.cli import _cluster_config

        args = build_parser().parse_args(
            [
                "cluster",
                "--nodes", "8",
                "--mailbox-cap", "64",
                "--shed-policy", "newest",
                "--breaker-threshold", "3",
                "--no-adaptive-timeout",
            ]
        )
        config = _cluster_config(args)
        assert config.mailbox_cap == 64
        assert config.shed_policy == "newest"
        assert config.breaker_threshold == 3
        assert config.adaptive_timeout is False

    def test_cluster_overload_flag_defaults(self):
        from repro.cli import _cluster_config

        args = build_parser().parse_args(["cluster", "--nodes", "8"])
        config = _cluster_config(args)
        assert config.mailbox_cap == 1024
        assert config.shed_policy == "oldest"
        assert config.breaker_threshold == 8
        assert config.adaptive_timeout is True

    def test_cluster_mailbox_cap_zero_means_unbounded(self):
        from repro.cli import _cluster_config

        args = build_parser().parse_args(["cluster", "--mailbox-cap", "0"])
        assert _cluster_config(args).mailbox_cap is None

    def test_cluster_shards_flag_reaches_config(self):
        from repro.cli import _cluster_config

        args = build_parser().parse_args(
            ["cluster", "--nodes", "8", "--shards", "2"]
        )
        assert _cluster_config(args).shards == 2
        args = build_parser().parse_args(["cluster", "--nodes", "8"])
        assert _cluster_config(args).shards == 1

    def test_cluster_sharded_run_end_to_end(self, capsys):
        code = main(
            [
                "cluster",
                "--nodes", "12",
                "--lookups", "20",
                "--shards", "2",
                "--concurrency", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster: 12 nodes over loopback" in out
        assert "verify-against-sim: ok" in out

    def test_cluster_rejects_unknown_shed_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--shed-policy", "random"])

    def test_controller_flags_reach_configs(self):
        from repro.cli import _controller_configs

        args = build_parser().parse_args(
            [
                "controller",
                "--nodes", "16",
                "--shards", "2",
                "--host", "0.0.0.0",
                "--port", "9999",
                "--refresh", "0.25",
                "--no-check-invariants",
                "--no-recovery",
            ]
        )
        cluster_config, controller_config = _controller_configs(args)
        assert cluster_config.nodes == 16
        assert cluster_config.shards == 2
        assert controller_config.host == "0.0.0.0"
        assert controller_config.port == 9999
        assert controller_config.refresh_s == 0.25
        assert controller_config.check_invariants is False
        assert args.recovery is False

    def test_controller_flag_defaults(self):
        from repro.cli import _controller_configs

        args = build_parser().parse_args(["controller"])
        cluster_config, controller_config = _controller_configs(args)
        assert cluster_config.nodes == 64
        assert cluster_config.shards == 1
        assert controller_config.host == "127.0.0.1"
        assert controller_config.port == 8642
        assert controller_config.check_invariants is True
        assert args.recovery is True
        assert args.duration == 0.0

    def test_controller_serves_for_duration(self, capsys):
        code = main(
            [
                "controller",
                "--nodes", "8",
                "--duration", "0.5",
                "--port", "0",
                "--no-recovery",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "controller: 8 nodes over loopback" in out
        assert "serving http://127.0.0.1:" in out

    def test_cluster_status_port_flag_defaults_off(self):
        args = build_parser().parse_args(["cluster", "--nodes", "8"])
        assert args.status_port is None
        args = build_parser().parse_args(
            ["cluster", "--nodes", "8", "--status-port", "0"]
        )
        assert args.status_port == 0

    def test_run_with_profile(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(["run", "gaps", "--profile", "--profile-top", "5"]) == 0
        out = capsys.readouterr().out
        assert "softstate_stretch" in out  # the table still prints
        assert "-- profile (gaps, top 5 by cumulative) --" in out
        assert "cumulative" in out  # pstats header
