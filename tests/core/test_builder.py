"""TopologyAwareOverlay: lifecycle, routing, stretch, adaptivity."""

import numpy as np
import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network


def build(topology, policy="softstate", n=48, seed=5, **overrides):
    network = Network(topology, ManualLatencyModel())
    params = OverlayParams(
        num_nodes=n, policy=policy, landmarks=6, seed=seed, **overrides
    )
    overlay = TopologyAwareOverlay(network, params)
    overlay.build()
    return overlay


@pytest.fixture(scope="module")
def softstate_overlay(tiny_topology):
    return build(tiny_topology)


class TestBuild:
    def test_builds_requested_size(self, softstate_overlay):
        assert len(softstate_overlay) == 48

    def test_every_node_has_identity_and_publication(self, softstate_overlay):
        store = softstate_overlay.store
        for node_id in softstate_overlay.node_ids:
            assert node_id in store.registry
            assert store._published.get(node_id)

    def test_distinct_hosts(self, softstate_overlay):
        hosts = [
            softstate_overlay.ecan.can.nodes[n].host
            for n in softstate_overlay.node_ids
        ]
        assert len(set(hosts)) == len(hosts)

    def test_can_invariants_hold(self, softstate_overlay):
        softstate_overlay.ecan.can.check_invariants()

    def test_incremental_build(self, tiny_topology):
        overlay = build(tiny_topology, n=20)
        overlay.build(num_nodes=30)
        assert len(overlay) == 30

    def test_policies_share_membership_for_same_seed(self, tiny_topology):
        a = build(tiny_topology, policy="random", n=32, seed=3)
        b = build(tiny_topology, policy="optimal", n=32, seed=3)
        hosts_a = sorted(a.ecan.can.nodes[n].host for n in a.node_ids)
        hosts_b = sorted(b.ecan.can.nodes[n].host for n in b.node_ids)
        assert hosts_a == hosts_b
        zones_a = sorted(str(a.ecan.can.nodes[n].zone) for n in a.node_ids)
        zones_b = sorted(str(b.ecan.can.nodes[n].zone) for n in b.node_ids)
        assert zones_a == zones_b

    def test_unknown_policy_rejected(self, tiny_topology):
        network = Network(tiny_topology, ManualLatencyModel())
        overlay = TopologyAwareOverlay(network, OverlayParams(num_nodes=4, landmarks=4))
        with pytest.raises(ValueError):
            overlay._make_policy("nope")

    def test_describe(self, softstate_overlay):
        info = softstate_overlay.describe()
        assert info["nodes"] == 48
        assert info["policy"] == "softstate"
        assert info["map_entries"] > 0


class TestRouting:
    def test_route_between_members(self, softstate_overlay, rng):
        ids = softstate_overlay.node_ids
        for _ in range(20):
            src, dst = rng.choice(ids, size=2, replace=False)
            result, stretch = softstate_overlay.route_between(int(src), int(dst))
            assert result.success
            assert result.owner == int(dst)
            if stretch is not None:
                assert stretch >= 1.0 - 1e-9

    def test_measure_stretch_returns_sane_values(self, softstate_overlay):
        stretch = softstate_overlay.measure_stretch(samples=60)
        assert stretch.size > 0
        assert (stretch >= 1.0 - 1e-9).all()
        assert np.isfinite(stretch).all()

    def test_measure_hops(self, softstate_overlay):
        hops = softstate_overlay.measure_hops(samples=30)
        assert hops.size > 0
        assert (hops >= 0).all()


class TestPolicyOrdering:
    def test_softstate_beats_random_and_loses_to_optimal(self, small_topology):
        """The paper's headline ordering on mean stretch."""
        means = {}
        for policy in ("random", "softstate", "optimal"):
            overlay = build(small_topology, policy=policy, n=128, seed=11)
            rng = np.random.default_rng(99)
            means[policy] = overlay.measure_stretch(samples=400, rng=rng).mean()
        assert means["softstate"] < means["random"]
        assert means["optimal"] <= means["softstate"] * 1.25


class TestChurnLifecycle:
    def test_remove_node(self, tiny_topology):
        overlay = build(tiny_topology, n=24)
        victim = overlay.node_ids[0]
        overlay.remove_node(victim)
        assert victim not in overlay.ecan.can.nodes
        assert len(overlay) == 23
        overlay.ecan.can.check_invariants()

    def test_remove_unknown(self, tiny_topology):
        overlay = build(tiny_topology, n=8)
        with pytest.raises(KeyError):
            overlay.remove_node(12345)

    def test_host_is_reusable_after_departure(self, tiny_topology):
        overlay = build(tiny_topology, n=8)
        victim = overlay.node_ids[0]
        host = overlay.ecan.can.nodes[victim].host
        overlay.remove_node(victim)
        newcomer = overlay.add_node(host=host)
        assert overlay.ecan.can.nodes[newcomer].host == host

    def test_routing_after_mixed_churn(self, tiny_topology, rng):
        overlay = build(tiny_topology, n=32)
        for _ in range(10):
            overlay.remove_node(overlay.random_member(), graceful=bool(rng.random() < 0.5))
            overlay.add_node()
        stretch = overlay.measure_stretch(samples=40, rng=rng)
        assert stretch.size > 0


class TestAdaptive:
    def test_enable_adaptive_installs_subscriptions(self, tiny_topology):
        overlay = build(tiny_topology, n=32)
        node_id = overlay.node_ids[0]
        installed = overlay.enable_adaptive(node_id)
        assert installed == len(overlay.pubsub.subscriptions_of(node_id))
        assert installed > 0

    def test_enable_adaptive_idempotent(self, tiny_topology):
        overlay = build(tiny_topology, n=32)
        node_id = overlay.node_ids[0]
        overlay.enable_adaptive(node_id)
        assert overlay.enable_adaptive(node_id) == 0

    def test_closer_candidate_triggers_reselection(self, small_topology):
        """A newly joined closer candidate must eventually appear in
        subscribers' tables via the pub/sub path."""
        overlay = build(small_topology, n=96, seed=13)
        for node_id in list(overlay.node_ids):
            overlay.enable_adaptive(node_id)
        before = overlay.network.stats.get("pubsub_notify")
        refreshed_tables = 0
        for _ in range(12):
            overlay.add_node()
        after = overlay.network.stats.get("pubsub_notify")
        assert after > before  # notifications flowed

    def test_adaptive_departed_node_not_refreshed(self, tiny_topology):
        overlay = build(tiny_topology, n=24)
        node_id = overlay.node_ids[0]
        overlay.enable_adaptive(node_id)
        overlay.remove_node(node_id)
        # joining more nodes must not crash on the departed subscriber
        for _ in range(4):
            overlay.add_node()
