"""Diagnostics helpers."""

import numpy as np
import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.core.diagnostics import (
    hop_latency_profile,
    map_placement_report,
    table_quality,
)
from repro.netsim import ManualLatencyModel, Network


@pytest.fixture(scope="module")
def overlay(small_topology):
    network = Network(small_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=96, policy="softstate", landmarks=8, seed=3)
    )
    ov.build()
    return ov


class TestHopProfile:
    def test_rows_shape(self, overlay):
        rows = hop_latency_profile(overlay, samples=100, rng=np.random.default_rng(1))
        assert rows
        assert rows[0]["hop"] == 1
        for row in rows:
            assert row["mean_latency_ms"] > 0
            assert row["count"] > 0

    def test_first_hop_count_is_largest(self, overlay):
        rows = hop_latency_profile(overlay, samples=100, rng=np.random.default_rng(1))
        counts = [r["count"] for r in rows]
        assert counts[0] == max(counts)

    def test_proximity_signature(self, overlay):
        """With soft-state selection the first (high-choice) hop is on
        average cheaper than the late hops."""
        rows = hop_latency_profile(overlay, samples=250, rng=np.random.default_rng(2))
        if len(rows) >= 3:
            assert rows[0]["mean_latency_ms"] <= max(
                r["mean_latency_ms"] for r in rows[1:]
            )


class TestTableQuality:
    def test_ratios_at_least_one(self, overlay):
        for node_id in list(overlay.node_ids):
            overlay.ecan.build_table(node_id)
        rows = table_quality(overlay, max_nodes=24)
        assert rows
        for row in rows:
            assert row["mean_ratio"] >= 1.0 - 1e-9
            assert row["entries"] > 0

    def test_optimal_policy_scores_one(self, small_topology):
        network = Network(small_topology, ManualLatencyModel())
        ov = TopologyAwareOverlay(
            network, OverlayParams(num_nodes=64, policy="optimal", landmarks=8, seed=3)
        )
        ov.build()
        for node_id in list(ov.node_ids):
            ov.ecan.build_table(node_id)
        rows = table_quality(ov, max_nodes=24)
        for row in rows:
            assert row["mean_ratio"] == pytest.approx(1.0, abs=1e-6)


class TestPlacementReport:
    def test_levels_and_totals(self, overlay):
        rows = map_placement_report(overlay.store)
        assert rows
        assert sum(r["entries"] for r in rows) == overlay.store.total_entries()
        for row in rows:
            assert row["hosting_nodes"] <= row["entries"]
            assert row["max_entries_one_node"] >= 1
