"""The soft-state refresh loop: leases, decay, refresh traffic."""

import numpy as np
import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network


def build(topology, ttl, n=24, seed=6):
    network = Network(topology, ManualLatencyModel())
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(
            num_nodes=n, policy="softstate", landmarks=5, record_ttl=ttl, seed=seed
        ),
    )
    overlay.build()
    return overlay


class TestLeases:
    def test_records_decay_without_refresh(self, tiny_topology):
        overlay = build(tiny_topology, ttl=10.0)
        assert overlay.store.total_entries() > 0
        overlay.network.clock.run_until(100.0)
        overlay.store.expire_stale()
        assert overlay.store.total_entries() == 0

    def test_refresh_keeps_everything_alive(self, tiny_topology):
        overlay = build(tiny_topology, ttl=10.0)
        overlay.start_refresh()
        entries = overlay.store.total_entries()
        overlay.network.clock.run_until(100.0)
        overlay.store.expire_stale()
        assert overlay.store.total_entries() == entries
        overlay.stop_refresh()

    def test_crashed_node_records_expire_despite_loop(self, tiny_topology):
        """Refresh is per-owner: a crashed node stops refreshing and its
        records age out -- the essence of soft-state."""
        overlay = build(tiny_topology, ttl=10.0)
        overlay.start_refresh()
        victim = overlay.node_ids[0]
        overlay.remove_node(victim, graceful=False)
        overlay.network.clock.run_until(50.0)
        overlay.store.expire_stale()
        assert all(
            victim not in bucket for bucket in overlay.store.maps.values()
        )
        # live nodes are unaffected
        survivor = overlay.node_ids[0]
        assert any(
            survivor in bucket for bucket in overlay.store.maps.values()
        )
        overlay.stop_refresh()

    def test_refresh_charges_publish_traffic(self, tiny_topology):
        overlay = build(tiny_topology, ttl=10.0)
        overlay.start_refresh()
        before = overlay.network.stats.get("softstate_publish")
        overlay.network.clock.run_until(20.0)
        assert overlay.network.stats.get("softstate_publish") > before
        overlay.stop_refresh()

    def test_interval_required_for_infinite_ttl(self, tiny_topology):
        overlay = build(tiny_topology, ttl=float("inf"))
        with pytest.raises(ValueError):
            overlay.start_refresh()
        overlay.start_refresh(interval=5.0)  # explicit interval is fine
        overlay.stop_refresh()

    def test_start_is_idempotent(self, tiny_topology):
        overlay = build(tiny_topology, ttl=10.0)
        overlay.start_refresh()
        timer = overlay._refresh_timer
        overlay.start_refresh()
        assert overlay._refresh_timer is timer
        overlay.stop_refresh()
