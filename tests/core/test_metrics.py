"""Metric helpers."""

import numpy as np
import pytest

from repro.core.metrics import gini, improvement, summarize


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["n"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_percentiles_ordered(self):
        stats = summarize(np.arange(100))
        assert stats["median"] <= stats["p90"] <= stats["p95"] <= stats["max"]

    def test_empty(self):
        stats = summarize([])
        assert stats["n"] == 0
        for key in ("mean", "median", "p90", "p95", "min", "max"):
            assert np.isnan(stats[key])

    def test_singleton_collapses_every_stat(self):
        stats = summarize([3.5])
        assert stats["n"] == 1
        for key in ("mean", "median", "p90", "p95", "min", "max"):
            assert stats[key] == 3.5

    def test_accepts_generators(self):
        assert summarize(x for x in (1.0, 3.0))["mean"] == 2.0


class TestGini:
    def test_perfect_equality(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_total_inequality_approaches_one(self):
        values = [0] * 99 + [100]
        assert gini(values) > 0.9

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_singleton_is_equal(self):
        assert gini([42.0]) == pytest.approx(0.0, abs=1e-9)

    def test_scale_invariant(self):
        a = [1, 2, 3, 4]
        assert gini(a) == pytest.approx(gini([10 * x for x in a]))


class TestImprovement:
    def test_reduction(self):
        assert improvement(10.0, 8.0) == pytest.approx(0.2)

    def test_regression_is_negative(self):
        assert improvement(10.0, 12.0) == pytest.approx(-0.2)

    def test_zero_baseline(self):
        assert improvement(0.0, 5.0) == 0.0
