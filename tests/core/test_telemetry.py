"""Telemetry: counters, phase timers, trace events, JSON round trip."""

import json

import pytest

from repro.core.telemetry import Telemetry, TraceEvent, diff_snapshots
from repro.netsim.events import EventScheduler


class TestInstruments:
    def test_counters_and_gauges(self):
        telemetry = Telemetry()
        telemetry.count("backoff_ms", 12.5)
        telemetry.count("backoff_ms", 7.5)
        telemetry.gauge("overlay_size", 64)
        telemetry.gauge("overlay_size", 63)
        assert telemetry.counters["backoff_ms"] == 20.0
        assert telemetry.gauges["overlay_size"] == 63

    def test_event_counts_always_kept(self):
        telemetry = Telemetry()
        telemetry.emit("probe", category="rtt_probe")
        telemetry.emit("probe", n=5, category="rtt_probe")
        assert telemetry.event_counts["probe"] == 6
        # tracing is opt-in: no TraceEvents without it
        assert telemetry.events == []

    def test_tracing_records_sim_time_and_fields(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock, tracing=True)
        clock.advance(25.0)
        telemetry.emit("purge", node_id=3, policy="periodic")
        (event,) = telemetry.events
        assert isinstance(event, TraceEvent)
        assert event.kind == "purge"
        assert event.time == 25.0
        assert event.fields == {"node_id": 3, "policy": "periodic"}

    def test_trace_buffer_bounded(self):
        telemetry = Telemetry(tracing=True, trace_limit=3)
        for i in range(5):
            telemetry.emit("hop", i=i)
        assert len(telemetry.events) == 3
        assert telemetry.dropped_events == 2
        assert telemetry.event_counts["hop"] == 5


class TestPhases:
    def test_phase_accumulates_sim_time(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock)
        with telemetry.phase("routing"):
            clock.advance(100.0)
        with telemetry.phase("routing"):
            clock.advance(50.0)
        acc = telemetry.phases["routing"]
        assert acc["sim_ms"] == 150.0
        assert acc["entries"] == 2
        assert acc["wall_s"] >= 0.0

    def test_phase_charges_on_exception(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock)
        with pytest.raises(RuntimeError):
            with telemetry.phase("build"):
                clock.advance(10.0)
                raise RuntimeError("boom")
        assert telemetry.phases["build"]["sim_ms"] == 10.0

    def test_distinct_phases_nest(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock)
        with telemetry.phase("outer"):
            clock.advance(5.0)
            with telemetry.phase("inner"):
                clock.advance(20.0)
        assert telemetry.phases["inner"]["sim_ms"] == 20.0
        assert telemetry.phases["outer"]["sim_ms"] == 25.0


class TestRoundTrip:
    def build(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock, tracing=True)
        telemetry.count("backoff_ms", 42.0)
        telemetry.gauge("overlay_size", 7)
        clock.advance(5.0)
        telemetry.emit("probe", category="rtt_probe", u=1, v=2)
        with telemetry.phase("maintenance"):
            clock.advance(60.0)
        return telemetry

    def test_emit_to_json_and_reload(self):
        telemetry = self.build()
        reloaded = Telemetry.from_json(telemetry.to_json())
        assert reloaded.snapshot() == telemetry.snapshot()
        assert reloaded.counters["backoff_ms"] == 42.0
        assert reloaded.event_counts["probe"] == 1
        assert reloaded.events[0].fields == {"category": "rtt_probe", "u": 1, "v": 2}

    def test_json_is_valid_and_sorted(self):
        text = self.build().to_json(indent=2)
        data = json.loads(text)
        assert data["events"] == {"probe": 1}
        # canonical: re-dumping with sorted keys is a fixpoint
        assert json.dumps(data, sort_keys=True, indent=2) == text


class TestSnapshotOrdering:
    def test_snapshot_sections_are_sorted_by_name(self):
        """/metrics and bench JSON depend on a stable key order: the
        snapshot must come out sorted regardless of insertion order."""
        telemetry = Telemetry()
        for name in ("zeta", "alpha", "mid"):
            telemetry.count(name, 1.0)
            telemetry.gauge(name, 2)
            telemetry.emit(name)
            with telemetry.phase(name):
                pass
        snapshot = telemetry.snapshot()
        for section in ("counters", "gauges", "events", "phases"):
            keys = list(snapshot[section])
            assert keys == sorted(keys) == ["alpha", "mid", "zeta"]

    def test_snapshot_serialization_is_deterministic(self):
        def build(order):
            telemetry = Telemetry()
            for name in order:
                telemetry.count(name, 1.0)
                telemetry.emit(name)
            return telemetry

        first = build(["b", "a", "c"])
        second = build(["c", "b", "a"])
        assert json.dumps(first.snapshot()) == json.dumps(second.snapshot())


class TestDiff:
    def test_subtracts_counts_and_phases(self):
        clock = EventScheduler()
        telemetry = Telemetry(clock=clock)
        telemetry.emit("probe", n=3)
        with telemetry.phase("routing"):
            clock.advance(10.0)
        before = telemetry.snapshot()
        telemetry.emit("probe", n=2)
        telemetry.emit("purge")
        telemetry.gauge("overlay_size", 9)
        with telemetry.phase("routing"):
            clock.advance(30.0)
        delta = diff_snapshots(telemetry.snapshot(), before)
        assert delta["events"] == {"probe": 2, "purge": 1}
        assert delta["gauges"] == {"overlay_size": 9}
        assert delta["phases"]["routing"]["sim_ms"] == 30.0
        assert delta["phases"]["routing"]["entries"] == 1

    def test_none_baseline_is_identity(self):
        telemetry = Telemetry()
        telemetry.emit("hop", n=4)
        delta = diff_snapshots(telemetry.snapshot(), None)
        assert delta["events"] == {"hop": 4}


class TestNetworkIntegration:
    def test_probes_and_builds_are_charged(self, tiny_network):
        telemetry = tiny_network.telemetry
        before = telemetry.snapshot()
        hosts = tiny_network.topology.stub_nodes()
        tiny_network.rtt(int(hosts[0]), int(hosts[1]))
        tiny_network.rtt_many(int(hosts[0]), hosts[:4])
        delta = diff_snapshots(telemetry.snapshot(), before)
        assert delta["events"]["probe"] == 5
