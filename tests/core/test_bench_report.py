"""Bench perf records: schema validation, merging, determinism."""

import importlib.util
import json
import math
import pathlib

import numpy as np
import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_module(relative):
    path = REPO_ROOT / relative
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def report():
    return load_module("scripts/bench_report.py")


@pytest.fixture(scope="module")
def common():
    return load_module("benchmarks/_common.py")


def make_record(name="fig00_demo", seed=0):
    rows = [
        {"probes": 1, "mean_stretch": 2.5},
        {"probes": 8, "mean_stretch": 1.2},
    ]
    return {
        "schema_version": 1,
        "name": name,
        "title": "demo",
        "params": {"scale": "quick"},
        "seed": seed,
        "rows": rows,
        "summary": {
            "mean_stretch": {"mean": 1.85, "lo": 1.2, "hi": 2.5, "n": 2}
        },
        "message_stats": {"rtt_probe": 9},
        "telemetry": {
            "counters": {"backoff_ms": 10.0},
            "events": {"probe": 9},
            "phases": {
                "routing": {"sim_ms": 40.0, "entries": 1, "wall_s": 0.01}
            },
        },
        "sim_ms": 40.0,
        "wall_s": 0.02,
    }


class TestValidator:
    def test_valid_record_passes(self, report):
        schema = report.load_schema()
        errors = report.validate(
            make_record(), {"$ref": "#/definitions/record"}, root=schema
        )
        assert errors == []

    def test_missing_key_and_wrong_type_flagged(self, report):
        schema = report.load_schema()
        record = make_record()
        del record["sim_ms"]
        record["seed"] = "zero"
        errors = report.validate(
            record, {"$ref": "#/definitions/record"}, root=schema
        )
        assert any("sim_ms" in e for e in errors)
        assert any("seed" in e for e in errors)

    def test_bool_is_not_a_number(self, report):
        errors = report.validate(True, {"type": "number"})
        assert errors

    def test_merged_file_schema(self, report):
        schema = report.load_schema()
        merged = {"schema_version": 1, "benches": {"fig00_demo": make_record()}}
        assert report.validate(merged, schema) == []
        merged["schema_version"] = 99
        assert report.validate(merged, schema)


class TestStripWall:
    def test_removes_wall_keys_recursively(self, report):
        stripped = report.strip_wall(make_record())
        assert "wall_s" not in stripped
        assert "wall_s" not in stripped["telemetry"]["phases"]["routing"]
        assert stripped["sim_ms"] == 40.0

    def test_same_seed_records_identical_modulo_wall(self, report):
        a, b = make_record(), make_record()
        b["wall_s"] = 99.9
        b["telemetry"]["phases"]["routing"]["wall_s"] = 1.5
        assert report.canonical_json(
            report.strip_wall(a)
        ) == report.canonical_json(report.strip_wall(b))


class TestMerge:
    def test_buckets_and_merge(self, report, tmp_path):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        core = make_record("fig00_demo")
        ext = make_record("ext_demo")
        for record in (core, ext):
            (out_dir / f"{record['name']}.json").write_text(
                json.dumps(record)
            )
        records = report.load_records(out_dir)
        assert set(records) == {"fig00_demo", "ext_demo"}
        assert report.bucket_of("fig00_demo") == "core"
        assert report.bucket_of("ext_demo") == "ext"

        targets = {
            "core": tmp_path / "BENCH_core.json",
            "ext": tmp_path / "BENCH_ext.json",
        }
        written = report.merge(records, targets=targets)
        assert set(written) == {"core", "ext"}
        merged = json.loads(targets["core"].read_text())
        assert merged["schema_version"] == 1
        assert "fig00_demo" in merged["benches"]
        assert report.check(records, targets=targets) == []

    def test_merge_preserves_existing_benches(self, report, tmp_path):
        target = tmp_path / "BENCH_core.json"
        target.write_text(
            report.canonical_json(
                {
                    "schema_version": 1,
                    "benches": {"fig99_old": make_record("fig99_old")},
                }
            )
        )
        report.merge(
            {"fig00_demo": make_record()}, targets={"core": target}
        )
        merged = json.loads(target.read_text())
        assert set(merged["benches"]) == {"fig99_old", "fig00_demo"}


class TestEmitRecord:
    def test_jsonable_sanitizes(self, common):
        value = common._jsonable(
            {
                "inf": math.inf,
                "np_int": np.int64(3),
                "np_float": np.float64(1.5),
                "np_bool": np.bool_(True),
                "nested": [np.nan, (1, 2)],
            }
        )
        assert value == {
            "inf": None,
            "np_int": 3,
            "np_float": 1.5,
            "np_bool": True,
            "nested": [None, [1, 2]],
        }
        json.dumps(value, allow_nan=False)  # must not raise

    def test_summarize_rows_deterministic(self, common):
        rows = [{"x": float(i), "label": "a"} for i in range(10)]
        first = common.summarize_rows(rows, seed=3)
        second = common.summarize_rows(rows, seed=3)
        assert first == second
        assert first["x"]["lo"] <= first["x"]["mean"] <= first["x"]["hi"]
        assert "label" not in first  # non-numeric columns skipped

    def test_summarize_rows_skips_non_finite(self, common):
        rows = [{"x": 1.0}, {"x": math.inf}, {"x": None}, {"x": 2.0}]
        summary = common.summarize_rows(rows)
        assert summary["x"]["n"] == 2

    def test_emit_writes_valid_record(self, common, report, tmp_path, capsys):
        out_dir = common.OUT_DIR
        try:
            common.OUT_DIR = tmp_path
            common.begin_measurement()
            common.emit(
                "fig00_demo",
                "demo",
                "table",
                rows=[{"probes": 1, "mean_stretch": 2.0}],
                params={"scale": "quick"},
                seed=0,
            )
        finally:
            common.OUT_DIR = out_dir
            common.end_measurement()
        record = json.loads((tmp_path / "fig00_demo.json").read_text())
        schema = report.load_schema()
        assert (
            report.validate(
                record, {"$ref": "#/definitions/record"}, root=schema
            )
            == []
        )
        assert (tmp_path / "fig00_demo.txt").read_text().startswith("== demo ==")
