"""Sim-mode soak harness: corruption classes, convergence, determinism."""

import numpy as np
import pytest

from repro.core.builder import TopologyAwareOverlay
from repro.core.config import OverlayParams
from repro.core.recovery import DetectorParams, check_invariants
from repro.core.soak import (
    CORRUPTION_KINDS,
    SoakConfig,
    _converge_sim,
    _legitimate,
    inject_corruption,
    run_sim_soak,
)
from repro.netsim.faults import FaultPlan


@pytest.fixture()
def armed_overlay(tiny_network):
    """A small recovering overlay the adversary can corrupt."""
    overlay = TopologyAwareOverlay(
        tiny_network,
        OverlayParams(num_nodes=48, policy="softstate", replication_factor=2, seed=2),
    )
    overlay.build()
    overlay.arm_faults(FaultPlan(), seed=3)
    overlay.enable_recovery(DetectorParams(period=500.0))
    return overlay


class TestInjectCorruption:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_each_kind_breaks_then_heals_within_budget(self, kind, armed_overlay):
        """Every corruption class trips the legitimacy predicate, and
        the repair loop converges inside the round budget."""
        rng = np.random.default_rng(7)
        corrupted = inject_corruption(armed_overlay, kind, rng, fraction=0.2)
        assert corrupted > 0
        ok, violation = _legitimate(armed_overlay, armed_overlay.detector)
        assert not ok, f"{kind} left the overlay legitimate"
        assert violation

        rounds, last = _converge_sim(armed_overlay, budget=10)
        assert rounds is not None, f"{kind} never converged: {last}"
        check_invariants(armed_overlay, armed_overlay.detector)

    def test_unknown_kind_rejected(self, armed_overlay):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            inject_corruption(armed_overlay, "melt_everything", np.random.default_rng(0))


class TestRebuildOwnerIndex:
    def test_rebuild_repairs_poisoned_index(self, armed_overlay):
        rng = np.random.default_rng(9)
        assert inject_corruption(armed_overlay, "poison_owner_index", rng) > 0
        store = armed_overlay.store
        with pytest.raises(AssertionError):
            store.check_owner_index()
        store.rebuild_owner_index()
        store.check_owner_index()


class TestSimSoak:
    CONFIG = SoakConfig(
        nodes=48,
        epochs=3,  # one epoch per corruption class
        churn_joins=1,
        churn_leaves=1,
        churn_crashes=1,
        lookups=32,
        round_budget=15,
        seed=1,
    )

    def test_soak_converges_with_clean_counters(self):
        record = run_sim_soak(self.CONFIG)
        assert record["converged"]
        kinds = [epoch["kind"] for epoch in record["epochs"]]
        assert kinds == list(CORRUPTION_KINDS)
        for epoch in record["epochs"]:
            assert epoch["violation"] is None
            assert 1 <= epoch["rounds_to_converge"] <= self.CONFIG.round_budget
            assert epoch["corrupted"] > 0
        # legitimacy is restored without collateral damage
        assert record["false_kills"] == 0
        assert record["false_purges"] == 0
        assert record["takeovers"] >= self.CONFIG.epochs * self.CONFIG.churn_crashes

    def test_soak_is_deterministic(self):
        """Pure simulated clock + seeded RNG: byte-stable records."""
        assert run_sim_soak(self.CONFIG) == run_sim_soak(self.CONFIG)


class TestBuildBulkParity:
    def test_bulk_build_matches_incremental_membership_and_zones(self, tiny_network):
        params = OverlayParams(num_nodes=40, policy="softstate", seed=2)
        incremental = TopologyAwareOverlay(tiny_network, params)
        incremental.build()
        bulk = TopologyAwareOverlay(tiny_network, params)
        bulk.build_bulk()

        a, b = incremental.ecan.can.nodes, bulk.ecan.can.nodes
        assert set(a) == set(b)
        for node_id in a:
            assert a[node_id].host == b[node_id].host
            assert tuple(a[node_id].zone.lo) == tuple(b[node_id].zone.lo)
            assert tuple(a[node_id].zone.hi) == tuple(b[node_id].zone.hi)
        check_invariants(bulk)
