"""The generated API reference stays in sync with the public surface."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiDocs:
    def test_render_covers_core_classes(self):
        gen = load_generator()
        text = gen.render()
        for name in (
            "TopologyAwareOverlay",
            "SoftStateStore",
            "EcanOverlay",
            "HilbertCurve",
            "ChordRing",
            "PastryRing",
        ):
            assert name in text, f"{name} missing from API docs"

    def test_no_undocumented_public_items(self):
        """Every public class/function must carry a docstring."""
        gen = load_generator()
        text = gen.render()
        assert "(undocumented)" not in text

    def test_checked_in_docs_match_generator(self):
        gen = load_generator()
        on_disk = (REPO_ROOT / "docs" / "api.md").read_text()
        assert on_disk == gen.render(), (
            "docs/api.md is stale; run `python scripts/gen_api_docs.py`"
        )
