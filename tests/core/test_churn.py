"""Churn traces and the churn driver."""

import numpy as np
import pytest

from repro.core import ChurnDriver, ChurnEvent, OverlayParams, TopologyAwareOverlay, poisson_churn
from repro.netsim import ManualLatencyModel, Network


@pytest.fixture
def overlay(tiny_topology):
    network = Network(tiny_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=32, policy="softstate", landmarks=6, seed=2)
    )
    ov.build()
    return ov


class TestTrace:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, kind="explode")

    def test_poisson_counts_scale_with_rate(self, rng):
        few = poisson_churn(np.random.default_rng(1), 100.0, 0.1, 0.1)
        many = poisson_churn(np.random.default_rng(1), 100.0, 1.0, 1.0)
        assert len(many) > len(few)

    def test_sorted_by_time(self, rng):
        events = poisson_churn(rng, 50.0, 0.5, 0.5)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 50.0 for t in times)

    def test_zero_rate_produces_nothing(self, rng):
        assert poisson_churn(rng, 10.0, 0.0, 0.0) == []

    def test_zero_duration_produces_nothing(self, rng):
        assert poisson_churn(rng, 0.0, 1.0, 1.0) == []

    def test_deterministic_under_fixed_seed(self):
        first = poisson_churn(np.random.default_rng(42), 100.0, 0.5, 0.5)
        second = poisson_churn(np.random.default_rng(42), 100.0, 0.5, 0.5)
        assert first == second
        assert first != poisson_churn(np.random.default_rng(43), 100.0, 0.5, 0.5)

    def test_equal_time_ties_order_join_first(self):
        class FixedDraws:
            """Stands in for a Generator; replays scripted gaps."""

            def __init__(self, draws):
                self.draws = list(draws)

            def exponential(self, scale):
                return self.draws.pop(0)

        # join stream: gap 2 then past the horizon; leave stream: same,
        # so both processes emit exactly one event at t=2.0
        events = poisson_churn(FixedDraws([2.0, 100.0, 2.0, 100.0]), 10.0, 1.0, 1.0)
        assert [(e.time, e.kind) for e in events] == [(2.0, "join"), (2.0, "leave")]


class TestDriver:
    def test_join_event_grows_overlay(self, overlay):
        driver = ChurnDriver(overlay)
        n = len(overlay)
        driver.apply(ChurnEvent(time=1.0, kind="join"))
        assert len(overlay) == n + 1
        assert overlay.network.clock.now == 1.0

    def test_leave_event_shrinks_overlay(self, overlay):
        driver = ChurnDriver(overlay)
        n = len(overlay)
        driver.apply(ChurnEvent(time=1.0, kind="leave"))
        assert len(overlay) == n - 1

    def test_min_nodes_floor(self, overlay):
        driver = ChurnDriver(overlay, min_nodes=len(overlay))
        assert not driver.apply(ChurnEvent(time=1.0, kind="leave"))
        assert driver.skipped == 1

    def test_run_produces_timeline(self, overlay, rng):
        events = poisson_churn(rng, 20.0, 0.6, 0.4)
        driver = ChurnDriver(overlay, rng=rng)
        rows = driver.run(events, measure_every=10, stretch_samples=20)
        assert rows  # at least the final row
        for row in rows:
            assert row["nodes"] >= driver.min_nodes
            assert row["mean_stretch"] is None or row["mean_stretch"] >= 1.0 - 1e-9
        times = [r["time"] for r in rows]
        assert times == sorted(times)

    def test_overlay_consistent_after_trace(self, overlay, rng):
        events = poisson_churn(rng, 30.0, 0.5, 0.5)
        ChurnDriver(overlay, rng=rng, graceful_fraction=0.5).run(events)
        overlay.ecan.can.check_invariants()
        stretch = overlay.measure_stretch(samples=20, rng=rng)
        assert stretch.size > 0

    def test_trace_replays_relative_to_first_use_epoch(self, overlay):
        """Event times are trace-relative: a clock another experiment
        already advanced must not make the whole trace fire instantly."""
        clock = overlay.network.clock
        clock.run_until(500.0)
        driver = ChurnDriver(overlay)
        driver.apply(ChurnEvent(time=10.0, kind="join"))
        assert clock.now == 510.0
        driver.apply(ChurnEvent(time=25.0, kind="join"))
        assert clock.now == 525.0

    def test_explicit_epoch_overrides_default(self, overlay):
        clock = overlay.network.clock
        clock.run_until(100.0)
        driver = ChurnDriver(overlay)
        driver.apply(ChurnEvent(time=5.0, kind="join"), epoch=200.0)
        assert clock.now == 205.0

    def test_past_event_never_rewinds_clock(self, overlay):
        clock = overlay.network.clock
        driver = ChurnDriver(overlay)
        driver.apply(ChurnEvent(time=50.0, kind="join"))
        # trace disorder (or an epoch in the past) must not move time back
        driver.apply(ChurnEvent(time=10.0, kind="join"))
        assert clock.now == 50.0

    def test_skipped_events_not_counted_as_applied(self, overlay):
        driver = ChurnDriver(overlay, min_nodes=len(overlay))
        driver.apply(ChurnEvent(time=1.0, kind="leave"))
        driver.apply(ChurnEvent(time=2.0, kind="leave"))
        driver.apply(ChurnEvent(time=3.0, kind="join"))
        assert driver.skipped == 2
        assert driver.applied == 1

    def test_measurement_traffic_not_charged(self, overlay, rng):
        driver = ChurnDriver(overlay, rng=rng)
        stats = overlay.network.stats
        before = stats.total()
        rows = driver.run([], measure_every=0, stretch_samples=20)
        # the final sample routed messages, but they must be refunded
        assert stats.total() == before
        assert rows[-1]["mean_stretch"] is not None
