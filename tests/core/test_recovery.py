"""Self-healing recovery: detection, takeover, replication, reconciliation."""

import numpy as np
import pytest

from repro.chord import ChordRing
from repro.core import (
    DetectorParams,
    FailureDetector,
    OverlayParams,
    RecoveryManager,
    TopologyAwareOverlay,
    check_invariants,
)
from repro.netsim.faults import FaultPlan, Partition
from repro.pastry import PastryRing


@pytest.fixture
def overlay(tiny_network):
    ov = TopologyAwareOverlay(
        tiny_network,
        OverlayParams(
            num_nodes=40,
            policy="softstate",
            landmarks=6,
            replication_factor=2,
            seed=2,
        ),
    )
    ov.build()
    return ov


@pytest.fixture
def faulty(overlay):
    """Same overlay with a (fault-free) injector armed, recovery on."""
    overlay.arm_faults(FaultPlan(), seed=3)
    overlay.enable_recovery()
    return overlay


class TestDetectorParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorParams(period=0.0)
        with pytest.raises(ValueError):
            DetectorParams(ping_attempts=0)
        with pytest.raises(ValueError):
            DetectorParams(witnesses=-1)
        with pytest.raises(ValueError):
            DetectorParams(suspicion_periods=-1)


class TestFailureDetector:
    def test_quiet_overlay_kills_no_one(self, faulty):
        detector = faulty.detector
        for _ in range(5):
            detector.tick()
        assert detector.confirmed_dead == []
        assert detector.false_kills == 0
        assert detector.suspected == {}

    def test_probe_loss_alone_never_kills(self, overlay):
        overlay.arm_faults(FaultPlan(probe_loss_rate=0.3), seed=5)
        overlay.enable_recovery()
        detector = overlay.detector
        for _ in range(8):
            detector.tick()
        assert detector.confirmed_dead == []
        assert detector.false_kills == 0

    def test_crash_confirmed_within_bounded_rounds(self, faulty):
        victim = faulty.node_ids[7]
        faulty.crash_node(victim)
        detector = faulty.detector
        rounds = 0
        while victim not in detector.confirmed_dead:
            detector.tick()
            rounds += 1
            assert rounds <= detector.params.suspicion_periods + 2
        assert detector.false_kills == 0
        assert victim not in faulty.ecan.can.nodes  # takeover ran

    def test_answered_probe_refutes_suspicion(self, faulty):
        detector = faulty.detector
        live = faulty.node_ids[3]
        detector.suspected[live] = detector.params.suspicion_periods
        detector.tick()
        assert live not in detector.suspected
        assert detector.refutations >= 1

    def test_partition_shields_verdict_until_heal(self, faulty):
        clock = faulty.network.clock
        domains = faulty.network.topology.transit_domain
        victim = faulty.node_ids[5]
        domain = int(domains[faulty.ecan.can.nodes[victim].host])
        plan = FaultPlan(
            partitions=(Partition(clock.now, clock.now + 5000.0, (domain,)),)
        )
        faulty.network.faults.plan = plan
        faulty.crash_node(victim)
        detector = faulty.detector
        for _ in range(6):
            detector.tick()
        # silence is explainable by the active partition: verdict held
        assert victim not in detector.confirmed_dead
        assert detector.shielded_verdicts > 0
        clock.advance(6000.0)
        detector.tick()
        assert victim in detector.confirmed_dead
        assert detector.false_kills == 0

    def test_detector_rounds_follow_the_clock(self, faulty):
        detector = faulty.detector
        period = detector.params.period
        faulty.network.clock.run_until(faulty.network.clock.now + 3 * period)
        assert detector.rounds == 3
        detector.stop()
        faulty.network.clock.run_until(faulty.network.clock.now + 3 * period)
        assert detector.rounds == 3

    def test_fd_traffic_is_charged(self, faulty):
        stats = faulty.network.stats
        faulty.crash_node(faulty.node_ids[2])
        faulty.detector.tick()
        assert stats.get("fd_ping") > 0
        assert stats.get("fd_ping_req") > 0


class TestRecoveryManager:
    def test_confirmed_crash_repairs_the_can(self, faulty):
        victim = faulty.node_ids[11]
        faulty.crash_node(victim)
        for _ in range(4):
            faulty.detector.tick()
        can = faulty.ecan.can
        assert victim not in can.nodes
        assert can.total_volume() == pytest.approx(1.0)
        can.check_invariants()
        assert faulty.recovery.takeovers == 1
        assert faulty.network.stats.get("crash_takeover") > 0

    def test_eager_invalidation_cleans_expressways(self, faulty):
        victim = None
        for node_id, table in faulty.ecan._tables.items():
            for row in table.values():
                for entry in row.values():
                    if entry != node_id:
                        victim = entry
                        break
        assert victim is not None
        faulty.crash_node(victim)
        faulty.recovery.handle_death(victim)
        for table in faulty.ecan._tables.values():
            for row in table.values():
                assert victim not in row.values()

    def test_rehost_from_surviving_replica(self, faulty):
        store = faulty.store
        can = faulty.ecan.can
        target = None
        for region, bucket in store.maps.items():
            for node_id, stored in bucket.items():
                owners = [
                    can.owner_of_point(p)
                    for p in (stored.position, *stored.replicas)
                ]
                if len(set(owners)) > 1 and node_id not in owners:
                    target = (region, node_id, owners[0])
                    break
            if target:
                break
        assert target is not None
        region, node_id, primary_owner = target
        faulty.crash_node(primary_owner)
        faulty.recovery.handle_death(primary_owner)
        # the record survived its primary host's crash and every copy
        # now sits on a live member
        assert node_id in store.maps[region]
        crashed = faulty.network.faults.crashed_hosts
        for host_node in store.copy_hosts(region, node_id):
            assert host_node in can.nodes
            assert can.nodes[host_node].host not in crashed
        assert faulty.recovery.rehosted > 0
        assert faulty.network.stats.get("softstate_rehost") > 0

    def test_lost_records_republished_on_sweep(self, tiny_network):
        ov = TopologyAwareOverlay(
            tiny_network,
            OverlayParams(
                num_nodes=32, policy="softstate", landmarks=6, seed=2
            ),
        )
        ov.build()
        ov.arm_faults(FaultPlan(), seed=3)
        ov.enable_recovery()
        store, can = ov.store, ov.ecan.can
        victim = next(
            can.owner_of_point(stored.position)
            for bucket in store.maps.values()
            for node_id, stored in bucket.items()
            if can.owner_of_point(stored.position) != node_id
        )
        ov.crash_node(victim)
        ov.recovery.handle_death(victim)
        missing = [n for n in ov.node_ids if store.missing_regions(n)]
        assert missing  # replication_factor=1: some records died outright
        ov.maintenance.poll_once()
        assert ov.maintenance.republished >= len(missing)
        assert [n for n in ov.node_ids if store.missing_regions(n)] == []
        check_invariants(ov, ov.detector)

    def test_reconcile_unsuspects_live_nodes(self, faulty):
        detector = faulty.detector
        live = faulty.node_ids[9]
        detector.suspected[live] = detector.params.suspicion_periods + 5
        summary = faulty.recovery.reconcile()
        assert live not in detector.suspected
        assert summary["unsuspected"] == 1
        assert faulty.network.stats.get("recovery_reconcile") == 1

    def test_partition_heal_schedules_reconcile(self, overlay):
        clock = overlay.network.clock
        plan = FaultPlan(
            partitions=(Partition(clock.now + 50.0, clock.now + 150.0, (0,)),)
        )
        overlay.arm_faults(plan, seed=3)
        overlay.enable_recovery()
        assert overlay.recovery.reconciliations == 0
        clock.run_until(clock.now + 200.0)
        assert overlay.recovery.reconciliations == 1


class TestCrashNode:
    def test_requires_armed_faults(self, overlay):
        with pytest.raises(RuntimeError):
            overlay.crash_node(overlay.node_ids[0])

    def test_crash_leaves_corpse_in_place(self, faulty):
        victim = faulty.node_ids[4]
        host = faulty.ecan.can.nodes[victim].host
        faulty.crash_node(victim)
        assert victim in faulty.ecan.can.nodes  # no instant takeover
        assert host in faulty.network.faults.crashed_hosts
        # ...which is exactly the state check_invariants must reject
        with pytest.raises(AssertionError):
            check_invariants(faulty, faulty.detector)

    def test_unknown_node_rejected(self, faulty):
        with pytest.raises(KeyError):
            faulty.crash_node(987654)

    def test_enable_recovery_is_idempotent(self, faulty):
        manager = faulty.recovery
        assert faulty.enable_recovery() is manager


class TestReplication:
    def test_replicas_are_pure_and_inside_the_region(self, overlay):
        store = overlay.store
        record = store.registry[overlay.node_ids[0]]
        for region in list(store.maps)[:4]:
            first = store.replica_positions(record, region)
            assert first == store.replica_positions(record, region)
            assert len(first) == store.replication_factor - 1
            zone = region.zone()
            for position in first:
                assert zone.contains(position)
                assert position != store.position_of(record, region)

    def test_publish_stores_replicas_and_charges(self, overlay):
        store = overlay.store
        assert overlay.network.stats.get("softstate_replicate") > 0
        for bucket in store.maps.values():
            for stored in bucket.values():
                assert len(stored.replicas) == store.replication_factor - 1

    def test_replication_factor_validated(self):
        with pytest.raises(ValueError):
            OverlayParams(replication_factor=0)

    def test_total_copy_loss_is_reported(self, faulty):
        store = faulty.store
        can = faulty.ecan.can
        # find a record whose copies all sit on one node (colocated)
        target = None
        for region, bucket in store.maps.items():
            for node_id, stored in bucket.items():
                owners = {
                    can.owner_of_point(p)
                    for p in (stored.position, *stored.replicas)
                }
                if len(owners) == 1 and node_id not in owners:
                    target = (region, node_id, owners.pop())
                    break
            if target:
                break
        if target is None:
            pytest.skip("no colocated record in this tessellation")
        region, node_id, owner = target
        faulty.crash_node(owner)
        assert any(
            r == region and n == node_id for r, n in store.lost_records
        )
        assert node_id not in store.maps.get(region, {})


class TestCheckInvariants:
    def test_healthy_overlay_passes(self, faulty):
        summary = check_invariants(faulty, faulty.detector)
        assert summary["nodes"] == 40
        assert summary["volume"] == pytest.approx(1.0)

    def test_stale_map_record_rejected(self, faulty):
        store = faulty.store
        region = next(iter(store.maps))
        bucket = store.maps[region]
        stored = next(iter(bucket.values()))
        bucket[987654] = stored
        with pytest.raises(AssertionError, match="dead node"):
            check_invariants(faulty)


class TestRingInvalidation:
    def test_chord_eager_invalidation(self):
        ring = ChordRing(bits=10, rng=np.random.default_rng(3))
        for i in range(24):
            ring.join(host=100 + i)
        for member in ring.members():
            ring.build_fingers(member)
        dead = next(
            entry
            for node in ring.nodes.values()
            for entry in node.fingers.values()
        )
        removed = ring.invalidate_member(dead)
        assert removed > 0
        for node in ring.nodes.values():
            assert dead not in node.fingers.values()

    def test_pastry_eager_invalidation(self):
        ring = PastryRing(rng=np.random.default_rng(3))
        for i in range(24):
            ring.join(host=100 + i)
        for member in list(ring.nodes):
            ring.build_table(member)
        dead = next(
            entry
            for node in ring.nodes.values()
            for entry in node.table.values()
        )
        removed = ring.invalidate_member(dead)
        assert removed > 0
        for node in ring.nodes.values():
            assert dead not in node.table.values()
