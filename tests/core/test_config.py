"""Parameter validation and network construction."""

import pytest

from repro.core import NetworkParams, OverlayParams, make_network
from repro.core.config import topology_config


class TestOverlayParams:
    def test_defaults_match_reconstructed_table2(self):
        params = OverlayParams()
        assert params.num_nodes == 4096
        assert params.landmarks == 15
        assert params.rtt_budget == 10
        assert params.policy == "softstate"

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            OverlayParams(policy="magic")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            OverlayParams(num_nodes=0)
        with pytest.raises(ValueError):
            OverlayParams(rtt_budget=0)

    def test_with_policy(self):
        params = OverlayParams(num_nodes=64).with_policy("random")
        assert params.policy == "random"
        assert params.num_nodes == 64


class TestTopologyConfig:
    def test_named_presets(self):
        assert topology_config("tsk-large").transit_domains == 8
        assert topology_config("tsk-small").transit_domains == 2

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_config("tsk-medium")


class TestMakeNetwork:
    def test_builds_connected_network(self):
        network = make_network(
            NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.25)
        )
        assert network.oracle.is_connected()
        assert network.num_nodes > 50

    def test_latency_model_selected(self):
        network = make_network(
            NetworkParams(topology="tsk-small", latency="generated", topo_scale=0.25)
        )
        assert network.latency_model.name == "generated"

    def test_scaled(self):
        params = NetworkParams().scaled(0.3)
        assert params.topo_scale == 0.3
