"""Load tracking and QoS-driven re-selection."""

import numpy as np
import pytest

from repro.core import LoadTracker, OverlayParams, TopologyAwareOverlay, pareto_capacities
from repro.core.qos import subscribe_overload_watch
from repro.netsim import ManualLatencyModel, Network
from repro.overlay.routing import RouteResult


@pytest.fixture
def overlay(tiny_topology):
    network = Network(tiny_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=32, policy="softstate", landmarks=6, seed=4)
    )
    ov.build()
    return ov


class TestCapacities:
    def test_heavy_tail(self, rng):
        caps = pareto_capacities(rng, 2000, alpha=1.2)
        assert caps.min() >= 1.0
        assert caps.max() > 5 * np.median(caps)

    def test_empty(self, rng):
        assert len(pareto_capacities(rng, 0)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            pareto_capacities(rng, -1)


class TestLoadTracker:
    def test_relays_charged_not_endpoints(self, overlay):
        tracker = LoadTracker(overlay)
        tracker.record_route(RouteResult(path=[1, 2, 3, 4]))
        assert tracker.load_of(2) == 1.0
        assert tracker.load_of(3) == 1.0
        assert tracker.load_of(1) == 0.0
        assert tracker.load_of(4) == 0.0

    def test_window_scales_load(self, overlay):
        tracker = LoadTracker(overlay, window=4.0)
        for _ in range(8):
            tracker.record_route(RouteResult(path=[1, 2, 3]))
        assert tracker.load_of(2) == pytest.approx(2.0)

    def test_publish_all_updates_registry(self, overlay):
        tracker = LoadTracker(overlay)
        node_id = overlay.node_ids[1]
        tracker.record_route(RouteResult(path=[0, node_id, 5]))
        tracker.publish_all()
        assert overlay.store.registry[node_id].load == tracker.load_of(node_id)

    def test_utilization_uses_capacity(self, overlay):
        tracker = LoadTracker(overlay)
        node_id = overlay.node_ids[2]
        overlay.store.registry[node_id] = overlay.store.registry[node_id].with_load(0.0)
        tracker.record_route(RouteResult(path=[0, node_id, 5]))
        util = tracker.utilization()
        capacity = overlay.store.registry[node_id].capacity
        assert util[node_id] == pytest.approx(1.0 / capacity)

    def test_reset_window(self, overlay):
        tracker = LoadTracker(overlay)
        tracker.record_route(RouteResult(path=[1, 2, 3]))
        tracker.reset_window()
        assert tracker.load_of(2) == 0.0


class TestOverloadWatch:
    def test_alarm_triggers_reselection(self, overlay):
        watcher = overlay.node_ids[0]
        subs = subscribe_overload_watch(overlay, watcher, threshold=0.8)
        assert subs
        # saturate one of the watcher's current entries
        table = overlay.ecan.table_of(watcher)
        entry = next(iter(next(iter(table.values())).values()))
        before = overlay.network.stats.get("pubsub_notify")
        overlay.store.update_load(entry, 100.0)
        after = overlay.network.stats.get("pubsub_notify")
        assert after >= before  # notification may be deduplicated/empty tree
        # the callback ran without corrupting the table
        for level, row in overlay.ecan.table_of(watcher).items():
            for cell, e in row.items():
                assert e in overlay.ecan.can.nodes
