"""Bootstrap/aggregation helpers."""

import numpy as np
import pytest

from repro.core.stats import aggregate_over_seeds, bootstrap_ci, paired_improvement


class TestBootstrap:
    def test_ci_brackets_mean(self, rng):
        sample = rng.normal(10.0, 2.0, size=200)
        low, high = bootstrap_ci(sample, rng=rng)
        assert low < sample.mean() < high
        assert high - low < 2.0  # reasonably tight at n=200

    def test_singleton_degenerates(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_wider_confidence_wider_interval(self, rng):
        sample = rng.normal(0.0, 1.0, size=50)
        narrow = bootstrap_ci(sample, confidence=0.5, rng=np.random.default_rng(1))
        wide = bootstrap_ci(sample, confidence=0.99, rng=np.random.default_rng(1))
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_custom_statistic(self, rng):
        sample = rng.normal(5.0, 1.0, size=100)
        low, high = bootstrap_ci(sample, statistic=np.median, rng=rng)
        assert low < np.median(sample) < high


class TestAggregate:
    def run_fn(self, seed):
        rng = np.random.default_rng(seed)
        return [
            {"n": n, "stretch": 2.0 + n / 100 + rng.normal(0, 0.05)}
            for n in (16, 32)
        ]

    def test_grouping_and_ci_columns(self):
        rows = aggregate_over_seeds(self.run_fn, range(5), ["n"], ["stretch"])
        assert [r["n"] for r in rows] == [16, 32]
        for row in rows:
            assert row["seeds"] == 5
            assert row["stretch_lo"] <= row["stretch"] <= row["stretch_hi"]

    def test_preserves_trend(self):
        rows = aggregate_over_seeds(self.run_fn, range(5), ["n"], ["stretch"])
        assert rows[0]["stretch"] < rows[1]["stretch"]

    def test_missing_values_skipped(self):
        def with_none(seed):
            return [{"n": 1, "stretch": None}, {"n": 2, "stretch": 3.0}]

        rows = aggregate_over_seeds(with_none, range(2), ["n"], ["stretch"])
        assert rows[0]["stretch"] is None
        assert rows[1]["stretch"] == 3.0

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            aggregate_over_seeds(self.run_fn, [], ["n"], ["stretch"])

    def test_cells_draw_fresh_resamples(self):
        """Identical-value cells must get *different* bootstrap CIs.

        Regression: each bootstrap_ci call used to fall back to its own
        ``default_rng(0)``, so every cell resampled with identical
        indices and the CIs correlated perfectly across rows.
        """

        def run_fn(seed):
            rng = np.random.default_rng(seed)
            values = rng.normal(10.0, 1.0, size=2)
            # both cells see the *same* per-seed draws
            return [{"n": n, "stretch": float(values.sum())} for n in (1, 2)]

        rows = aggregate_over_seeds(run_fn, range(8), ["n"], ["stretch"])
        first, second = rows
        assert first["stretch"] == second["stretch"]  # same data by design
        assert (first["stretch_lo"], first["stretch_hi"]) != (
            second["stretch_lo"],
            second["stretch_hi"],
        )

    def test_deterministic_across_runs(self):
        runs = [
            aggregate_over_seeds(self.run_fn, range(4), ["n"], ["stretch"])
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestPaired:
    def test_summary(self):
        out = paired_improvement([10.0, 8.0, 12.0], [5.0, 9.0, 6.0])
        assert out["n"] == 3
        assert out["wins"] == 2
        assert out["mean_saving"] == pytest.approx(1 - 20 / 30)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_improvement([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_improvement([], [])
