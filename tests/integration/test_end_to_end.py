"""End-to-end integration: the whole system working together.

These tests exercise multi-layer interactions the unit tests cannot:
landmark measurement -> CAN join -> soft-state publication -> map
lookup -> RTT-confirmed selection -> expressway routing -> pub/sub
repair, across churn and maintenance policies.
"""

import numpy as np
import pytest

from repro.core import (
    ChurnDriver,
    OverlayParams,
    TopologyAwareOverlay,
    poisson_churn,
)
from repro.netsim import GeneratedLatencyModel, ManualLatencyModel, Network, NoisyLatencyModel
from repro.softstate import MaintenancePolicy


def build(topology, latency_model, policy="softstate", n=96, seed=21, **overrides):
    network = Network(topology, latency_model)
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(num_nodes=n, policy=policy, landmarks=8, seed=seed, **overrides),
    )
    overlay.build()
    return overlay


class TestFullSystem:
    def test_headline_ordering_holds_on_generated_latencies(self, small_topology):
        means = {}
        for policy in ("random", "softstate", "optimal"):
            overlay = build(small_topology, GeneratedLatencyModel(), policy=policy)
            rng = np.random.default_rng(5)
            means[policy] = overlay.measure_stretch(samples=300, rng=rng).mean()
        assert means["optimal"] <= means["softstate"] * 1.3
        assert means["softstate"] < means["random"]

    def test_works_on_dense_stub_topology(self, small_topology_dense):
        overlay = build(small_topology_dense, ManualLatencyModel())
        stretch = overlay.measure_stretch(samples=200)
        assert stretch.size > 0
        assert np.isfinite(stretch).all()

    def test_robust_to_triangle_violating_latencies(self, small_topology):
        """The paper motivates soft-state partly because triangle
        inequality fails on the real Internet; the machinery must not
        depend on it."""
        noisy = NoisyLatencyModel(base=GeneratedLatencyModel(), sigma=0.6, seed=3)
        overlay = build(small_topology, noisy, n=64)
        stretch = overlay.measure_stretch(samples=150)
        assert stretch.size > 0
        assert (stretch >= 1.0 - 1e-6).all()

    def test_three_dimensional_overlay(self, small_topology):
        overlay = build(small_topology, ManualLatencyModel(), n=64, dims=3)
        stretch = overlay.measure_stretch(samples=100)
        assert stretch.size > 0
        overlay.ecan.can.check_invariants()


class TestChurnIntegration:
    @pytest.mark.parametrize(
        "policy",
        [MaintenancePolicy.REACTIVE, MaintenancePolicy.PERIODIC, MaintenancePolicy.PROACTIVE],
    )
    def test_survives_churn_under_every_maintenance_policy(
        self, small_topology, policy
    ):
        network = Network(small_topology, ManualLatencyModel())
        overlay = TopologyAwareOverlay(
            network,
            OverlayParams(num_nodes=80, policy="softstate", landmarks=8, seed=31),
            maintenance_policy=policy,
        )
        overlay.build()
        overlay.maintenance.poll_interval = 5.0
        overlay.maintenance.start()
        rng = np.random.default_rng(17)
        events = poisson_churn(rng, 40.0, 0.8, 0.8)
        driver = ChurnDriver(overlay, rng=rng, graceful_fraction=0.5, min_nodes=20)
        rows = driver.run(events, measure_every=20, stretch_samples=30)
        overlay.maintenance.stop()
        overlay.ecan.can.check_invariants()
        assert rows[-1]["mean_stretch"] is not None
        # routing still works for everyone
        ok = sum(
            overlay.route_between(
                overlay.random_member(), overlay.random_member()
            )[0].success
            for _ in range(30)
        )
        assert ok == 30

    def test_periodic_policy_bounds_staleness(self, small_topology):
        network = Network(small_topology, ManualLatencyModel())
        overlay = TopologyAwareOverlay(
            network,
            OverlayParams(num_nodes=60, policy="softstate", landmarks=8, seed=33),
            maintenance_policy=MaintenancePolicy.PERIODIC,
        )
        overlay.build()
        overlay.maintenance.poll_interval = 10.0
        overlay.maintenance.start()
        for i in range(10):
            network.clock.run_until(network.clock.now + 2.0)
            overlay.remove_node(overlay.random_member(), graceful=False)
        network.clock.run_until(network.clock.now + 20.0)
        assert overlay.maintenance.stale_entries() == 0

    def test_adaptive_overlay_recovers_selection_quality(self, small_topology):
        """Grow 64 -> 128 with pub/sub adaptation on: final stretch must
        land near a freshly built 128-node soft-state overlay and beat
        the same growth without adaptation."""
        def grown(adaptive: bool) -> float:
            overlay = build(small_topology, ManualLatencyModel(), n=64, seed=41)
            if adaptive:
                for node_id in list(overlay.node_ids):
                    overlay.enable_adaptive(node_id)
            for _ in range(64):
                new_id = overlay.add_node()
                if adaptive:
                    overlay.enable_adaptive(new_id)
            rng = np.random.default_rng(9)
            return overlay.measure_stretch(samples=300, rng=rng).mean()

        with_pubsub = grown(adaptive=True)
        without = grown(adaptive=False)
        assert with_pubsub <= without * 1.05


class TestMessageEconomy:
    def test_per_join_cost_scales_logarithmically(self, small_topology):
        """Soft-state publication costs O(log N) routes per join; the
        per-join message bill must grow slowly with N."""
        network = Network(small_topology, ManualLatencyModel())
        overlay = TopologyAwareOverlay(
            network,
            OverlayParams(num_nodes=32, policy="softstate", landmarks=8, seed=51),
        )
        overlay.build()
        stats = network.stats
        before = stats.total()
        for _ in range(8):
            overlay.add_node()
        cost_small = (stats.total() - before) / 8
        overlay.build(num_nodes=160)
        before = stats.total()
        for _ in range(8):
            overlay.add_node()
        cost_large = (stats.total() - before) / 8
        # 4x size should cost far less than 4x messages per join
        assert cost_large < 3.0 * cost_small

    def test_stats_categories_cover_all_traffic(self, tiny_topology):
        overlay = build(tiny_topology, ManualLatencyModel(), n=32)
        snapshot = overlay.network.stats.snapshot()
        expected_some = {
            "landmark_probe",
            "softstate_publish",
            "softstate_lookup",
            "neighbor_probe",
            "join_route",
        }
        assert expected_some.issubset(snapshot.keys())
        assert all(v >= 0 for v in snapshot.values())
