"""Opt-in paper-scale smoke tests.

Skipped unless ``REPRO_SLOW=1``: these build paper-reconstruction-
sized artifacts (a ~10k-node topology, a 1024-node overlay) and check
that the headline shapes survive the scale-up.  They exist so a full
``REPRO_SCALE=paper`` bench run is never the first time the code sees
big inputs.
"""

import os

import numpy as np
import pytest

slow = pytest.mark.skipif(
    os.environ.get("REPRO_SLOW") != "1",
    reason="paper-scale smoke tests run only with REPRO_SLOW=1",
)


@slow
class TestPaperScale:
    def test_full_size_topology_generates_and_connects(self):
        from repro.netsim import DistanceOracle, ManualLatencyModel, TransitStubConfig, generate_transit_stub

        topo = generate_transit_stub(TransitStubConfig.tsk_large(), seed=1)
        assert 8_000 <= topo.num_nodes <= 12_000
        oracle = DistanceOracle.from_topology(topo, ManualLatencyModel())
        assert oracle.is_connected()

    def test_1k_overlay_headline_ordering(self):
        from repro.core import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network

        means = {}
        for policy in ("random", "softstate"):
            network = make_network(
                NetworkParams(topology="tsk-large", latency="manual", seed=1)
            )
            overlay = TopologyAwareOverlay(
                network, OverlayParams(num_nodes=1024, policy=policy, seed=3)
            )
            overlay.build()
            rng = np.random.default_rng(5)
            means[policy] = overlay.measure_stretch(samples=1024, rng=rng).mean()
        assert means["softstate"] < 0.75 * means["random"]

    def test_16k_ecan_logarithmic_hops(self):
        from repro.experiments.fig02_hops import build_ecan, _measure_hops

        ecan = build_ecan(16384, seed=1)
        rng = np.random.default_rng(2)
        hops = _measure_hops(ecan, range(16384), 200, rng)
        assert hops < 12  # ~log4(16384) + CAN tail, far below sqrt growth
