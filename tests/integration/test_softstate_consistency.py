"""Soft-state consistency properties under mixed operations.

Invariants checked after arbitrary interleavings of joins, graceful
and crash departures, refreshes and lookups:

* every published record's position lies inside its region;
* a graceful departure leaves no trace; crash leftovers are exactly
  the stale entries maintenance reports;
* the registry never references an overlay member twice;
* lookups never return the querier, records of regions they were not
  asked about, or more than max_results.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network
from repro.softstate.maps import Region


OPS = st.lists(st.integers(min_value=0, max_value=4), min_size=6, max_size=28)


def fresh_overlay(topology, n=20, seed=5):
    network = Network(topology, ManualLatencyModel())
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=n, policy="softstate", landmarks=5, seed=seed)
    )
    overlay.build()
    return overlay


class TestStoreConsistencyProperty:
    @given(OPS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mixed_operations(self, tiny_topology, ops):
        overlay = fresh_overlay(tiny_topology)
        rng = np.random.default_rng(7)
        graceful_departures = set()
        crash_departures = set()
        for op in ops:
            members = overlay.node_ids
            if op in (0, 1) or len(members) <= 4:
                overlay.add_node()
            elif op == 2:
                victim = members[int(rng.integers(0, len(members)))]
                overlay.remove_node(victim, graceful=True)
                graceful_departures.add(victim)
            elif op == 3:
                victim = members[int(rng.integers(0, len(members)))]
                overlay.remove_node(victim, graceful=False)
                crash_departures.add(victim)
            else:
                querier = members[int(rng.integers(0, len(members)))]
                cell = (int(rng.integers(0, 2)), int(rng.integers(0, 2)))
                result = overlay.store.lookup(querier, Region(1, cell), max_results=4)
                assert len(result.records) <= 4
                assert querier not in [r.node_id for r in result.records]

        store = overlay.store
        alive = set(overlay.node_ids)
        stale = 0
        for region, bucket in store.maps.items():
            for node_id, stored in bucket.items():
                assert region.contains_point(stored.position)
                assert node_id not in graceful_departures
                if node_id not in alive:
                    stale += 1
                    assert node_id in crash_departures
        assert stale == overlay.maintenance.stale_entries()

    def test_registry_matches_membership_after_builds(self, tiny_topology):
        overlay = fresh_overlay(tiny_topology, n=24)
        registered_members = set(overlay.store.registry) & set(overlay.node_ids)
        assert registered_members == set(overlay.node_ids)

    def test_lookup_results_belong_to_region(self, tiny_topology):
        overlay = fresh_overlay(tiny_topology, n=24)
        for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
            region = Region(1, cell)
            result = overlay.store.lookup(overlay.node_ids[0], region)
            for record in result.records:
                node = overlay.ecan.can.nodes.get(record.node_id)
                if node is None:
                    continue
                # the record's owner must be (or have been) a member of
                # the region: its zone intersects the region's box
                box = region.zone()
                assert any(
                    all(
                        zl < bh and bl < zh
                        for zl, zh, bl, bh in zip(z.lo, z.hi, box.lo, box.hi)
                    )
                    for z in node.zones
                )
