"""Every shipped example runs end-to-end and prints its headline.

Run as subprocesses so the examples are exercised exactly as a user
would run them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args, timeout: float = 420.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "96")
        assert result.returncode == 0, result.stderr
        assert "cuts mean routing latency" in result.stdout
        assert "optimal" in result.stdout

    def test_nearest_replica_cdn(self):
        result = run_example("nearest_replica_cdn.py")
        assert result.returncode == 0, result.stderr
        assert "mean latency to the chosen replica" in result.stdout
        assert "RTT probes per" in result.stdout

    def test_adaptive_overlay_pubsub(self):
        result = run_example("adaptive_overlay_pubsub.py")
        assert result.returncode == 0, result.stderr
        assert "pub/sub adaptive" in result.stdout
        assert "notification trees" in result.stdout

    def test_load_aware_routing(self):
        result = run_example("load_aware_routing.py")
        assert result.returncode == 0, result.stderr
        assert "p99 relay utilization" in result.stdout

    def test_porting_to_chord_pastry(self):
        result = run_example("porting_to_chord_pastry.py")
        assert result.returncode == 0, result.stderr
        for overlay in ("eCAN", "Chord", "Pastry"):
            assert overlay in result.stdout

    def test_diagnosing_stretch(self):
        result = run_example("diagnosing_stretch.py")
        assert result.returncode == 0, result.stderr
        assert "per-hop latency profile" in result.stdout
        assert "table quality" in result.stdout
