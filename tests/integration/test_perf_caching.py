"""Caching must not change charged behavior.

The hot-path work (owner index, point-owner memo, landmark/Hilbert
memos, oracle row cache) is all *local* bookkeeping: the messages a
run charges, the routes it takes and the numbers an experiment
reports must be bit-identical with the caches disabled.  These tests
pin that contract with the two kill-switches
(``Can.owner_cache_enabled`` and ``SoftStateStore.use_owner_index``)
as the brute-force oracle.
"""

import numpy as np

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network

N = 256
SEED = 11


def build_overlay(topology, caches: bool) -> TopologyAwareOverlay:
    network = Network(topology, ManualLatencyModel())
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=N, landmarks=8, seed=SEED)
    )
    if not caches:
        overlay.ecan.can.owner_cache_enabled = False
        overlay.store.use_owner_index = False
    overlay.build(N)
    return overlay


class TestCachedEqualsUncached:
    def test_build_and_stretch_are_bit_identical(self, small_topology):
        cached = build_overlay(small_topology, caches=True)
        uncached = build_overlay(small_topology, caches=False)

        # same seed, same messages: every charged category, same count
        assert (
            cached.network.stats.snapshot() == uncached.network.stats.snapshot()
        )

        # the same route is taken between every sampled pair
        rng = np.random.default_rng(SEED)
        ids = cached.node_ids
        assert ids == uncached.node_ids
        for _ in range(40):
            src, dst = rng.choice(ids, size=2, replace=False)
            a, stretch_a = cached.route_between(int(src), int(dst))
            b, stretch_b = uncached.route_between(int(src), int(dst))
            assert a.path == b.path
            assert stretch_a == stretch_b

        # experiment output: the full stretch series, value for value
        stretch_cached = cached.measure_stretch(2 * N)
        stretch_uncached = uncached.measure_stretch(2 * N)
        assert np.array_equal(stretch_cached, stretch_uncached)

        # and the routing above charged both overlays identically too
        assert (
            cached.network.stats.snapshot() == uncached.network.stats.snapshot()
        )

    def test_lookup_results_match_brute_force(self, small_topology):
        from repro.softstate.maps import Region

        cached = build_overlay(small_topology, caches=True)
        uncached = build_overlay(small_topology, caches=False)
        dims = cached.ecan.can.dims
        cells = [
            tuple((index >> d) & 1 for d in range(dims))
            for index in range(1 << dims)
        ]
        for i, querier in enumerate(cached.node_ids[:24]):
            region = Region(1, cells[i % len(cells)])
            a = cached.store.lookup(querier, region)
            b = uncached.store.lookup(querier, region)
            assert [r.node_id for r in a.records] == [
                r.node_id for r in b.records
            ]
            assert a.served_by == b.served_by
