"""Property-based churn: arbitrary op interleavings keep every overlay sound.

One hypothesis-driven harness applies a random sequence of
join/leave/route operations to each overlay family and asserts the
family's invariants afterwards.  These are the tests that caught the
zone-sibling aliasing bug during development; they guard the whole
membership machinery.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chord.ring import ChordRing
from repro.overlay import EcanOverlay
from repro.pastry.ring import PastryRing

# op encoding: 0/1 join, 2 leave, 3 route
OPS = st.lists(st.integers(min_value=0, max_value=3), min_size=8, max_size=50)
RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def apply_ops(ops, join, leave, route, members, rng):
    next_id = 0
    for op in ops:
        population = members()
        if op in (0, 1) or not population:
            join(next_id)
            next_id += 1
        elif op == 2 and len(population) > 1:
            leave(population[int(rng.integers(0, len(population)))])
        elif population:
            route(population[int(rng.integers(0, len(population)))])


class TestEcanChurnProperty:
    @given(OPS)
    @RELAXED
    def test_random_ops_keep_invariants(self, ops):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(3))
        rng = np.random.default_rng(5)

        def route(start):
            result = ecan.route(start, tuple(rng.random(2)))
            assert result.success

        apply_ops(
            ops,
            join=lambda i: ecan.join(i, host=i),
            leave=ecan.leave,
            route=route,
            members=lambda: list(ecan.nodes),
            rng=rng,
        )
        if len(ecan):
            ecan.can.check_invariants()
            # membership index holds only live nodes, kept sorted
            for buckets in ecan._members.values():
                for node_ids in buckets.values():
                    assert list(node_ids) == sorted(set(node_ids))
                    assert set(node_ids) <= set(ecan.nodes)


class TestChordChurnProperty:
    @given(OPS)
    @RELAXED
    def test_random_ops_keep_ring_sound(self, ops):
        ring = ChordRing(bits=12, rng=np.random.default_rng(3))
        rng = np.random.default_rng(5)

        def join(i):
            node_id = ring.join(host=i)
            ring.build_fingers(node_id)

        def route(start):
            key = int(rng.integers(0, ring.space))
            result = ring.route(start, key)
            assert result.success
            assert result.owner == ring.successor_of(key)

        apply_ops(
            ops,
            join=join,
            leave=ring.leave,
            route=route,
            members=ring.members,
            rng=rng,
        )
        if len(ring):
            # the sorted id list and the node map agree
            assert sorted(ring.nodes) == ring.members()


class TestPastryChurnProperty:
    @given(OPS)
    @RELAXED
    def test_random_ops_keep_overlay_sound(self, ops):
        ring = PastryRing(digits=10, rng=np.random.default_rng(3))
        rng = np.random.default_rng(5)

        def join(i):
            node_id = ring.join(host=i)
            ring.build_table(node_id)

        def route(start):
            key = int(rng.integers(0, ring.space))
            result = ring.route(start, key)
            assert result.success
            assert result.owner == ring.numerically_closest(key)

        apply_ops(
            ops,
            join=join,
            leave=ring.leave,
            route=route,
            members=ring.members,
            rng=rng,
        )
        if len(ring):
            assert sorted(ring.nodes) == ring.members()
            for node_id in ring.members():
                for (row, digit), entry in ring.nodes[node_id].table.items():
                    if entry in ring.nodes:
                        assert ring.digit(entry, row) == digit
