"""Workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    poisson_arrivals,
    random_pairs,
    uniform_points,
    zipf_points,
)


class TestRandomPairs:
    def test_shape_and_distinctness(self, rng):
        pairs = random_pairs(range(20), 50, rng)
        assert len(pairs) == 50
        for src, dst in pairs:
            assert src != dst
            assert 0 <= src < 20 and 0 <= dst < 20

    def test_needs_two_nodes(self, rng):
        with pytest.raises(ValueError):
            random_pairs([1], 5, rng)


class TestUniformPoints:
    def test_range(self, rng):
        points = uniform_points(100, 3, rng)
        assert points.shape == (100, 3)
        assert (points >= 0).all() and (points < 1).all()


class TestPoissonArrivals:
    def test_monotone_increasing(self, rng):
        arrivals = poisson_arrivals(50.0, 200, rng)
        assert arrivals.shape == (200,)
        assert (np.diff(arrivals) > 0).all()
        assert arrivals[0] > 0

    def test_mean_gap_matches_rate(self, rng):
        rate = 250.0
        arrivals = poisson_arrivals(rate, 20_000, rng)
        gaps = np.diff(np.concatenate([[0.0], arrivals]))
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.05)

    def test_seeded_determinism(self):
        a = poisson_arrivals(10.0, 64, np.random.default_rng(7))
        b = poisson_arrivals(10.0, 64, np.random.default_rng(7))
        c = poisson_arrivals(10.0, 64, np.random.default_rng(8))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_zero_count(self, rng):
        assert poisson_arrivals(5.0, 0, rng).shape == (0,)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="rate"):
            poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ValueError, match="rate"):
            poisson_arrivals(-1.0, 10, rng)
        with pytest.raises(ValueError, match="count"):
            poisson_arrivals(1.0, -1, rng)


class TestZipfPoints:
    def test_skew(self, rng):
        points = zipf_points(2000, 2, rng, distinct=16, exponent=1.2)
        assert points.shape == (2000, 2)
        _, counts = np.unique(points[:, 0], return_counts=True)
        counts = np.sort(counts)[::-1]
        # head much heavier than tail
        assert counts[0] > 4 * counts[-1]

    def test_at_most_distinct_values(self, rng):
        points = zipf_points(500, 2, rng, distinct=8)
        assert len(np.unique(points[:, 0])) <= 8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            zipf_points(10, 2, rng, distinct=0)
