"""Workload generators."""

import numpy as np
import pytest

from repro.workloads import random_pairs, uniform_points, zipf_points


class TestRandomPairs:
    def test_shape_and_distinctness(self, rng):
        pairs = random_pairs(range(20), 50, rng)
        assert len(pairs) == 50
        for src, dst in pairs:
            assert src != dst
            assert 0 <= src < 20 and 0 <= dst < 20

    def test_needs_two_nodes(self, rng):
        with pytest.raises(ValueError):
            random_pairs([1], 5, rng)


class TestUniformPoints:
    def test_range(self, rng):
        points = uniform_points(100, 3, rng)
        assert points.shape == (100, 3)
        assert (points >= 0).all() and (points < 1).all()


class TestZipfPoints:
    def test_skew(self, rng):
        points = zipf_points(2000, 2, rng, distinct=16, exponent=1.2)
        assert points.shape == (2000, 2)
        _, counts = np.unique(points[:, 0], return_counts=True)
        counts = np.sort(counts)[::-1]
        # head much heavier than tail
        assert counts[0] > 4 * counts[-1]

    def test_at_most_distinct_values(self, rng):
        points = zipf_points(500, 2, rng, distinct=8)
        assert len(np.unique(points[:, 0])) <= 8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            zipf_points(10, 2, rng, distinct=0)
