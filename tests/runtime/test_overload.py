"""Overload protection: lanes, shedding, BUSY, breakers, adaptive RTO.

The tentpole coverage for DESIGN.md §12.  Saturation is produced
deterministically: a victim actor's dispatch (or just its data-kind
handler) is gated on an :class:`asyncio.Event`, so the data lane
fills to its cap on one event-loop turn while control traffic keeps
flowing -- no wall-clock races decide what gets shed.
"""

import asyncio

import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.core.recovery import DetectorParams
from repro.core.reliability import CircuitOpenError
from repro.runtime import Cluster, ClusterConfig, PeerBusy, run_load
from repro.runtime.recovery import RuntimeRecovery
from repro.runtime.wire import MsgType


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=12, **overrides):
    overrides.setdefault("mailbox_cap", 4)
    overrides.setdefault("busy_retries", 0)
    overrides.setdefault("breaker_threshold", 0)
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        **overrides,
    )


def gate_dispatch(actor):
    """Block the actor's dispatch behind an event; returns the gate."""
    gate = asyncio.Event()
    original = actor._dispatch

    async def gated(frame):
        await gate.wait()
        await original(frame)

    actor._dispatch = gated
    return gate


def pick_peer(cluster, not_on_host=None):
    """A member, optionally excluding a physical host."""
    for node_id, actor in sorted(cluster.actors.items()):
        if node_id == cluster.bootstrap.addr:
            continue
        if not_on_host is not None and int(actor.host) == int(not_on_host):
            continue
        return node_id
    raise AssertionError("no suitable peer")


class TestLanesAndShedding:
    def test_oldest_policy_sheds_queue_head_and_answers_busy(self):
        async def scenario():
            async with Cluster(make_config(shed_policy="oldest")) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                # all 8 publishes land before the drain task first
                # runs: 4 fill the lane, then each of the last 4
                # evicts the current queue head
                tasks = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                    for _ in range(8)
                ]
                await asyncio.sleep(0.05)
                shed_so_far = cluster.overload_counters()["shed"]
                gate.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                busy = [r for r in results if isinstance(r, PeerBusy)]
                ok = [r for r in results if isinstance(r, dict)]
                busy_indices = [
                    i for i, r in enumerate(results) if isinstance(r, PeerBusy)
                ]
                return shed_so_far, len(busy), len(ok), busy_indices

        shed, busy, ok, busy_indices = run(scenario())
        assert shed == 4
        assert busy == 4
        assert ok == 4
        # oldest-first: the stale queue heads (requests 1-4) were
        # evicted; the freshest arrivals survived
        assert busy_indices == [0, 1, 2, 3]

    def test_newest_policy_refuses_the_arrival(self):
        async def scenario():
            async with Cluster(make_config(shed_policy="newest")) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                tasks = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                    for _ in range(8)
                ]
                await asyncio.sleep(0.05)
                gate.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                busy_indices = [
                    i for i, r in enumerate(results) if isinstance(r, PeerBusy)
                ]
                return busy_indices

        # arrivals 5-8 bounced off the full lane; the queue kept 1-4
        assert run(scenario()) == [4, 5, 6, 7]

    def test_control_lane_is_never_shed(self):
        """HEARTBEATs pile up past any cap without a single shed."""

        async def scenario():
            async with Cluster(make_config(mailbox_cap=2)) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                tasks = [
                    asyncio.ensure_future(
                        origin.request(
                            victim_id, MsgType.HEARTBEAT, {"seq": i}, retry=False
                        )
                    )
                    for i in range(12)
                ]
                await asyncio.sleep(0.05)
                depth = len(victim.control_lane)
                shed = cluster.overload_counters()["shed"]
                gate.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return depth, shed, [r for r in results if not isinstance(r, dict)]

        depth, shed, failures = run(scenario())
        assert depth == 11  # 12 queued minus the one popped in-flight
        assert shed == 0
        assert failures == []

    def test_unbounded_cap_never_sheds(self):
        async def scenario():
            config = make_config(mailbox_cap=None)
            async with Cluster(config) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                tasks = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                    for _ in range(32)
                ]
                await asyncio.sleep(0.05)
                gate.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return cluster.overload_counters()["shed"], results

        shed, results = run(scenario())
        assert shed == 0
        assert all(isinstance(r, dict) for r in results)

    def test_config_validates_overload_knobs(self):
        with pytest.raises(ValueError, match="shed_policy"):
            make_config(shed_policy="random")
        with pytest.raises(ValueError, match="mailbox_cap"):
            make_config(mailbox_cap=0)
        with pytest.raises(ValueError, match="breaker_threshold"):
            make_config(breaker_threshold=-1)


class TestHeartbeatSurvivalUnderSaturation:
    def test_heartbeats_round_trip_while_data_lane_is_at_cap(self):
        """The satellite scenario: flood the data lane to its cap and
        assert HEARTBEAT round-trips still complete and no suspicion
        is raised -- an overloaded node must not look dead."""

        async def scenario():
            config = make_config(nodes=16, mailbox_cap=8)
            async with Cluster(config) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]

                # slow (not blocked) data handling: each publish takes
                # ~10ms, so the backlog stays near cap while probes run
                original_publish = victim._handle_publish

                async def slow_publish(frame):
                    await asyncio.sleep(0.01)
                    await original_publish(frame)

                victim._handle_publish = slow_publish
                flood = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                    for _ in range(60)
                ]
                await asyncio.sleep(0.005)  # let the lane hit its cap
                assert len(victim.data_lane) >= config.mailbox_cap - 1

                # heartbeat round-trips complete fast: the control lane
                # drains ahead of the queued data backlog
                began = asyncio.get_running_loop().time()
                ack = await cluster.ping(origin.addr, victim_id, seq=99)
                heartbeat_s = asyncio.get_running_loop().time() - began

                # a hand-ticked detector raises no suspicion while the
                # victim is saturated
                recovery = RuntimeRecovery(
                    cluster,
                    DetectorParams(period=50.0, suspicion_periods=1),
                    seed=11,
                )
                for _ in range(3):
                    await recovery.tick()
                suspected = dict(recovery.suspected)
                false_kills = recovery.false_kills
                confirmed = list(recovery.confirmed_dead)

                results = await asyncio.gather(*flood, return_exceptions=True)
                sheds = cluster.overload_counters()["shed"]
                busy = sum(1 for r in results if isinstance(r, PeerBusy))
                return ack, heartbeat_s, suspected, false_kills, confirmed, sheds, busy

        ack, heartbeat_s, suspected, false_kills, confirmed, sheds, busy = run(
            scenario()
        )
        assert ack["seq"] == 99
        assert heartbeat_s < 0.25  # far below probe_timeout, not FIFO'd
        assert suspected == {}
        assert confirmed == []
        assert false_kills == 0
        assert sheds > 0  # the flood really did saturate the lane
        assert busy == sheds  # every shed answered BUSY to its origin


class TestDetectorShielding:
    def test_busy_counts_as_alive_evidence(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                recovery = RuntimeRecovery(
                    cluster, DetectorParams(period=50.0), seed=11
                )
                prober = cluster.bootstrap.addr
                target = pick_peer(cluster)
                actor = cluster.actors[prober]

                async def busy_request(*args, **kwargs):
                    raise PeerBusy("peer shed the probe")

                actor.request = busy_request
                return await recovery._heartbeat(prober, target)

        assert run(scenario()) is True


class TestCircuitBreaker:
    def test_consecutive_busy_opens_then_fast_fails_then_recovers(self):
        async def scenario():
            config = make_config(
                mailbox_cap=1,
                shed_policy="newest",
                breaker_threshold=2,
                breaker_reset_s=0.05,
            )
            async with Cluster(config) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                # req 1 is popped in-flight (hangs on the gate); once
                # it is, req 2 fills the one-slot lane; both survive
                hung = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                ]
                await asyncio.sleep(0.01)
                hung.append(
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                )
                await asyncio.sleep(0.01)
                # two BUSY sheds in a row open the breaker...
                failures = []
                for _ in range(2):
                    with pytest.raises(PeerBusy):
                        await origin.request(
                            victim_id, MsgType.PUBLISH, {}, retry=False
                        )
                    failures.append("busy")
                counters_open = cluster.overload_counters()
                # ...and the next request fast-fails locally
                with pytest.raises(CircuitOpenError):
                    await origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                counters_fastfail = cluster.overload_counters()
                # after the reset window a half-open probe goes through
                gate.set()
                await asyncio.gather(*hung)
                await asyncio.sleep(0.06)
                ack = await origin.request(
                    victim_id, MsgType.PUBLISH, {}, retry=False
                )
                counters_closed = cluster.overload_counters()
                return counters_open, counters_fastfail, counters_closed, ack

        opened, fastfailed, closed, ack = run(scenario())
        assert opened["breaker_opens"] == 1
        assert opened["busy_replies"] == 2
        assert fastfailed["breaker_fastfails"] == 1
        assert closed["breaker_closes"] == 1
        assert closed["breakers_open_now"] == 0
        assert isinstance(ack, dict)

    def test_control_traffic_ignores_breakers(self):
        """HEARTBEATs flow to a peer whose data breaker is open."""

        async def scenario():
            config = make_config(
                mailbox_cap=1, shed_policy="newest", breaker_threshold=1
            )
            async with Cluster(config) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                hung = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                ]
                await asyncio.sleep(0.01)
                hung.append(
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                )
                await asyncio.sleep(0.01)
                with pytest.raises(PeerBusy):
                    await origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                assert cluster.overload_counters()["breakers_open_now"] == 1
                with pytest.raises(CircuitOpenError):
                    await origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                gate.set()
                # the surviving requests complete, and their successes
                # close the breaker again
                await asyncio.gather(*hung)
                assert cluster.overload_counters()["breakers_open_now"] == 0
                # re-open it without any traffic in flight, so data
                # fast-fails while the victim is perfectly healthy...
                origin._breaker_for(victim_id).record_failure()
                with pytest.raises(CircuitOpenError):
                    await origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                # ...but the heartbeat goes through: control frames
                # never consult a breaker
                ack = await cluster.ping(origin.addr, victim_id, seq=7)
                return ack, cluster.overload_counters()["breakers_open_now"]

        ack, still_open = run(scenario())
        assert ack["seq"] == 7
        assert still_open == 1

    def test_busy_retry_budget_can_outlast_a_transient(self):
        """With busy_retries armed, a shed request succeeds on resend
        once the backlog clears."""

        async def scenario():
            config = make_config(
                mailbox_cap=1,
                shed_policy="newest",
                busy_retries=8,
                busy_backoff_base_ms=5.0,
                busy_backoff_cap_ms=20.0,
            )
            async with Cluster(config) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate = gate_dispatch(victim)
                hung = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                ]
                await asyncio.sleep(0.01)
                hung.append(
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                )
                await asyncio.sleep(0.01)
                # this request gets shed now, but its jittered resends
                # land after the gate opens
                retried = asyncio.ensure_future(
                    origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                )
                await asyncio.sleep(0.01)
                gate.set()
                await asyncio.gather(*hung)
                ack = await retried
                return ack, origin.busy_retries

        ack, busy_retries = run(scenario())
        assert isinstance(ack, dict)
        assert busy_retries >= 1


class TestAdaptiveTimeoutIntegration:
    def test_rtt_samples_tighten_the_request_timeout(self):
        async def scenario():
            config = make_config(
                nodes=12, mailbox_cap=1024, request_timeout=30.0, rto_min_s=0.25
            )
            async with Cluster(config) as cluster:
                src = cluster.bootstrap.addr
                for i in range(8):
                    await cluster.lookup(src, (0.1 * (i % 9) + 0.05, 0.5))
                actor = cluster.actors[src]
                rtos = dict(actor._rtos)
                return {
                    dst: (rto.samples, rto.timeout()) for dst, rto in rtos.items()
                }, config.request_timeout

        rtos, static = run(scenario())
        assert rtos  # data requests built per-peer RTO state
        for samples, timeout in rtos.values():
            assert samples >= 1
            # local loopback RTTs are microseconds: the adaptive RTO
            # collapses to the floor instead of the 30 s static value
            assert timeout == pytest.approx(0.25)
            assert timeout < static

    def test_disabled_adaptive_timeout_keeps_static_behavior(self):
        async def scenario():
            config = make_config(nodes=12, mailbox_cap=1024, adaptive_timeout=False)
            async with Cluster(config) as cluster:
                src = cluster.bootstrap.addr
                for i in range(4):
                    await cluster.lookup(src, (0.1 * i + 0.05, 0.5))
                return dict(cluster.actors[src]._rtos)

        assert run(scenario()) == {}


class TestCrashDropAccounting:
    def test_crash_counts_queued_frames(self):
        async def scenario():
            async with Cluster(make_config(nodes=16, mailbox_cap=64)) as cluster:
                origin = cluster.bootstrap
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                gate_dispatch(victim)  # never opened: frames stay queued
                tasks = [
                    asyncio.ensure_future(
                        origin.request(victim_id, MsgType.PUBLISH, {}, retry=False)
                    )
                    for _ in range(4)
                ]
                await asyncio.sleep(0.01)
                queued = len(victim.data_lane)
                await cluster.crash(victim_id)
                dropped = cluster.overload_counters()["crash_dropped"]
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                return queued, dropped

        queued, dropped = run(scenario())
        # 4 requests: one popped in-flight, three queued at crash time
        assert queued == 3
        assert dropped == 3

    def test_crash_fails_the_victims_pending_requests_immediately(self):
        async def scenario():
            async with Cluster(make_config(nodes=16, mailbox_cap=64)) as cluster:
                victim_id = pick_peer(cluster)
                victim = cluster.actors[victim_id]
                peer_id = pick_peer(cluster, not_on_host=victim.host)
                peer = cluster.actors[peer_id]
                gate_dispatch(peer)  # the reply will never come
                pending = asyncio.ensure_future(
                    victim.request(peer_id, MsgType.PUBLISH, {}, retry=False)
                )
                await asyncio.sleep(0.01)
                assert not pending.done()
                await cluster.crash(victim_id)
                # the future must fail promptly, not after the timeout
                try:
                    await asyncio.wait_for(pending, timeout=1.0)
                except asyncio.TimeoutError:
                    return "hung"
                except Exception as exc:
                    return type(exc).__name__
                return "succeeded"

        assert run(scenario()) == "TransportError"


class TestLoadgenOverloadAccounting:
    def test_open_loop_flood_sheds_and_reports(self):
        """An open-loop burst far past capacity sheds at the origin
        lanes and the load report carries the accounting."""

        async def scenario():
            config = make_config(
                nodes=8,
                mailbox_cap=8,
                busy_retries=2,
                breaker_threshold=0,
            )
            async with Cluster(config) as cluster:
                report = await run_load(
                    cluster, rate=1_000_000.0, count=300, seed=7, op="lookup"
                )
                return report

        report = run(scenario())
        assert report.ops == 300
        assert report.shed > 0  # the burst really overflowed the lanes
        summary = report.summary()
        assert summary["wall_shed"] == report.shed
        assert summary["wall_busy_errors"] == report.busy_errors
        assert summary["wall_breaker_fastfails"] == report.breaker_fastfails
        # every request resolved one way or the other
        assert len(report.latencies_ms) + len(report.error_latencies_ms) == 300
