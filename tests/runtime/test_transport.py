"""Transport contract: delivery, shaping, faults -- loopback and TCP."""

import asyncio

import pytest

from repro.netsim.faults import FaultInjector, FaultPlan
from repro.runtime.transport import (
    LoopbackTransport,
    TcpTransport,
    TransportError,
    make_transport,
)
from repro.runtime.wire import Frame, MsgType


def run(coroutine):
    return asyncio.run(coroutine)


class Collector:
    def __init__(self):
        self.frames = []
        self.event = asyncio.Event()

    async def __call__(self, frame):
        self.frames.append(frame)
        self.event.set()

    async def wait(self, count=1, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.frames) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise AssertionError(
                    f"only {len(self.frames)}/{count} frames arrived"
                )
            self.event.clear()
            try:
                await asyncio.wait_for(self.event.wait(), remaining)
            except asyncio.TimeoutError:
                pass


@pytest.mark.parametrize("kind", ["loopback", "tcp"])
class TestDelivery:
    def test_bound_endpoint_receives_frames(self, kind):
        async def scenario():
            transport = make_transport(kind)
            await transport.start()
            inbox = Collector()
            await transport.bind("a", Collector())
            await transport.bind("b", inbox)
            frame = Frame(MsgType.HEARTBEAT, 3, {"seq": 1, "src": "a"})
            assert await transport.send("a", "b", frame)
            await inbox.wait(1)
            await transport.close()
            return inbox.frames[0]

        received = run(scenario())
        assert received.kind is MsgType.HEARTBEAT
        assert received.request_id == 3
        assert received.payload == {"seq": 1, "src": "a"}

    def test_unbound_destination_is_a_drop(self, kind):
        async def scenario():
            transport = make_transport(kind)
            await transport.start()
            await transport.bind("a", Collector())
            sent = await transport.send("a", "ghost", Frame(MsgType.ACK, 1, {}))
            dropped = transport.dropped
            await transport.close()
            return sent, dropped

        sent, dropped = run(scenario())
        assert sent is False
        assert dropped == 1

    def test_double_bind_refused(self, kind):
        async def scenario():
            transport = make_transport(kind)
            await transport.start()
            await transport.bind("a", Collector())
            try:
                with pytest.raises(TransportError, match="already bound"):
                    await transport.bind("a", Collector())
            finally:
                await transport.close()

        run(scenario())

    def test_frames_preserve_order_without_shaping(self, kind):
        async def scenario():
            transport = make_transport(kind)
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.bind("tx", Collector())
            for i in range(20):
                await transport.send("tx", "rx", Frame(MsgType.ACK, i, {"i": i}))
            await inbox.wait(20)
            await transport.close()
            return [f.payload["i"] for f in inbox.frames]

        assert run(scenario()) == list(range(20))


class TestLatencyShaping:
    def test_delay_follows_the_oracle(self, tiny_network):
        """Shaped delay = one-way oracle latency x latency_scale."""
        transport = LoopbackTransport(
            oracle=tiny_network.oracle, latency_scale=0.25
        )
        transport.hosts["a"] = 0
        transport.hosts["b"] = 5
        expected = float(tiny_network.oracle.distance(0, 5)) * 0.25
        assert transport.delay_for("a", "b") == pytest.approx(expected)
        # same host or unknown host: no delay
        transport.hosts["c"] = 0
        assert transport.delay_for("a", "c") == 0.0
        assert transport.delay_for("a", "mystery") == 0.0

    def test_scale_zero_disables_shaping(self, tiny_network):
        transport = LoopbackTransport(oracle=tiny_network.oracle, latency_scale=0.0)
        transport.hosts["a"] = 0
        transport.hosts["b"] = 5
        assert transport.delay_for("a", "b") == 0.0

    def test_shaped_send_actually_waits(self, tiny_network):
        async def scenario():
            scale = 0.002  # 2 ms of wall per simulated ms
            transport = LoopbackTransport(
                oracle=tiny_network.oracle, latency_scale=scale
            )
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox, host=5)
            await transport.bind("tx", Collector(), host=0)
            loop = asyncio.get_running_loop()
            began = loop.time()
            await transport.send("tx", "rx", Frame(MsgType.ACK, 1, {}))
            await inbox.wait(1)
            waited = loop.time() - began
            await transport.close()
            return waited, float(tiny_network.oracle.distance(0, 5)) * scale

        waited, floor = run(scenario())
        assert waited >= floor * 0.5  # scheduling jitter allowed downward


class TestFaultInjection:
    def test_message_loss_drops_frames(self, tiny_network):
        async def scenario():
            faults = FaultInjector(
                tiny_network, FaultPlan(message_loss_rate=1.0), seed=1
            )
            faults.armed = True
            transport = LoopbackTransport(faults=faults)
            await transport.start()
            await transport.bind("a", Collector(), host=0)
            inbox = Collector()
            await transport.bind("b", inbox, host=5)
            sent = await transport.send("a", "b", Frame(MsgType.ACK, 1, {}))
            await transport.close()
            return sent, transport.dropped, inbox.frames

        sent, dropped, frames = run(scenario())
        assert sent is False
        assert dropped == 1
        assert frames == []
        assert tiny_network.stats.get("fault_message_lost") == 1

    def test_loss_is_deterministic_per_seed(self, tiny_network):
        def decisions(seed):
            faults = FaultInjector(
                tiny_network, FaultPlan(message_loss_rate=0.5), seed=seed
            )
            faults.armed = True
            transport = LoopbackTransport(faults=faults)
            transport.hosts["a"] = 0
            transport.hosts["b"] = 5
            return [transport.drops("a", "b") for _ in range(64)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_crashed_host_blocks_traffic(self, tiny_network):
        async def scenario():
            faults = FaultInjector(tiny_network, FaultPlan(), seed=0)
            faults.armed = True
            faults.crash_host(5)
            transport = LoopbackTransport(faults=faults)
            await transport.start()
            await transport.bind("a", Collector(), host=0)
            await transport.bind("b", Collector(), host=5)
            sent = await transport.send("a", "b", Frame(MsgType.ACK, 1, {}))
            await transport.close()
            return sent

        assert run(scenario()) is False


class TestTcpSpecifics:
    def test_endpoints_get_distinct_ports(self):
        async def scenario():
            transport = TcpTransport()
            await transport.start()
            await transport.bind("a", Collector())
            await transport.bind("b", Collector())
            ports = {port for _, port in transport.endpoints.values()}
            await transport.close()
            return ports

        assert len(run(scenario())) == 2

    def test_large_frame_crosses_the_socket(self):
        async def scenario():
            transport = TcpTransport()
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.bind("tx", Collector())
            payload = {"blob": "y" * 200_000}
            await transport.send("tx", "rx", Frame(MsgType.PUBLISH, 9, payload))
            await inbox.wait(1, timeout=10.0)
            await transport.close()
            return inbox.frames[0].payload

        assert run(scenario())["blob"] == "y" * 200_000

    def test_unknown_transport_kind(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("carrier-pigeon")

    def test_rebind_then_send_reaches_the_new_server(self):
        """A restarted endpoint must receive traffic on its new socket.

        The sender caches one connection per destination; rebinding an
        address starts a fresh server on a fresh port, so a cached
        writer aimed at the old port would send frames into the void.
        The bind must invalidate the stale writer.
        """

        async def scenario():
            transport = TcpTransport()
            await transport.start()
            await transport.bind("tx", Collector())
            first = Collector()
            await transport.bind("rx", first)
            assert await transport.send(
                "tx", "rx", Frame(MsgType.HEARTBEAT, 1, {"seq": 1})
            )
            await first.wait(1)
            # restart: same address, new server (and new port)
            await transport.unbind("rx")
            second = Collector()
            await transport.bind("rx", second)
            assert await transport.send(
                "tx", "rx", Frame(MsgType.HEARTBEAT, 2, {"seq": 2})
            )
            await second.wait(1)
            await transport.close()
            return first.frames, second.frames

        first, second = run(scenario())
        assert [f.payload["seq"] for f in first] == [1]
        assert [f.payload["seq"] for f in second] == [2]

    def test_rebind_closes_the_replaced_writer(self):
        """Writers displaced from the cache are closed, not leaked."""

        async def scenario():
            transport = TcpTransport()
            await transport.start()
            await transport.bind("tx", Collector())
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.send(
                "tx", "rx", Frame(MsgType.HEARTBEAT, 1, {"seq": 1})
            )
            await inbox.wait(1)
            writer = transport._writers.get("rx")
            assert writer is not None
            await transport.unbind("rx")
            closing = writer.is_closing()
            stale = "rx" in transport._writers
            await transport.close()
            return closing, stale

        closing, stale = run(scenario())
        assert closing, "displaced writer must be closed"
        assert not stale, "unbind must drop the cached writer"


class TestOutboxBackpressure:
    def test_outbox_cap_refuses_overflow_frames(self):
        """A full per-peer write queue drops (and counts) new frames.

        The flusher task spawned by the first send has not run yet, so
        every later send in the same event-loop turn lands in the same
        batch -- deterministic overflow without a slow peer.
        """

        async def scenario():
            transport = TcpTransport(outbox_cap=4)
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.bind("tx", Collector())
            results = [
                await transport.send(
                    "tx", "rx", Frame(MsgType.HEARTBEAT, seq + 1, {"seq": seq})
                )
                for seq in range(6)
            ]
            await inbox.wait(4)
            await transport.close()
            return results, transport.backpressure_drops, len(inbox.frames)

        results, backpressure, delivered = run(scenario())
        # send 0 seeds the batch and spawns the flusher; 1-3 fill the
        # cap; 4 and 5 are refused
        assert results == [True, True, True, True, False, False]
        assert backpressure == 2
        assert delivered == 4

    def test_uncapped_outbox_still_accepts_everything(self):
        async def scenario():
            transport = TcpTransport(outbox_cap=None)
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.bind("tx", Collector())
            for seq in range(64):
                assert await transport.send(
                    "tx", "rx", Frame(MsgType.HEARTBEAT, seq + 1, {"seq": seq})
                )
            await inbox.wait(64)
            await transport.close()
            return transport.backpressure_drops, len(inbox.frames)

        backpressure, delivered = run(scenario())
        assert backpressure == 0
        assert delivered == 64

    def test_outbox_cap_validation(self):
        with pytest.raises(ValueError, match="outbox_cap"):
            TcpTransport(outbox_cap=0)
