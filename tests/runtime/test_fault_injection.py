"""Transport fault injection: drops, partitions, poisoned streams.

Satellite coverage for the live self-healing stack: both transports
must agree that crashed hosts, lossy links and partition cuts *refuse
the send* (the failure detector's death evidence), that a peer's
ERROR frame resolves the pending request future instead of leaving it
to time out, and that corrupt bytes on a TCP connection poison only
that connection's decoder.
"""

import asyncio
import math

import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.netsim.faults import FaultInjector, FaultPlan, Partition
from repro.runtime import Cluster, ClusterConfig
from repro.runtime.node import RemoteError
from repro.runtime.transport import TransportError, make_transport
from repro.runtime.wire import Frame, FrameDecoder, MsgType, ProtocolError, encode_frame


def run(coroutine):
    return asyncio.run(coroutine)


class Collector:
    def __init__(self):
        self.frames = []
        self.event = asyncio.Event()

    async def __call__(self, frame):
        self.frames.append(frame)
        self.event.set()

    async def wait(self, count=1, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.frames) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise AssertionError(
                    f"only {len(self.frames)}/{count} frames arrived"
                )
            self.event.clear()
            try:
                await asyncio.wait_for(self.event.wait(), remaining)
            except asyncio.TimeoutError:
                pass


def cross_domain_hosts(network):
    """(host_a, host_b, host_same): b in another transit domain than a."""
    domains = network.topology.transit_domain
    d0 = int(domains[0])
    other = next(h for h in range(len(domains)) if int(domains[h]) != d0)
    same = next(h for h in range(1, len(domains)) if int(domains[h]) == d0)
    return 0, other, same


@pytest.mark.parametrize("kind", ["loopback", "tcp"])
class TestPartitionsAndLoss:
    def test_partition_refuses_cross_domain_sends(self, kind, tiny_network):
        """An active partition drops the frame at the sender -- on both
        transports -- while same-side traffic still delivers."""
        a, b, same = cross_domain_hosts(tiny_network)
        window = Partition(
            start=0.0,
            end=math.inf,
            domains=(int(tiny_network.topology.transit_domain[a]),),
        )
        faults = FaultInjector(
            tiny_network, FaultPlan(partitions=(window,)), seed=0
        )
        faults.armed = True

        async def scenario():
            transport = make_transport(kind, faults=faults)
            await transport.start()
            inbox_far = Collector()
            inbox_near = Collector()
            await transport.bind("a", Collector(), host=a)
            await transport.bind("b", inbox_far, host=b)
            await transport.bind("c", inbox_near, host=same)
            crossed = await transport.send(
                "a", "b", Frame(MsgType.HEARTBEAT, 1, {"seq": 0, "src": "a"})
            )
            stayed = await transport.send(
                "a", "c", Frame(MsgType.HEARTBEAT, 2, {"seq": 0, "src": "a"})
            )
            await inbox_near.wait(1)
            await transport.close()
            return crossed, stayed, inbox_far.frames, inbox_near.frames

        crossed, stayed, far, near = run(scenario())
        assert crossed is False
        assert stayed is True
        assert far == []
        assert len(near) == 1

    def test_total_loss_refuses_every_send(self, kind, tiny_network):
        faults = FaultInjector(
            tiny_network, FaultPlan(message_loss_rate=1.0), seed=1
        )
        faults.armed = True

        async def scenario():
            transport = make_transport(kind, faults=faults)
            await transport.start()
            await transport.bind("a", Collector(), host=0)
            inbox = Collector()
            await transport.bind("b", inbox, host=5)
            sent = await transport.send("a", "b", Frame(MsgType.ACK, 1, {}))
            dropped = transport.dropped
            await transport.close()
            return sent, dropped, inbox.frames

        sent, dropped, frames = run(scenario())
        assert sent is False
        assert dropped == 1
        assert frames == []

    def test_crashed_host_refuses_sends(self, kind, tiny_network):
        faults = FaultInjector(tiny_network, FaultPlan(), seed=0)
        faults.armed = True
        faults.crash_host(5)

        async def scenario():
            transport = make_transport(kind, faults=faults)
            await transport.start()
            await transport.bind("a", Collector(), host=0)
            await transport.bind("b", Collector(), host=5)
            sent = await transport.send("a", "b", Frame(MsgType.ACK, 1, {}))
            await transport.close()
            return sent

        assert run(scenario()) is False


@pytest.mark.parametrize("kind", ["loopback", "tcp"])
class TestErrorPropagation:
    def test_error_frame_resolves_pending_future(self, kind):
        """A peer whose handler blows up answers with an ERROR frame,
        and the requester's future resolves with RemoteError -- no
        timeout, no hang."""

        async def scenario():
            config = ClusterConfig(
                nodes=6,
                network=NetworkParams(topo_scale=0.25, seed=3),
                overlay=OverlayParams(num_nodes=6, seed=5),
                transport=kind,
                request_timeout=30.0,
            )
            async with Cluster(config) as cluster:
                actor = cluster.actors[0]
                began = asyncio.get_running_loop().time()
                with pytest.raises(RemoteError):
                    # ROUTE without a "point" makes the peer's handler
                    # raise KeyError, answered as an ERROR frame
                    await actor.request(1, MsgType.ROUTE, {"path": [0]})
                return asyncio.get_running_loop().time() - began

        waited = run(scenario())
        assert waited < 5.0  # resolved by the ERROR frame, not the deadline


class TestStopFailsPending:
    def test_stop_fails_pending_requests_fast(self):
        """Stopping an actor fails its in-flight requests with
        TransportError (a regular Exception), not CancelledError."""

        async def scenario():
            config = ClusterConfig(
                nodes=4,
                network=NetworkParams(topo_scale=0.25, seed=3),
                overlay=OverlayParams(num_nodes=4, seed=5),
            )
            async with Cluster(config) as cluster:
                actor = cluster.actors[0]
                # a bound endpoint that never replies keeps the future pending
                await cluster.transport.bind("mute", Collector())
                request = asyncio.get_running_loop().create_task(
                    actor.request("mute", MsgType.HEARTBEAT, {"seq": 0}, timeout=30.0)
                )
                await asyncio.sleep(0.05)
                assert not request.done()
                await actor.stop()
                with pytest.raises(TransportError, match="stopped"):
                    await request
                cluster.actors.pop(0)

        run(scenario())


class TestDecoderPoisonRecovery:
    def test_fresh_decoder_recovers_after_poison(self):
        """A ProtocolError poisons the decoder for good; stream recovery
        is connection-scoped -- a fresh decoder picks the stream back up."""
        good = encode_frame(Frame(MsgType.ACK, 1, {"ok": True}))
        decoder = FrameDecoder()
        assert decoder.feed(good)[0].payload == {"ok": True}
        with pytest.raises(ProtocolError):
            decoder.feed(b"XX" + b"\x00" * 32)
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(good)
        replacement = FrameDecoder()
        assert replacement.feed(good)[0].payload == {"ok": True}

    def test_tcp_garbage_poisons_only_its_connection(self):
        """Junk bytes on one TCP connection never unbind the endpoint:
        the poisoned connection drops, valid frames keep flowing."""

        async def scenario():
            transport = make_transport("tcp")
            await transport.start()
            inbox = Collector()
            await transport.bind("rx", inbox)
            await transport.bind("tx", Collector())
            # raw junk straight at rx's socket
            _, writer = await asyncio.open_connection(*transport.endpoints["rx"])
            writer.write(b"GARBAGE-NOT-A-FRAME" * 4)
            await writer.drain()
            await asyncio.sleep(0.1)
            writer.close()
            # the endpoint still serves real traffic
            sent = await transport.send(
                "tx", "rx", Frame(MsgType.HEARTBEAT, 7, {"seq": 1, "src": "tx"})
            )
            await inbox.wait(1)
            await transport.close()
            return sent, inbox.frames[0].request_id

        sent, request_id = run(scenario())
        assert sent is True
        assert request_id == 7
