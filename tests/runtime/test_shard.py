"""Sharded multi-process runtime: parity, peering, crash surfacing."""

import asyncio
import os
import signal

import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.runtime import (
    ClusterConfig,
    Cluster,
    ShardCrashed,
    ShardedCluster,
    make_cluster,
    shard_assignment,
)
from repro.runtime.shard import _ENVELOPE, _EnvelopeDecoder
from repro.runtime.wire import Frame, MsgType, encode_frame


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=16, shards=2, transport="loopback", **overrides):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        transport=transport,
        shards=shards,
        **overrides,
    )


class TestAssignment:
    def test_make_cluster_dispatches_on_shards(self):
        assert isinstance(make_cluster(make_config(shards=1)), Cluster)
        assert isinstance(make_cluster(make_config(shards=2)), ShardedCluster)

    def test_assignment_is_balanced_and_deterministic(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=18, shards=4)) as c:
                hosts = {n: c.routing.host_of(n) for n in c.assignment}
                again = shard_assignment(c.network, hosts, 4)
                return dict(c.assignment), again

        assignment, again = run(scenario())
        assert assignment == again
        sizes = sorted(
            sum(1 for s in assignment.values() if s == shard)
            for shard in range(4)
        )
        # 18 across 4: every shard within one member of the others
        assert sizes == [4, 4, 5, 5]

    def test_assignment_groups_by_transit_domain(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16, shards=2)) as c:
                domain = c.network.topology.transit_domain
                return {
                    n: (int(domain[c.routing.host_of(n)]), shard)
                    for n, shard in c.assignment.items()
                }

        placed = run(scenario())
        # contiguous slices over the domain-sorted order: a member of a
        # lower domain never lands in a higher shard than a member of a
        # strictly higher domain
        for n1, (dom1, shard1) in placed.items():
            for n2, (dom2, shard2) in placed.items():
                if dom1 < dom2:
                    assert shard1 <= shard2, (n1, n2, placed)


class TestEnvelope:
    def test_decoder_reassembles_across_chunks(self):
        frames = [
            Frame(MsgType.HEARTBEAT, i, {"seq": i}) for i in range(5)
        ]
        blob = b"".join(
            _ENVELOPE.pack(100 + i) + encode_frame(f, packed=True)
            for i, f in enumerate(frames)
        )
        decoder = _EnvelopeDecoder()
        out = []
        for i in range(0, len(blob), 7):  # feed in awkward 7-byte slivers
            out.extend(decoder.feed(blob[i:i + 7]))
        assert [dst for dst, _ in out] == [100 + i for i in range(5)]
        assert [f.payload["seq"] for _, f in out] == list(range(5))
        assert [f.request_id for _, f in out] == list(range(5))


class TestParity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_parity_loopback(self, shards):
        async def scenario():
            async with ShardedCluster(
                make_config(nodes=16, shards=shards)
            ) as cluster:
                return await cluster.verify_against_sim(
                    lookups=48, routes=12
                )

        verdict = run(scenario())
        assert verdict["ok"], verdict
        assert verdict["checked"] == 60

    def test_sharded_parity_tcp_inner_transport(self):
        async def scenario():
            async with ShardedCluster(
                make_config(nodes=12, shards=2, transport="tcp")
            ) as cluster:
                return await cluster.verify_against_sim(
                    lookups=32, routes=8
                )

        verdict = run(scenario())
        assert verdict["ok"], verdict

    def test_sharded_parity_bulk_boot(self):
        """Replicas and the reference sim boot the same way."""

        async def scenario():
            async with ShardedCluster(
                make_config(nodes=16, shards=2, bulk_boot=True)
            ) as cluster:
                return await cluster.verify_against_sim(
                    lookups=32, routes=8
                )

        verdict = run(scenario())
        assert verdict["ok"], verdict


class TestCrossShard:
    def test_route_crosses_shards_over_peering(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16)) as cluster:
                by_shard = {}
                for node, shard in cluster.assignment.items():
                    by_shard.setdefault(shard, []).append(node)
                src = by_shard[0][0]
                dst = by_shard[1][0]
                result = await cluster.route(src, dst)
                counters = await cluster.counters()
                return src, dst, result, counters["transport"]

        src, dst, result, transport = run(scenario())
        assert result["owner"] == dst
        assert result["path"][0] == src
        assert result["path"][-1] == dst
        # the hops (or at least the final delivery + ACK) really rode
        # the peering sockets
        assert transport["peer_sent"] > 0
        assert transport["peer_delivered"] == transport["peer_sent"]
        assert transport["peer_misrouted"] == 0

    def test_distributed_load_sums_cleanly(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16)) as cluster:
                report = await cluster.run_load(
                    rate=0.0, count=120, seed=11, concurrency=8
                )
                counters = await cluster.counters()
                return report, counters

        report, counters = run(scenario())
        assert report.ops == 120
        assert report.errors == 0
        assert len(report.latencies_ms) == 120
        assert report.mode == "closed"
        assert report.loop == "asyncio"
        # every lookup was issued by exactly one worker, and the
        # aggregated telemetry sees all of them
        assert counters["metrics"]["loadgen_ops"] == 120
        assert counters["events"]["runtime_lookup"] == 120

    def test_counter_aggregation_sums_per_shard(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16)) as cluster:
                for node in list(cluster.assignment)[:6]:
                    await cluster.lookup(node, (0.25, 0.75))
                return await cluster.counters()

        counters = run(scenario())
        per_shard = counters["per_shard"]
        assert len(per_shard) == 2
        total = sum(
            shard["events"].get("runtime_lookup", 0) for shard in per_shard
        )
        assert counters["events"]["runtime_lookup"] == total == 6
        overload = counters["overload"]
        assert overload["shed"] == 0 and overload["busy_replies"] == 0


class TestChurn:
    def test_crash_applies_on_every_replica(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16)) as cluster:
                members = dict(cluster.assignment)
                victim = next(n for n, s in members.items() if s == 1)
                out = await cluster.crash(victim)
                survivor = next(
                    n for n in cluster.assignment if cluster.assignment[n] == 0
                )
                # a key in the survivor's own zone terminates locally,
                # so it must keep resolving however the corpse's zone
                # now routes (repair needs the failure detector)
                center = cluster.routing.zone_center(survivor)
                result = await cluster.lookup(survivor, center)
                return victim, out, result, dict(cluster.assignment)

        victim, out, result, assignment = run(scenario())
        assert victim in out["victims"]
        assert victim not in assignment
        assert "owner" in result  # survivors keep serving

    def test_leave_shrinks_membership_everywhere(self):
        async def scenario():
            async with ShardedCluster(make_config(nodes=16)) as cluster:
                leaver = next(
                    n for n, s in cluster.assignment.items()
                    if s == 1 and n != 0
                )
                await cluster.leave(leaver)
                survivor = next(
                    n for n in cluster.assignment if cluster.assignment[n] == 0
                )
                result = await cluster.lookup(survivor, (0.3, 0.6))
                return leaver, len(cluster), result

        leaver, size, result = run(scenario())
        assert size == 15
        assert result["owner"] != leaver

    def test_recovery_is_explicitly_unsupported(self):
        from repro.runtime import NotSupportedError

        async def scenario():
            async with ShardedCluster(make_config(nodes=8)) as cluster:
                assert cluster.recovery is None
                # typed refusal, still a NotImplementedError for old callers
                with pytest.raises(NotSupportedError) as excinfo:
                    await cluster.enable_recovery()
                assert isinstance(excinfo.value, NotImplementedError)
                assert "peering plane" in str(excinfo.value)

        run(scenario())


class TestWorkerCrash:
    def test_dead_worker_raises_typed_error_not_hang(self):
        async def scenario():
            cluster = ShardedCluster(make_config(nodes=8))
            await cluster.start()
            try:
                os.kill(cluster.workers[1].process.pid, signal.SIGKILL)
                src = next(
                    n for n, s in cluster.assignment.items() if s == 1
                )
                with pytest.raises(ShardCrashed):
                    await asyncio.wait_for(
                        cluster.lookup(src, (0.1, 0.9)), timeout=30
                    )
            finally:
                await cluster.stop()  # must not hang on the corpse

        run(scenario())

    def test_stop_is_idempotent_and_restartable_guard(self):
        async def scenario():
            cluster = ShardedCluster(make_config(nodes=8))
            await cluster.start()
            await cluster.stop()
            await cluster.stop()  # second stop is a no-op
            return cluster.workers

        assert run(scenario()) == []


class TestConfigValidation:
    def test_latency_shaping_rejected_across_shards(self):
        with pytest.raises(ValueError):
            ShardedCluster(make_config(latency_scale=0.001))

    def test_shards_capped_by_membership(self):
        with pytest.raises(ValueError):
            make_config(nodes=4, shards=8)
