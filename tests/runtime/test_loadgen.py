"""Open-loop load driver: schedules, percentiles, reports."""

import asyncio

import numpy as np
import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.runtime import Cluster, ClusterConfig, latency_percentiles, run_load
from repro.runtime.loadgen import LoadReport


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=16):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
    )


class TestPercentiles:
    def test_ordering_and_values(self):
        sample = list(range(1, 101))  # 1..100 ms
        pct = latency_percentiles(sample)
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert pct["p50"] == pytest.approx(50.5)

    def test_empty_sample_is_nan(self):
        pct = latency_percentiles([])
        assert all(np.isnan(v) for v in pct.values())


class TestLoadReport:
    def test_summary_wall_keys(self):
        """Wall-derived numbers live only under wall-prefixed keys."""
        report = LoadReport(
            ops=10,
            errors=1,
            latencies_ms=[1.0] * 10,
            offered_rate=100.0,
            wall_duration_s=0.5,
        )
        summary = report.summary()
        assert summary["ops"] == 10
        assert summary["errors"] == 1
        assert report.succeeded == 9
        assert summary["wall_throughput_ops"] == pytest.approx(18.0)
        for key, value in summary.items():
            if isinstance(value, float) and key not in ("offered_rate",):
                assert key.startswith("wall"), key


class TestRunLoad:
    def test_all_lookups_complete_without_errors(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                return await run_load(cluster, rate=4000, count=120, seed=11)

        report = run(scenario())
        assert report.ops == 120
        assert report.errors == 0
        assert len(report.latencies_ms) == 120
        pct = report.percentiles()
        assert 0 < pct["p50"] <= pct["p99"]
        assert report.achieved_rate > 0

    def test_route_op_mix(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                return await run_load(
                    cluster, rate=4000, count=40, seed=2, op="route"
                )

        report = run(scenario())
        assert report.errors == 0

    def test_unknown_op_rejected(self):
        async def scenario():
            async with Cluster(make_config(nodes=4)) as cluster:
                with pytest.raises(ValueError, match="unknown op"):
                    await run_load(cluster, rate=100, count=4, op="teleport")

        run(scenario())

    def test_open_loop_respects_arrival_schedule(self):
        """Total duration is at least the last scheduled arrival offset."""

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                rng = np.random.default_rng(9)
                from repro.workloads import poisson_arrivals

                expected_last = poisson_arrivals(200.0, 30, rng)[-1]
                report = await run_load(cluster, rate=200.0, count=30, seed=9)
                return report, float(expected_last)

        report, expected_last = run(scenario())
        # the driver fires at scheduled offsets, so the run cannot end
        # before the final arrival (minus scheduler slop)
        assert report.wall_duration_s >= expected_last * 0.8

    def test_telemetry_counters_recorded(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                await run_load(cluster, rate=4000, count=25, seed=1)
                counters = dict(cluster.network.telemetry.counters)
                return counters

        counters = run(scenario())
        assert counters.get("loadgen_ops") == 25
        assert counters.get("loadgen_errors", 0) == 0
