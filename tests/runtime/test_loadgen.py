"""Open-loop load driver: schedules, percentiles, reports."""

import asyncio

import numpy as np
import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.runtime import Cluster, ClusterConfig, latency_percentiles, run_load
from repro.runtime.loadgen import LoadReport


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=16, **overrides):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        **overrides,
    )


class TestPercentiles:
    def test_ordering_and_values(self):
        sample = list(range(1, 101))  # 1..100 ms
        pct = latency_percentiles(sample)
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert pct["p50"] == pytest.approx(50.5)

    def test_empty_sample_is_nan(self):
        pct = latency_percentiles([])
        assert all(np.isnan(v) for v in pct.values())


class TestLoadReport:
    def test_summary_wall_keys(self):
        """Wall-derived numbers live only under wall-prefixed keys."""
        report = LoadReport(
            ops=10,
            errors=1,
            latencies_ms=[1.0] * 10,
            offered_rate=100.0,
            wall_duration_s=0.5,
        )
        summary = report.summary()
        assert summary["ops"] == 10
        assert summary["errors"] == 1
        assert report.succeeded == 9
        assert summary["wall_throughput_ops"] == pytest.approx(18.0)
        for key, value in summary.items():
            if isinstance(value, float) and key not in ("offered_rate",):
                assert key.startswith("wall"), key


class TestRunLoad:
    def test_all_lookups_complete_without_errors(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                return await run_load(cluster, rate=4000, count=120, seed=11)

        report = run(scenario())
        assert report.ops == 120
        assert report.errors == 0
        assert len(report.latencies_ms) == 120
        pct = report.percentiles()
        assert 0 < pct["p50"] <= pct["p99"]
        assert report.achieved_rate > 0

    def test_route_op_mix(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                return await run_load(
                    cluster, rate=4000, count=40, seed=2, op="route"
                )

        report = run(scenario())
        assert report.errors == 0

    def test_unknown_op_rejected(self):
        async def scenario():
            async with Cluster(make_config(nodes=4)) as cluster:
                with pytest.raises(ValueError, match="unknown op"):
                    await run_load(cluster, rate=100, count=4, op="teleport")

        run(scenario())

    def test_open_loop_respects_arrival_schedule(self):
        """Total duration is at least the last scheduled arrival offset."""

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                rng = np.random.default_rng(9)
                from repro.workloads import poisson_arrivals

                expected_last = poisson_arrivals(200.0, 30, rng)[-1]
                report = await run_load(cluster, rate=200.0, count=30, seed=9)
                return report, float(expected_last)

        report, expected_last = run(scenario())
        # the driver fires at scheduled offsets, so the run cannot end
        # before the final arrival (minus scheduler slop)
        assert report.wall_duration_s >= expected_last * 0.8

    def test_telemetry_counters_recorded(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                await run_load(cluster, rate=4000, count=25, seed=1)
                counters = dict(cluster.network.telemetry.counters)
                return counters

        counters = run(scenario())
        assert counters.get("loadgen_ops") == 25
        assert counters.get("loadgen_errors", 0) == 0


class TestClosedLoop:
    def test_worker_pool_completes_every_request(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                return await run_load(
                    cluster, rate=0.0, count=200, seed=4, concurrency=8
                )

        report = run(scenario())
        assert report.mode == "closed"
        assert report.concurrency == 8
        assert report.offered_rate == 0.0
        assert report.ops == 200
        assert report.errors == 0
        assert len(report.latencies_ms) == 200

    def test_closed_loop_outruns_the_open_loop_schedule(self):
        """Capacity mode must beat a slow arrival schedule's ceiling."""

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                open_report = await run_load(
                    cluster, rate=500.0, count=100, seed=6
                )
                closed_report = await run_load(
                    cluster, rate=500.0, count=100, seed=6, concurrency=16
                )
                return open_report, closed_report

        open_report, closed_report = run(scenario())
        # the open loop is pinned near its offered rate; the closed
        # loop is limited only by service capacity
        assert open_report.achieved_rate < 1000.0
        assert closed_report.achieved_rate > open_report.achieved_rate

    def test_concurrency_larger_than_count_is_safe(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                return await run_load(
                    cluster, rate=0.0, count=5, seed=1, concurrency=64
                )

        report = run(scenario())
        assert report.ops == 5
        assert report.errors == 0
        assert len(report.latencies_ms) == 5


class TestMixedOutcomePercentiles:
    def test_success_percentiles_exclude_error_latencies(self):
        """A timeout cliff must not smear into the success percentiles.

        Regression: errored requests spend their full timeout on the
        clock; folding those latencies into p50/p95/p99 made a fast
        service with a few timeouts look uniformly slow.
        """
        report = LoadReport(
            ops=103,
            errors=3,
            latencies_ms=[1.0] * 100,
            error_latencies_ms=[30_000.0] * 3,
        )
        pct = report.percentiles()
        assert pct["p50"] == pytest.approx(1.0)
        assert pct["p99"] == pytest.approx(1.0)
        err = report.error_percentiles()
        assert err["p50"] == pytest.approx(30_000.0)
        summary = report.summary()
        assert summary["wall_p99_ms"] == pytest.approx(1.0)
        assert summary["wall_error_p50_ms"] == pytest.approx(30_000.0)
        assert summary["wall_error_p99_ms"] == pytest.approx(30_000.0)

    def test_error_summary_nan_when_no_errors(self):
        report = LoadReport(ops=2, errors=0, latencies_ms=[1.0, 2.0])
        assert np.isnan(report.error_percentiles()["p50"])
        assert np.isnan(report.summary()["wall_error_p50_ms"])

    def test_errored_requests_record_error_latency(self):
        """Driven errors land in the error sample, not the success one."""

        async def scenario():
            config = make_config(nodes=8, request_timeout=0.2)
            async with Cluster(config) as cluster:
                # unbinding one member loses every reply addressed to
                # it, so lookups sourced there time out (quickly)
                victim = sorted(cluster.node_ids)[0]
                await cluster.transport.unbind(victim)
                report = await run_load(
                    cluster, rate=0.0, count=60, seed=2, concurrency=4
                )
                return report

        report = run(scenario())
        assert report.errors > 0
        assert len(report.error_latencies_ms) == report.errors
        assert len(report.latencies_ms) == report.ops - report.errors
