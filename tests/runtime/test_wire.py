"""Wire codec: roundtrips, fuzzed corruption, incremental reassembly."""

import json
import struct

import pytest

from repro.runtime.wire import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD,
    MIN_WIRE_VERSION,
    PACKED_FLAG,
    WIRE_VERSION,
    Frame,
    FrameDecoder,
    MsgType,
    ProtocolError,
    decode_frame,
    encode_frame,
    pack_payload,
    roundtrip_payload,
    unpack_payload,
)

SAMPLE_PAYLOADS = {
    MsgType.JOIN: {"src": "joiner:3", "capacity": 1.0},
    MsgType.ROUTE: {"point": [0.25, 0.75], "path": [0, 4, 9], "op": "lookup"},
    MsgType.PUBLISH: {"src": 12},
    MsgType.LOOKUP: {"querier": 7, "level": 1, "cell": [0, 1]},
    MsgType.HEARTBEAT: {"seq": 41, "src": 2},
    MsgType.ACK: {"owner": 5, "path": [1, 5], "hops": 1},
    MsgType.ERROR: {"error": "route stuck after 3 hops"},
    MsgType.BUSY: {"from": 5, "shed": "ROUTE"},
}


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(MsgType))
    def test_every_frame_type_roundtrips(self, kind):
        frame = Frame(kind, request_id=0xDEADBEEF, payload=SAMPLE_PAYLOADS[kind])
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is kind
        assert decoded.request_id == 0xDEADBEEF
        assert decoded.payload == SAMPLE_PAYLOADS[kind]

    def test_empty_payload(self):
        decoded = decode_frame(encode_frame(Frame(MsgType.HEARTBEAT, 1)))
        assert decoded.payload == {}

    def test_reply_correlates_request_id(self):
        request = Frame(MsgType.PUBLISH, 99, {"src": 3})
        reply = request.reply({"regions": 2})
        assert reply.kind is MsgType.ACK
        assert reply.request_id == 99
        error = request.reply({"error": "boom"}, kind=MsgType.ERROR)
        assert error.kind is MsgType.ERROR


class TestMalformedFrames:
    def test_truncated_at_every_prefix_length(self):
        data = encode_frame(Frame(MsgType.ROUTE, 7, SAMPLE_PAYLOADS[MsgType.ROUTE]))
        for cut in range(len(data)):
            with pytest.raises(ProtocolError, match="truncated"):
                decode_frame(data[:cut])

    def test_unknown_message_type(self):
        bad = HEADER.pack(MAGIC, WIRE_VERSION, 250, 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="unknown message type 250"):
            decode_frame(bad)

    def test_bad_magic(self):
        bad = HEADER.pack(b"XX", WIRE_VERSION, int(MsgType.ACK), 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="bad magic"):
            decode_frame(bad)

    def test_newer_wire_version(self):
        bad = HEADER.pack(MAGIC, WIRE_VERSION + 1, int(MsgType.ACK), 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="unsupported wire version"):
            decode_frame(bad)

    def test_v2_frames_still_decode(self):
        """A v3 reader accepts v2 traffic byte-for-byte (back compat)."""
        body = json.dumps({"owner": 5}, separators=(",", ":")).encode()
        v2 = HEADER.pack(MAGIC, 2, int(MsgType.ACK), 7, len(body)) + body
        decoded = decode_frame(v2)
        assert decoded.kind is MsgType.ACK
        assert decoded.payload == {"owner": 5}

    def test_busy_frame_is_unknown_to_v2_readers_only_by_type(self):
        """BUSY is the one v3 addition: its *type byte* is what a v2
        reader would reject; nothing about the header layout moved."""
        frame = Frame(MsgType.BUSY, 3, SAMPLE_PAYLOADS[MsgType.BUSY])
        data = encode_frame(frame)
        magic, version, type_byte, request_id, length = HEADER.unpack(
            data[: HEADER.size]
        )
        assert magic == MAGIC
        assert version == WIRE_VERSION == 3
        assert type_byte == int(MsgType.BUSY)
        assert not type_byte & PACKED_FLAG  # BUSY always rides as JSON

    def test_oversized_declared_length(self):
        bad = HEADER.pack(
            MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, MAX_PAYLOAD + 1
        )
        with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
            decode_frame(bad + b"x" * 16)

    def test_oversized_payload_refused_at_encode(self):
        huge = {"blob": "x" * (MAX_PAYLOAD + 16)}
        with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
            encode_frame(Frame(MsgType.PUBLISH, 1, huge))

    def test_trailing_garbage(self):
        data = encode_frame(Frame(MsgType.ACK, 1, {"ok": True}))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(data + b"\x00")

    def test_non_object_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        bad = HEADER.pack(MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(bad)

    def test_malformed_json_payload(self):
        body = b"{not json"
        bad = HEADER.pack(MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, len(body)) + body
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(bad)

    def test_corrupt_bytes_never_hang(self):
        """Random corruptions either decode or raise -- promptly, always."""
        import numpy as np

        rng = np.random.default_rng(0)
        data = bytearray(
            encode_frame(Frame(MsgType.ROUTE, 3, SAMPLE_PAYLOADS[MsgType.ROUTE]))
        )
        for _ in range(200):
            corrupt = bytearray(data)
            position = int(rng.integers(0, len(corrupt)))
            corrupt[position] ^= int(rng.integers(1, 256))
            try:
                decode_frame(bytes(corrupt))
            except ProtocolError:
                pass


#: payloads exactly matching the packed schemas of the hot frame kinds
PACKED_PAYLOADS = [
    (MsgType.ROUTE, {"point": [0.25, 0.75], "path": [0, 4, 9], "op": "lookup", "src": 3}),
    (MsgType.ROUTE, {"point": [0.5, 0.5], "path": [7], "op": "route", "src": 7}),
    (
        MsgType.ROUTE,
        {
            "point": [0.1, 0.9],
            "path": [2, 5],
            "op": "lookup",
            "src": 2,
            "querier": 2,
            "level": 1,
            "cell": [0, 1],
        },
    ),
    (MsgType.LOOKUP, {"querier": 7, "level": 2, "cell": [1, 3], "src": 7}),
    (MsgType.ACK, {"owner": 5, "path": [1, 5], "hops": 1}),
    (
        MsgType.ACK,
        {
            "owner": 5,
            "path": [1, 5],
            "hops": 1,
            "served_by": 9,
            "widened": True,
            "records": [3, 9, 11],
        },
    ),
    (
        MsgType.ACK,
        {"served_by": None, "widened": False, "records": []},
    ),
]


class TestPackedEncoding:
    @pytest.mark.parametrize("kind,payload", PACKED_PAYLOADS)
    def test_packed_roundtrip_is_lossless(self, kind, payload):
        frame = Frame(kind, 42, payload)
        data = encode_frame(frame, packed=True)
        assert data[3] & PACKED_FLAG, "schema-conformant payload must pack"
        decoded = decode_frame(data)
        assert decoded.kind is kind
        assert decoded.request_id == 42
        assert decoded.payload == payload

    @pytest.mark.parametrize("kind,payload", PACKED_PAYLOADS)
    def test_packed_decodes_same_as_json(self, kind, payload):
        """Both encodings of one frame must decode identically."""
        frame = Frame(kind, 7, payload)
        via_packed = decode_frame(encode_frame(frame, packed=True))
        via_json = decode_frame(encode_frame(frame, packed=False))
        assert via_packed == via_json

    @pytest.mark.parametrize("kind,payload", PACKED_PAYLOADS)
    def test_roundtrip_payload_matches_codec(self, kind, payload):
        """The loopback shortcut equals the full encode/decode pair."""
        for packed in (False, True):
            full = decode_frame(
                encode_frame(Frame(kind, 1, payload), packed=packed)
            ).payload
            assert roundtrip_payload(kind, payload, packed) == full

    def test_packed_is_smaller_than_json(self):
        kind, payload = PACKED_PAYLOADS[0]
        frame = Frame(kind, 1, payload)
        assert len(encode_frame(frame, packed=True)) < len(encode_frame(frame))

    @pytest.mark.parametrize(
        "payload",
        [
            # extra key outside the schema
            {"point": [0.5], "path": [1], "op": "route", "src": 1, "x": 0},
            # unknown op string
            {"point": [0.5], "path": [1], "op": "probe", "src": 1},
            # int coordinate: struct would coerce it and break losslessness
            {"point": [1, 0.5], "path": [1], "op": "route", "src": 1},
            # node id outside u32
            {"point": [0.5], "path": [1 << 40], "op": "route", "src": 1},
            # non-int in an id list
            {"point": [0.5], "path": ["a"], "op": "route", "src": 1},
        ],
    )
    def test_off_schema_payload_falls_back_to_json(self, payload):
        frame = Frame(MsgType.ROUTE, 1, payload)
        data = encode_frame(frame, packed=True)
        assert not (data[3] & PACKED_FLAG)
        assert decode_frame(data).payload == payload

    def test_control_kinds_never_pack(self):
        for kind in (MsgType.JOIN, MsgType.PUBLISH, MsgType.HEARTBEAT, MsgType.ERROR):
            assert pack_payload(kind, SAMPLE_PAYLOADS[kind]) is None
            data = encode_frame(Frame(kind, 1, SAMPLE_PAYLOADS[kind]), packed=True)
            assert not (data[3] & PACKED_FLAG)

    def test_wrong_kind_tag_rejected(self):
        """A LOOKUP payload smuggled under a ROUTE header must not parse."""
        data = pack_payload(
            MsgType.LOOKUP, {"querier": 1, "level": 1, "cell": [0], "src": 1}
        )
        with pytest.raises(ProtocolError, match="does not belong"):
            unpack_payload(MsgType.ROUTE, data)

    def test_trailing_bytes_rejected(self):
        kind, payload = PACKED_PAYLOADS[0]
        data = pack_payload(kind, payload)
        with pytest.raises(ProtocolError, match="trailing"):
            unpack_payload(kind, data + b"\x00")

    def test_truncated_packed_payload_rejected(self):
        kind, payload = PACKED_PAYLOADS[0]
        data = pack_payload(kind, payload)
        for cut in range(len(data)):
            with pytest.raises(ProtocolError):
                unpack_payload(kind, data[:cut])

    def test_v1_frame_with_packed_flag_is_unknown(self):
        """v1 never defined the flag bit: a flagged v1 byte is a bad type."""
        type_byte = int(MsgType.ROUTE) | PACKED_FLAG
        bad = HEADER.pack(MAGIC, MIN_WIRE_VERSION, type_byte, 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_frame(bad)

    def test_v1_json_frames_still_decode(self):
        body = b'{"seq":1}'
        data = HEADER.pack(
            MAGIC, MIN_WIRE_VERSION, int(MsgType.HEARTBEAT), 9, len(body)
        ) + body
        decoded = decode_frame(data)
        assert decoded.payload == {"seq": 1}

    def test_corrupt_packed_bytes_never_hang(self):
        """Mirror of the JSON fuzz: corruptions decode or raise, promptly."""
        import numpy as np

        rng = np.random.default_rng(1)
        for kind, payload in PACKED_PAYLOADS:
            data = bytearray(encode_frame(Frame(kind, 3, payload), packed=True))
            for _ in range(200):
                corrupt = bytearray(data)
                position = int(rng.integers(0, len(corrupt)))
                corrupt[position] ^= int(rng.integers(1, 256))
                try:
                    decode_frame(bytes(corrupt))
                except ProtocolError:
                    pass


class TestFrameDecoder:
    def test_single_byte_feeds(self):
        frames = [
            Frame(MsgType.JOIN, 1, {"src": "joiner:1"}),
            Frame(MsgType.ACK, 1, {"node_id": 4, "host": 17}),
            Frame(MsgType.HEARTBEAT, 2, {"seq": 0}),
        ]
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert [f.kind for f in out] == [f.kind for f in frames]
        assert [f.payload for f in out] == [f.payload for f in frames]
        assert decoder.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        frames = [Frame(MsgType.ACK, i, {"i": i}) for i in range(5)]
        decoder = FrameDecoder()
        out = decoder.feed(b"".join(encode_frame(f) for f in frames))
        assert [f.payload["i"] for f in out] == [0, 1, 2, 3, 4]

    def test_partial_tail_stays_buffered(self):
        data = encode_frame(Frame(MsgType.ACK, 1, {"ok": True}))
        decoder = FrameDecoder()
        assert decoder.feed(data + data[:5]) != []
        assert decoder.pending_bytes == 5
        assert decoder.feed(data[5:])[0].payload == {"ok": True}

    def test_poisoned_after_protocol_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"XX" + b"\x00" * 32)
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(b"")

    def test_header_size_is_stable(self):
        """The frame header is part of the versioned wire contract."""
        assert HEADER.size == 16
        assert struct.calcsize("!2sBBQI") == 16

    def test_large_coalesced_chunk_parses_in_linear_time(self):
        """One big feed must cost O(bytes), not O(bytes^2).

        5000 x ~2KB frames arrive as a single coalesced chunk -- the
        shape a fast sender produces on a TCP stream.  A decoder that
        re-slices the whole remaining buffer per frame would copy
        ~25GB here and blow far past the (already generous) bound; the
        offset-walking parse finishes in well under a second.
        """
        import time

        frames = [
            Frame(MsgType.ACK, i, {"blob": "x" * 2000, "i": i})
            for i in range(5000)
        ]
        chunk = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        began = time.perf_counter()
        out = decoder.feed(chunk)
        elapsed = time.perf_counter() - began
        assert len(out) == 5000
        assert [f.payload["i"] for f in out[:3]] == [0, 1, 2]
        assert decoder.pending_bytes == 0
        assert elapsed < 5.0, f"coalesced feed took {elapsed:.2f}s"


class TestLayoutCache:
    """The per-count compiled-Struct cache behind the packed codec."""

    def test_same_layout_is_compiled_once(self):
        from repro.runtime.wire import _layout

        first = _layout("!BBIB5d")
        assert _layout("!BBIB5d") is first
        assert isinstance(first, struct.Struct)

    def test_cache_is_bounded(self):
        from repro.runtime.wire import _layout

        _layout.cache_clear()
        for n in range(600):  # more distinct layouts than the cache holds
            _layout(f"!{n + 1}d")
        info = _layout.cache_info()
        assert info.maxsize == 512
        assert info.currsize <= 512

    def test_cached_packers_round_trip_variadic_sizes(self):
        # distinct dims/path lengths hit distinct cached layouts
        for dims in (2, 3, 5):
            for hops in (1, 4, 9):
                payload = {
                    "point": [float(i) / 8 for i in range(dims)],
                    "path": list(range(hops)),
                    "op": "lookup",
                    "src": 7,
                }
                data = encode_frame(Frame(MsgType.ROUTE, 9, payload), packed=True)
                assert data[3] & PACKED_FLAG
                assert decode_frame(data).payload == payload
