"""Wire codec: roundtrips, fuzzed corruption, incremental reassembly."""

import json
import struct

import pytest

from repro.runtime.wire import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD,
    WIRE_VERSION,
    Frame,
    FrameDecoder,
    MsgType,
    ProtocolError,
    decode_frame,
    encode_frame,
)

SAMPLE_PAYLOADS = {
    MsgType.JOIN: {"src": "joiner:3", "capacity": 1.0},
    MsgType.ROUTE: {"point": [0.25, 0.75], "path": [0, 4, 9], "op": "lookup"},
    MsgType.PUBLISH: {"src": 12},
    MsgType.LOOKUP: {"querier": 7, "level": 1, "cell": [0, 1]},
    MsgType.HEARTBEAT: {"seq": 41, "src": 2},
    MsgType.ACK: {"owner": 5, "path": [1, 5], "hops": 1},
    MsgType.ERROR: {"error": "route stuck after 3 hops"},
}


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(MsgType))
    def test_every_frame_type_roundtrips(self, kind):
        frame = Frame(kind, request_id=0xDEADBEEF, payload=SAMPLE_PAYLOADS[kind])
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is kind
        assert decoded.request_id == 0xDEADBEEF
        assert decoded.payload == SAMPLE_PAYLOADS[kind]

    def test_empty_payload(self):
        decoded = decode_frame(encode_frame(Frame(MsgType.HEARTBEAT, 1)))
        assert decoded.payload == {}

    def test_reply_correlates_request_id(self):
        request = Frame(MsgType.PUBLISH, 99, {"src": 3})
        reply = request.reply({"regions": 2})
        assert reply.kind is MsgType.ACK
        assert reply.request_id == 99
        error = request.reply({"error": "boom"}, kind=MsgType.ERROR)
        assert error.kind is MsgType.ERROR


class TestMalformedFrames:
    def test_truncated_at_every_prefix_length(self):
        data = encode_frame(Frame(MsgType.ROUTE, 7, SAMPLE_PAYLOADS[MsgType.ROUTE]))
        for cut in range(len(data)):
            with pytest.raises(ProtocolError, match="truncated"):
                decode_frame(data[:cut])

    def test_unknown_message_type(self):
        bad = HEADER.pack(MAGIC, WIRE_VERSION, 250, 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="unknown message type 250"):
            decode_frame(bad)

    def test_bad_magic(self):
        bad = HEADER.pack(b"XX", WIRE_VERSION, int(MsgType.ACK), 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="bad magic"):
            decode_frame(bad)

    def test_newer_wire_version(self):
        bad = HEADER.pack(MAGIC, WIRE_VERSION + 1, int(MsgType.ACK), 1, 2) + b"{}"
        with pytest.raises(ProtocolError, match="unsupported wire version"):
            decode_frame(bad)

    def test_oversized_declared_length(self):
        bad = HEADER.pack(
            MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, MAX_PAYLOAD + 1
        )
        with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
            decode_frame(bad + b"x" * 16)

    def test_oversized_payload_refused_at_encode(self):
        huge = {"blob": "x" * (MAX_PAYLOAD + 16)}
        with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
            encode_frame(Frame(MsgType.PUBLISH, 1, huge))

    def test_trailing_garbage(self):
        data = encode_frame(Frame(MsgType.ACK, 1, {"ok": True}))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(data + b"\x00")

    def test_non_object_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        bad = HEADER.pack(MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(bad)

    def test_malformed_json_payload(self):
        body = b"{not json"
        bad = HEADER.pack(MAGIC, WIRE_VERSION, int(MsgType.ACK), 1, len(body)) + body
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(bad)

    def test_corrupt_bytes_never_hang(self):
        """Random corruptions either decode or raise -- promptly, always."""
        import numpy as np

        rng = np.random.default_rng(0)
        data = bytearray(
            encode_frame(Frame(MsgType.ROUTE, 3, SAMPLE_PAYLOADS[MsgType.ROUTE]))
        )
        for _ in range(200):
            corrupt = bytearray(data)
            position = int(rng.integers(0, len(corrupt)))
            corrupt[position] ^= int(rng.integers(1, 256))
            try:
                decode_frame(bytes(corrupt))
            except ProtocolError:
                pass


class TestFrameDecoder:
    def test_single_byte_feeds(self):
        frames = [
            Frame(MsgType.JOIN, 1, {"src": "joiner:1"}),
            Frame(MsgType.ACK, 1, {"node_id": 4, "host": 17}),
            Frame(MsgType.HEARTBEAT, 2, {"seq": 0}),
        ]
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert [f.kind for f in out] == [f.kind for f in frames]
        assert [f.payload for f in out] == [f.payload for f in frames]
        assert decoder.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        frames = [Frame(MsgType.ACK, i, {"i": i}) for i in range(5)]
        decoder = FrameDecoder()
        out = decoder.feed(b"".join(encode_frame(f) for f in frames))
        assert [f.payload["i"] for f in out] == [0, 1, 2, 3, 4]

    def test_partial_tail_stays_buffered(self):
        data = encode_frame(Frame(MsgType.ACK, 1, {"ok": True}))
        decoder = FrameDecoder()
        assert decoder.feed(data + data[:5]) != []
        assert decoder.pending_bytes == 5
        assert decoder.feed(data[5:])[0].payload == {"ok": True}

    def test_poisoned_after_protocol_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"XX" + b"\x00" * 32)
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(b"")

    def test_header_size_is_stable(self):
        """The frame header is part of the versioned wire contract."""
        assert HEADER.size == 16
        assert struct.calcsize("!2sBBQI") == 16
