"""Wire-level SWIM detection + live repair (tentpole coverage).

Every tick here is driven manually (the background task is never
started) so the rounds are deterministic: crash -> silence -> suspect
-> confirm -> takeover, refutation of a wrongly seeded suspicion,
partition shielding with a heal + reconcile, a crashed member
restarting through the wire JOIN path, and the bulk-boot fast path
producing the same membership and zones as the incremental build.
"""

import asyncio
import math

import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.core.recovery import DetectorParams, check_invariants
from repro.runtime import Cluster, ClusterConfig
from repro.runtime.recovery import RuntimeRecovery


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=24, **overrides):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        heartbeat_period=0.05,
        probe_timeout=0.5,
        **overrides,
    )


def make_detector(cluster, suspicion_periods=1):
    """A hand-ticked detector: no background task, short suspicion."""
    return RuntimeRecovery(
        cluster,
        DetectorParams(period=50.0, suspicion_periods=suspicion_periods),
        seed=11,
    )


async def tick_until(recovery, predicate, rounds=12):
    for _ in range(rounds):
        await recovery.tick()
        if predicate():
            return
    raise AssertionError(f"predicate still false after {rounds} detector rounds")


def pick_victim(cluster):
    """A member off the bootstrap's machine (crashes are host-level)."""
    boot_host = int(cluster.bootstrap.host)
    return next(
        n
        for n, actor in sorted(cluster.actors.items())
        if int(actor.host) != boot_host
    )


class TestCrashDetection:
    def test_crash_confirm_takeover_invariants(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                recovery = make_detector(cluster)
                victims = (await cluster.crash(pick_victim(cluster)))["victims"]
                await tick_until(
                    recovery,
                    lambda: set(victims) <= set(recovery.confirmed_dead),
                )
                await recovery.reconcile()
                assert recovery.false_kills == 0
                assert recovery.manager.takeovers >= len(victims)
                nodes = cluster.overlay.ecan.can.nodes
                assert not set(victims) & set(nodes)
                summary = check_invariants(cluster.overlay, recovery)
                # a live lookup still lands after the repair
                survivor = min(cluster.actors)
                result = await cluster.lookup(survivor, (0.3, 0.7))
                assert result["owner"] in cluster.actors
                return summary

        summary = run(scenario())
        assert summary["nodes"] > 0

    def test_answered_probe_refutes_suspicion(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                recovery = make_detector(cluster, suspicion_periods=3)
                innocent = pick_victim(cluster)
                recovery.suspected[innocent] = 2  # wrongly accused, still alive
                await tick_until(
                    recovery, lambda: innocent not in recovery.suspected, rounds=4
                )
                assert recovery.refutations >= 1
                assert recovery.false_kills == 0
                assert innocent not in recovery.confirmed_dead

        run(scenario())


class TestPartitionShielding:
    def test_partition_shields_then_heals(self):
        async def scenario():
            async with Cluster(make_config(nodes=32)) as cluster:
                recovery = make_detector(cluster)
                domains = cluster.network.topology.transit_domain
                boot_domain = int(domains[int(cluster.bootstrap.host)])
                severed = next(
                    d for d in sorted(set(int(x) for x in domains)) if d != boot_domain
                )
                before = len(cluster)
                cluster.partition([severed])
                # enough rounds for cross-cut silence to reach the
                # confirm threshold, where the shield must hold it
                await tick_until(
                    recovery, lambda: recovery.shielded_verdicts > 0
                )
                assert recovery.false_kills == 0
                assert not recovery.confirmed_dead
                assert len(cluster) == before  # nobody was killed

                assert cluster.heal_partition() >= 1
                report = await recovery.reconcile()
                assert not recovery.suspected
                assert report["unsuspected"] >= 0
                check_invariants(cluster.overlay, recovery)

        run(scenario())


class TestRestart:
    def test_crashed_member_rejoins_over_the_wire(self):
        async def scenario():
            async with Cluster(make_config()) as cluster:
                recovery = make_detector(cluster)
                victim = pick_victim(cluster)
                victims = (await cluster.crash(victim))["victims"]
                await tick_until(
                    recovery,
                    lambda: set(victims) <= set(recovery.confirmed_dead),
                )
                await recovery.reconcile()
                rejoined = await cluster.restart(victim)
                assert rejoined in cluster.actors
                assert rejoined in cluster.overlay.ecan.can.nodes
                result = await cluster.lookup(rejoined, (0.5, 0.5))
                assert result["owner"] in cluster.actors
                check_invariants(cluster.overlay, recovery)

        run(scenario())


class TestBulkBoot:
    def test_bulk_boot_matches_incremental_membership_and_zones(self):
        async def scenario():
            async with Cluster(make_config(bulk_boot=True)) as cluster:
                reference = cluster.build_reference_sim()
                live_nodes = cluster.overlay.ecan.can.nodes
                sim_nodes = reference.ecan.can.nodes
                assert set(live_nodes) == set(sim_nodes)
                for node_id, node in live_nodes.items():
                    other = sim_nodes[node_id]
                    assert node.host == other.host
                    assert tuple(node.zone.lo) == tuple(other.zone.lo)
                    assert tuple(node.zone.hi) == tuple(other.zone.hi)
                check_invariants(cluster.overlay)
                # and the booted cluster actually serves traffic
                result = await cluster.lookup(min(cluster.actors), (0.2, 0.8))
                assert result["owner"] in cluster.actors

        run(scenario())
