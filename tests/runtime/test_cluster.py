"""Cluster harness: over-the-wire joins, RPCs, and sim parity."""

import asyncio

import numpy as np
import pytest

from repro.core.config import NetworkParams, OverlayParams
from repro.netsim.faults import FaultPlan
from repro.runtime import Cluster, ClusterConfig
from repro.softstate.maps import Region


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=20, transport="loopback", **overrides):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        transport=transport,
        **overrides,
    )


class TestBoot:
    def test_boot_builds_full_membership(self):
        async def scenario():
            async with Cluster(make_config(nodes=12)) as cluster:
                return (
                    len(cluster),
                    sorted(cluster.node_ids),
                    len(cluster.overlay),
                )

        size, ids, overlay_size = run(scenario())
        assert size == 12
        assert overlay_size == 12
        assert ids == list(range(12))

    def test_joins_happen_over_the_wire(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                return dict(cluster.bootstrap.handled), cluster.transport.delivered

        handled, delivered = run(scenario())
        # every member after the seed joined via a JOIN frame
        assert handled.get("JOIN") == 7
        # JOIN frames in, ACKs out -- all through the transport
        assert delivered >= 14

    def test_membership_matches_synchronous_build(self):
        """Same (config, seed): identical zones, hosts and tables."""

        async def scenario():
            async with Cluster(make_config(nodes=16)) as cluster:
                sim = cluster.build_reference_sim()
                live_can = cluster.overlay.ecan.can
                sim_can = sim.ecan.can
                assert sorted(live_can.nodes) == sorted(sim_can.nodes)
                for node_id, live_node in live_can.nodes.items():
                    sim_node = sim_can.nodes[node_id]
                    assert live_node.host == sim_node.host
                    assert live_node.zone.lo == sim_node.zone.lo
                    assert live_node.zone.hi == sim_node.zone.hi
                assert (
                    cluster.overlay.ecan.table_of(0) == sim.ecan.table_of(0)
                )

        run(scenario())

    def test_config_rejects_empty_cluster(self):
        # OverlayParams validates first in make_config; ClusterConfig
        # guards directly-built configs -- either way it's a ValueError
        with pytest.raises(ValueError, match="node"):
            make_config(nodes=0)
        with pytest.raises(ValueError, match="at least one node"):
            ClusterConfig(
                nodes=0,
                network=NetworkParams(topo_scale=0.25, seed=3),
                overlay=OverlayParams(num_nodes=4, seed=5),
            )


class TestRpcs:
    def test_lookup_owner_matches_local_resolution(self):
        async def scenario():
            async with Cluster(make_config(nodes=20)) as cluster:
                rng = np.random.default_rng(42)
                checks = []
                for _ in range(16):
                    point = tuple(float(x) for x in rng.random(2))
                    src = int(rng.choice(cluster.node_ids))
                    live = await cluster.lookup(src, point)
                    expected = cluster.overlay.ecan.can.owner_of_point(point)
                    checks.append((live["owner"], expected, live["path"][0], src))
                return checks

        for owner, expected, first_hop, src in run(scenario()):
            assert owner == expected
            assert first_hop == src

    def test_route_reaches_destination_member(self):
        async def scenario():
            async with Cluster(make_config(nodes=20)) as cluster:
                live = await cluster.route(3, 11)
                return live

        live = run(scenario())
        assert live["owner"] == 11
        assert live["path"][0] == 3
        assert live["path"][-1] == 11
        assert live["hops"] == len(live["path"]) - 1

    def test_publish_and_heartbeat(self):
        async def scenario():
            async with Cluster(make_config(nodes=10)) as cluster:
                published = await cluster.publish(4)
                pong = await cluster.ping(2, 7, seq=99)
                return published, pong

        published, pong = run(scenario())
        assert published["node_id"] == 4
        assert published["regions"] >= 1
        assert pong == {"seq": 99, "from": 7}

    def test_map_lookup_matches_store(self):
        async def scenario():
            async with Cluster(make_config(nodes=20)) as cluster:
                region = Region(1, (0, 1))
                live = await cluster.lookup_map(5, region)
                local = cluster.overlay.store.lookup(5, region, charge=False)
                return live, local

        live, local = run(scenario())
        assert live["served_by"] == local.served_by
        assert live["records"] == [record.node_id for record in local.records]

    def test_unknown_member_raises(self):
        async def scenario():
            async with Cluster(make_config(nodes=6)) as cluster:
                with pytest.raises(KeyError):
                    await cluster.lookup(999, (0.5, 0.5))

        run(scenario())


class TestSimParity:
    def test_loopback_parity(self):
        async def scenario():
            async with Cluster(make_config(nodes=24)) as cluster:
                return await cluster.verify_against_sim(lookups=48, routes=24)

        verdict = run(scenario())
        assert verdict["ok"], verdict
        assert verdict["checked"] == 72

    def test_tcp_parity_at_16_nodes(self):
        async def scenario():
            async with Cluster(make_config(nodes=16, transport="tcp")) as cluster:
                return await cluster.verify_against_sim(lookups=32, routes=16)

        verdict = run(scenario())
        assert verdict["ok"], verdict

    def test_parity_workload_is_seeded(self):
        """Same seed, same verdict structure -- the check is replayable."""

        async def scenario(seed):
            async with Cluster(make_config(nodes=12)) as cluster:
                return await cluster.verify_against_sim(
                    lookups=16, routes=8, seed=seed
                )

        assert run(scenario(7)) == run(scenario(7))


class TestDispatchErrors:
    def test_srcless_poison_frame_is_counted_not_swallowed(self):
        """A bad frame with nobody to answer must still leave a trace.

        Without a ``src`` there is no requester to bounce an ERROR to,
        so the only evidence of the failure is the telemetry counter
        and the actor's diagnostics -- both must record it.
        """
        from repro.runtime.wire import Frame, MsgType

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                victim = sorted(cluster.node_ids)[0]
                actor = cluster._actor(victim)
                # ROUTE without point/path/src: dispatch raises KeyError
                await cluster.transport.send(
                    victim, victim, Frame(MsgType.ROUTE, 77, {"bogus": True})
                )
                await asyncio.sleep(0)
                return (
                    cluster.network.telemetry.event_counts.get(
                        "runtime_dispatch_error", 0
                    ),
                    list(actor.handled.get("dispatch_errors", [])),
                    actor.handled.get("ROUTE", 0),
                )

        errors, reprs, routed = run(scenario())
        assert errors == 1
        assert routed == 1
        assert len(reprs) == 1
        assert reprs[0].startswith("ROUTE: KeyError")

    def test_dispatch_error_reprs_are_capped(self):
        """Diagnostics keep the first reprs; the counter keeps counting."""
        from repro.runtime.node import NodeProcess
        from repro.runtime.wire import Frame, MsgType

        poison_count = NodeProcess.MAX_ERROR_REPRS + 4

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                victim = sorted(cluster.node_ids)[0]
                actor = cluster._actor(victim)
                for i in range(poison_count):
                    await cluster.transport.send(
                        victim, victim, Frame(MsgType.ROUTE, 100 + i, {})
                    )
                await asyncio.sleep(0)
                return (
                    cluster.network.telemetry.event_counts.get(
                        "runtime_dispatch_error", 0
                    ),
                    len(actor.handled.get("dispatch_errors", [])),
                )

        errors, kept = run(scenario())
        assert errors == poison_count
        assert kept == NodeProcess.MAX_ERROR_REPRS

    def test_poison_frame_with_src_gets_an_error_reply(self):
        """A requester-visible failure still answers over the wire."""
        from repro.runtime.node import RemoteError
        from repro.runtime.wire import MsgType

        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                ids = sorted(cluster.node_ids)
                asker, victim = ids[0], ids[1]
                with pytest.raises(RemoteError, match="KeyError"):
                    await cluster._actor(asker).request(
                        victim, MsgType.ROUTE, {"bogus": True}, timeout=2.0
                    )
                return cluster.network.telemetry.event_counts.get(
                    "runtime_dispatch_error", 0
                )

        assert run(scenario()) == 1


class TestTransportFaults:
    def test_lossy_transport_times_out_not_hangs(self):
        """Dropped frames surface as fast failures, never hangs."""

        async def scenario():
            config = make_config(
                nodes=8,
                fault_plan=FaultPlan(message_loss_rate=1.0),
                request_timeout=0.2,
            )
            # boot with faults disarmed so joins succeed, then arm
            config_faults = config.fault_plan
            config.fault_plan = None
            cluster = Cluster(config)
            await cluster.start()
            try:
                from repro.netsim.faults import FaultInjector

                injector = FaultInjector(
                    cluster.network, config_faults, seed=0
                )
                injector.armed = True
                cluster.transport.faults = injector
                with pytest.raises(Exception) as failure:
                    await cluster.lookup(0, (0.9, 0.9))
                return failure.type.__name__
            finally:
                cluster.transport.faults = None
                await cluster.stop()

        assert run(scenario()) in ("TransportError", "RequestTimeout")

    def test_partial_loss_still_serves_some_lookups(self):
        async def scenario():
            config = make_config(nodes=10, request_timeout=0.3)
            cluster = Cluster(config)
            await cluster.start()
            try:
                from repro.netsim.faults import FaultInjector

                injector = FaultInjector(
                    cluster.network, FaultPlan(message_loss_rate=0.3), seed=3
                )
                injector.armed = True
                cluster.transport.faults = injector
                rng = np.random.default_rng(1)
                succeeded = 0
                for _ in range(12):
                    try:
                        await cluster.lookup(
                            int(rng.choice(cluster.node_ids)),
                            tuple(float(x) for x in rng.random(2)),
                        )
                        succeeded += 1
                    except Exception:
                        pass
                return succeeded
            finally:
                cluster.transport.faults = None
                await cluster.stop()

        assert 0 < run(scenario()) <= 12
