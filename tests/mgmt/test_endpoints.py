"""Management HTTP API over live clusters: golden JSON, health codes."""

import asyncio
import json

from repro.core.config import NetworkParams, OverlayParams
from repro.mgmt import (
    Controller,
    ControllerConfig,
    http_get,
    parse_exposition,
    topology_snapshot,
)
from repro.runtime import Cluster, ClusterConfig, ShardedCluster


def run(coroutine):
    return asyncio.run(coroutine)


def make_config(nodes=24, shards=1, **overrides):
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=3),
        overlay=OverlayParams(num_nodes=nodes, seed=5),
        transport="loopback",
        shards=shards,
        **overrides,
    )


async def get_json(controller, path):
    status, headers, body = await http_get("127.0.0.1", controller.port, path)
    assert headers["content-type"].startswith("application/json")
    return status, json.loads(body)


class TestTopologyGolden:
    def test_topology_matches_snapshot_and_is_deterministic(self):
        """Golden-JSON: the served document equals the snapshot builder's
        output for the seeded 64-node cluster, byte-for-byte, and two
        boots of the same config serve identical bytes."""

        async def serve_once():
            async with Cluster(make_config(nodes=64)) as cluster:
                async with Controller(cluster) as controller:
                    status, _, body = await http_get(
                        "127.0.0.1", controller.port, "/topology"
                    )
                    golden = json.dumps(
                        topology_snapshot(cluster),
                        sort_keys=True,
                        separators=(",", ":"),
                    ).encode("utf-8")
                    return status, body, golden

        status, body, golden = run(serve_once())
        assert status == 200
        assert body == golden
        status2, body2, _ = run(serve_once())
        assert status2 == 200
        assert body2 == body  # reboot of the same seed: same bytes

    def test_topology_document_shape(self):
        async def scenario():
            async with Cluster(make_config(nodes=16)) as cluster:
                async with Controller(cluster) as controller:
                    return (await get_json(controller, "/topology"))[1]

        topo = run(scenario())
        assert topo["schema_version"] == 1
        assert topo["dims"] == 2
        assert len(topo["members"]) == 16
        assert [m["id"] for m in topo["members"]] == sorted(
            m["id"] for m in topo["members"]
        )
        member = topo["members"][0]
        assert set(member) == {
            "id", "host", "domain", "shard", "zones", "neighbors",
            "load", "capacity",
        }
        zone = member["zones"][0]
        assert len(zone["lo"]) == 2 and len(zone["hi"]) == 2
        assert topo["expressways"], "expressway tables must be exported"
        link = topo["expressways"][0]
        assert set(link) == {"src", "level", "cell", "dst"}
        assert topo["shards"] == {"count": 1, "members_per_shard": [16]}
        assert abs(topo["volume"] - 1.0) < 1e-9


class TestStatsAndMetrics:
    def test_stats_sections_and_metrics_parse(self):
        async def scenario():
            async with Cluster(make_config(nodes=16)) as cluster:
                await cluster.lookup(min(cluster.actors), (0.3, 0.7))
                async with Controller(cluster) as controller:
                    status, stats = await get_json(controller, "/stats")
                    mstatus, headers, body = await http_get(
                        "127.0.0.1", controller.port, "/metrics"
                    )
                    return status, stats, mstatus, headers, body

        status, stats, mstatus, headers, body = run(scenario())
        assert status == 200 and mstatus == 200
        for section in (
            "events", "counters", "gauges", "phases",
            "transport_counters", "overload", "retries",
        ):
            assert section in stats
        assert stats["shards"] == 1
        assert stats["transport_counters"]["delivered"] > 0
        for section in ("events", "counters", "gauges"):
            keys = list(stats[section])
            assert keys == sorted(keys)
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        families = parse_exposition(body.decode("utf-8"))
        assert "repro_events_total" in families
        assert "repro_health_status" in families
        assert families["repro_members"]["samples"] == [({}, 16.0)]


class TestHealthTransitions:
    def test_crash_flips_healthy_to_degraded_immediately(self):
        async def scenario():
            async with Cluster(make_config(nodes=20)) as cluster:
                async with Controller(cluster) as controller:
                    before_status, before = await get_json(
                        controller, "/health"
                    )
                    boot_host = int(cluster.bootstrap.host)
                    victim = next(
                        n for n, actor in sorted(cluster.actors.items())
                        if int(actor.host) != boot_host
                    )
                    victims = (await cluster.crash(victim))["victims"]
                    # /health is never cached: the next scrape sees it
                    after_status, after = await get_json(controller, "/health")
                    return before_status, before, after_status, after, victims

        before_status, before, after_status, after, victims = run(scenario())
        assert before_status == 200 and before["status"] == "healthy"
        assert before["live"] == before["members"] == 20
        assert after_status == 503 and after["status"] == "degraded"
        assert after["live"] == 20 - len(victims)
        down = [n["id"] for n in after["nodes"] if n["verdict"] == "down"]
        assert sorted(down) == sorted(victims)
        assert after["crashed_unrepaired"] == sorted(victims)

    def test_partition_degrades_then_heal_restores(self):
        async def scenario():
            async with Cluster(make_config(nodes=24)) as cluster:
                async with Controller(cluster) as controller:
                    domains = cluster.network.topology.transit_domain
                    boot_domain = int(domains[int(cluster.bootstrap.host)])
                    severed = next(
                        d for d in sorted(set(int(x) for x in domains))
                        if d != boot_domain
                    )
                    cluster.partition([severed])
                    cut_status, cut = await get_json(controller, "/health")
                    cluster.heal_partition()
                    healed_status, healed = await get_json(
                        controller, "/health"
                    )
                    return cut_status, cut, healed_status, healed

        cut_status, cut, healed_status, healed = run(scenario())
        assert cut_status == 503 and cut["status"] == "degraded"
        assert cut["partitions_active"] >= 1
        assert healed_status == 200 and healed["status"] == "healthy"
        assert healed["partitions_active"] == 0

    def test_active_recovery_surfaces_suspicion(self):
        async def scenario():
            async with Cluster(
                make_config(nodes=16, heartbeat_period=0.05)
            ) as cluster:
                await cluster.enable_recovery()
                async with Controller(cluster) as controller:
                    # seed a suspicion by hand: deterministic, no waiting
                    suspect = max(cluster.actors)
                    cluster.recovery.suspected[suspect] = 1
                    status, health = await get_json(controller, "/health")
                    return status, health, suspect

        status, health, suspect = run(scenario())
        assert status == 503 and health["status"] == "degraded"
        assert health["recovery"]["state"] == "active"
        assert str(suspect) in health["recovery"]["suspected"]
        verdicts = {n["id"]: n["verdict"] for n in health["nodes"]}
        assert verdicts[suspect] == "suspected"


class TestShardedHealth:
    def test_sharded_cluster_serves_all_endpoints(self):
        async def scenario():
            async with ShardedCluster(
                make_config(nodes=12, shards=2)
            ) as cluster:
                async with Controller(cluster) as controller:
                    topo_status, topo = await get_json(controller, "/topology")
                    stats_status, stats = await get_json(controller, "/stats")
                    health_status, health = await get_json(
                        controller, "/health"
                    )
                    mstatus, _, body = await http_get(
                        "127.0.0.1", controller.port, "/metrics"
                    )
                    return (
                        topo_status, topo, stats_status, stats,
                        health_status, health, mstatus, body,
                    )

        (topo_status, topo, stats_status, stats,
         health_status, health, mstatus, body) = run(scenario())
        assert topo_status == stats_status == health_status == mstatus == 200
        assert topo["shards"]["count"] == 2
        assert sum(topo["shards"]["members_per_shard"]) == 12
        assert {m["shard"] for m in topo["members"]} == {0, 1}
        assert stats["shards"] == 2
        assert len(stats["per_shard"]) == 2
        # recovery is a typed refusal, not a 500
        assert health["status"] == "healthy"
        assert health["recovery"]["state"] == "unavailable (sharded)"
        parse_exposition(body.decode("utf-8"))


class TestServerBehavior:
    def test_unknown_path_404_lists_endpoints(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                async with Controller(cluster) as controller:
                    return await get_json(controller, "/nope")

        status, payload = run(scenario())
        assert status == 404
        assert payload["endpoints"] == [
            "/", "/health", "/metrics", "/stats", "/topology"
        ]

    def test_index_serves_selfcontained_zone_map(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                async with Controller(cluster) as controller:
                    return await http_get("127.0.0.1", controller.port, "/")

        status, headers, body = run(scenario())
        page = body.decode("utf-8")
        assert status == 200
        assert headers["content-type"].startswith("text/html")
        assert "<svg" in page and "fetch(\"/topology\")" in page
        # self-contained: no external scripts, styles or images
        assert "src=" not in page and "href=" not in page

    def test_non_get_method_rejected(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                async with Controller(cluster) as controller:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", controller.port
                    )
                    writer.write(
                        b"POST /stats HTTP/1.1\r\nHost: x\r\n"
                        b"Connection: close\r\n\r\n"
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    return raw

        raw = run(scenario())
        assert raw.startswith(b"HTTP/1.1 405 ")

    def test_refresh_loop_warms_caches(self):
        async def scenario():
            async with Cluster(make_config(nodes=8)) as cluster:
                config = ControllerConfig(refresh_s=0.05)
                async with Controller(cluster, config) as controller:
                    await asyncio.sleep(0.3)
                    gauges = cluster.network.telemetry.gauges
                    return controller.refreshes, gauges.get("mgmt_refreshes")

        refreshes, gauge = run(scenario())
        assert refreshes >= 2
        assert gauge == refreshes
