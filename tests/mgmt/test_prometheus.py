"""Prometheus exposition: renderer output, escaping, parser strictness."""

import pytest

from repro.mgmt.prometheus import (
    HEALTH_STATUS_VALUES,
    MetricFamily,
    escape_label_value,
    format_value,
    parse_exposition,
    render_exposition,
    render_prometheus,
    stats_families,
)


def minimal_stats(**overrides):
    stats = {
        "events": {"probe": 5},
        "counters": {"backoff_ms": 12.5},
        "gauges": {"overlay_size": 64},
        "phases": {"routing": {"sim_ms": 1.0, "wall_s": 0.25, "entries": 3}},
        "transport_counters": {"sent": 10, "delivered": 9, "dropped": 1},
        "overload": {"shed": 2, "breakers_open_now": 1},
        "retries": {"retries": 4, "backoff_ms": 80.0},
        "shards": 2,
    }
    stats.update(overrides)
    return stats


class TestRenderer:
    def test_help_and_type_precede_samples(self):
        text = render_prometheus(minimal_stats())
        lines = text.splitlines()
        for family in (
            "repro_events_total",
            "repro_counters_total",
            "repro_gauge",
            "repro_transport_frames_total",
            "repro_overload_total",
            "repro_request_retries_total",
            "repro_shards",
        ):
            help_at = lines.index(f"# HELP {family} " + _help_of(lines, family))
            type_at = next(
                i for i, l in enumerate(lines)
                if l.startswith(f"# TYPE {family} ")
            )
            sample_at = next(
                i for i, l in enumerate(lines)
                if l.startswith(family) and not l.startswith("#")
            )
            assert help_at < type_at < sample_at

    def test_health_families_present_when_health_given(self):
        health = {
            "status": "degraded",
            "members": 8,
            "live": 7,
            "recovery": {"suspected": {"3": 1}},
            "partitions_active": 1,
        }
        text = render_prometheus(minimal_stats(), health)
        parsed = parse_exposition(text)
        assert parsed["repro_health_status"]["samples"] == [
            ({}, float(HEALTH_STATUS_VALUES["degraded"]))
        ]
        assert parsed["repro_members"]["samples"] == [({}, 8.0)]
        assert parsed["repro_members_live"]["samples"] == [({}, 7.0)]
        assert parsed["repro_members_suspected"]["samples"] == [({}, 1.0)]
        assert parsed["repro_partitions_active"]["samples"] == [({}, 1.0)]

    def test_no_health_families_without_health(self):
        parsed = parse_exposition(render_prometheus(minimal_stats()))
        assert "repro_health_status" not in parsed
        assert parsed["repro_shards"]["type"] == "gauge"
        assert parsed["repro_events_total"]["type"] == "counter"

    def test_breakers_open_now_splits_into_gauge(self):
        parsed = parse_exposition(render_prometheus(minimal_stats()))
        assert parsed["repro_breakers_open"]["samples"] == [({}, 1.0)]
        kinds = {
            labels["kind"]
            for labels, _ in parsed["repro_overload_total"]["samples"]
        }
        assert "shed" in kinds and "breakers_open_now" not in kinds

    def test_rendering_is_deterministic_and_sorted(self):
        text = render_prometheus(minimal_stats())
        assert text == render_prometheus(minimal_stats())
        family = MetricFamily("demo_total", "counter", "Demo.")
        family.add({"name": "zeta"}, 1).add({"name": "alpha"}, 2)
        rendered = family.render().splitlines()
        assert rendered[2] == 'demo_total{name="alpha"} 2'
        assert rendered[3] == 'demo_total{name="zeta"} 1'

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(2.5) == "2.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("nan")) == "NaN"

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="metric name"):
            MetricFamily("bad-name", "counter", "x")
        with pytest.raises(ValueError, match="metric type"):
            MetricFamily("ok_name", "histogram", "x")
        with pytest.raises(ValueError, match="label name"):
            MetricFamily("ok_name", "counter", "x").add({"bad-label": "v"}, 1)


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_hostile_label_round_trips_through_parser(self):
        hostile = 'quote:" backslash:\\ newline:\n end'
        family = MetricFamily("demo_total", "counter", "Demo.")
        family.add({"name": hostile}, 7)
        parsed = parse_exposition(render_exposition([family]))
        ((labels, value),) = parsed["demo_total"]["samples"]
        assert labels == {"name": hostile}
        assert value == 7.0


class TestParserStrictness:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            parse_exposition("demo_total 1\n# TYPE demo_total counter\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_exposition("# TYPE demo_total widget\ndemo_total 1\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition(
                "# TYPE demo_total counter\ndemo_total{name=unquoted} 1\n"
            )

    def test_unparseable_value_rejected(self):
        with pytest.raises(ValueError, match="unparseable value"):
            parse_exposition("# TYPE demo_total counter\ndemo_total one\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_exposition(
                "# TYPE demo_total counter\ndemo_total 1\ndemo_total 2\n"
            )

    def test_sample_outside_family_block_rejected(self):
        text = (
            "# TYPE a_total counter\n"
            "# TYPE b_total counter\n"
            "a_total 1\n"
        )
        with pytest.raises(ValueError, match="outside its family block"):
            parse_exposition(text)

    def test_help_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_exposition("# HELP demo_total Demo.\n")

    def test_full_render_parse_round_trip(self):
        families = stats_families(minimal_stats())
        parsed = parse_exposition(render_exposition(families))
        assert set(parsed) == {f.name for f in families}
        for family in families:
            assert parsed[family.name]["type"] == family.kind
            assert len(parsed[family.name]["samples"]) == len(family.samples)


def _help_of(lines, family):
    prefix = f"# HELP {family} "
    for line in lines:
        if line.startswith(prefix):
            return line[len(prefix):]
    raise AssertionError(f"no HELP line for {family}")
