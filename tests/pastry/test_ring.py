"""Pastry ring mechanics: digits, leaf sets, tables, routing."""

import numpy as np
import pytest

from repro.pastry.ring import PastryRing, ring_distance


def build_ring(n: int, digits: int = 10, seed: int = 0) -> PastryRing:
    ring = PastryRing(digits=digits, rng=np.random.default_rng(seed))
    for i in range(n):
        node_id = ring.join(host=1000 + i)
        ring.build_table(node_id)
    return ring


class TestIdArithmetic:
    def test_digit_extraction(self):
        ring = PastryRing(digits=4, digit_bits=2)
        # id 0b11100100 = digits (3, 2, 1, 0)
        node_id = 0b11100100
        assert [ring.digit(node_id, r) for r in range(4)] == [3, 2, 1, 0]

    def test_shared_prefix(self):
        ring = PastryRing(digits=4, digit_bits=2)
        assert ring.shared_prefix(0b11100100, 0b11100100) == 4
        assert ring.shared_prefix(0b11100100, 0b11100111) == 3
        assert ring.shared_prefix(0b11100100, 0b00100100) == 0

    def test_prefix_interval(self):
        ring = PastryRing(digits=4, digit_bits=2)
        lo, hi = ring.prefix_interval(0b11100100, row=1, digit=0b01)
        # first digit kept (11), second forced to 01: [0b11010000, 0b11100000)
        assert lo == 0b11010000
        assert hi == 0b11100000

    def test_ring_distance(self):
        assert ring_distance(1, 255, 256) == 2
        assert ring_distance(0, 128, 256) == 128

    def test_numerically_closest(self):
        ring = PastryRing(digits=4, digit_bits=2)
        for node_id in (10, 100, 200):
            ring.join(host=node_id, node_id=node_id)
        assert ring.numerically_closest(12) == 10
        assert ring.numerically_closest(160) == 200
        assert ring.numerically_closest(250) == 10  # wraps: 250->10 is 16


class TestMembership:
    def test_unique_ids(self):
        ring = build_ring(60)
        assert len(set(ring.members())) == 60

    def test_duplicate_rejected(self):
        ring = PastryRing(digits=6)
        ring.join(host=1, node_id=5)
        with pytest.raises(ValueError):
            ring.join(host=2, node_id=5)

    def test_leave(self):
        ring = build_ring(10)
        victim = ring.members()[2]
        ring.leave(victim)
        assert victim not in ring
        with pytest.raises(KeyError):
            ring.leave(victim)

    def test_validation(self):
        with pytest.raises(ValueError):
            PastryRing(digits=1)


class TestLeafSet:
    def test_size_and_symmetry(self):
        ring = build_ring(40, seed=2)
        for node_id in ring.members()[:10]:
            leaves = ring.leaf_set(node_id)
            assert len(leaves) == 2 * ring.leaf_span
            assert node_id not in leaves

    def test_small_ring(self):
        ring = build_ring(3)
        for node_id in ring.members():
            leaves = ring.leaf_set(node_id)
            assert set(leaves) == set(ring.members()) - {node_id}

    def test_single_node(self):
        ring = build_ring(1)
        assert ring.leaf_set(ring.members()[0]) == []

    def test_leaves_are_the_numerically_closest(self):
        ring = build_ring(50, seed=3)
        node_id = ring.members()[7]
        leaves = set(ring.leaf_set(node_id))
        others = [m for m in ring.members() if m != node_id]
        others.sort(key=lambda m: ring.members().index(m))
        # the leaf set contains the immediate successor and predecessor
        ids = ring.members()
        i = ids.index(node_id)
        assert ids[(i + 1) % len(ids)] in leaves
        assert ids[(i - 1) % len(ids)] in leaves


class TestTable:
    def test_slots_match_prefix_constraint(self):
        ring = build_ring(80, seed=4)
        for node_id in ring.members()[:15]:
            for (row, digit), entry in ring.nodes[node_id].table.items():
                assert ring.shared_prefix(node_id, entry) >= row
                assert ring.digit(entry, row) == digit

    def test_slot_repair_after_leave(self):
        ring = build_ring(80, seed=5)
        node_id = ring.members()[0]
        (row, digit), victim = next(iter(ring.nodes[node_id].table.items()))
        if victim != node_id:
            ring.leave(victim)
            entry = ring.slot(node_id, row, digit)
            assert entry is None or (entry in ring.nodes and entry != victim)

    def test_row_zero_nearly_full(self):
        ring = build_ring(200, seed=6)
        node_id = ring.members()[0]
        row0 = [d for (row, d) in ring.nodes[node_id].table if row == 0]
        # with 200 nodes over 4 top-level digits, all 3 foreign slots fill
        assert len(row0) == ring.base - 1


class TestRouting:
    def test_reaches_numerically_closest(self):
        ring = build_ring(100, seed=7)
        rng = np.random.default_rng(8)
        for _ in range(100):
            key = int(rng.integers(0, ring.space))
            result = ring.route(ring.random_member(), key)
            assert result.success
            assert result.owner == ring.numerically_closest(key)

    def test_route_to_own_id(self):
        ring = build_ring(20, seed=7)
        node_id = ring.members()[3]
        result = ring.route(node_id, node_id)
        assert result.owner == node_id
        assert result.hops == 0

    def test_logarithmic_hops(self):
        rng = np.random.default_rng(9)
        means = {}
        for n in (32, 256):
            ring = build_ring(n, digits=12, seed=10)
            hops = [
                ring.route(ring.random_member(), int(rng.integers(0, ring.space))).hops
                for _ in range(60)
            ]
            means[n] = np.mean(hops)
        assert means[256] < means[32] * 2.2

    def test_routing_after_churn(self):
        ring = build_ring(80, seed=11)
        rng = np.random.default_rng(12)
        for victim in ring.members()[::3]:
            ring.leave(victim)
        for i in range(20):
            node_id = ring.join(host=7000 + i)
            ring.build_table(node_id)
        for _ in range(60):
            result = ring.route(ring.random_member(), int(rng.integers(0, ring.space)))
            assert result.success

    def test_unknown_start(self):
        ring = build_ring(4)
        with pytest.raises(KeyError):
            ring.route(10 ** 9, 0)

    def test_hops_charged(self, tiny_network):
        ring = PastryRing(digits=10, network=tiny_network,
                          rng=np.random.default_rng(1), stats=tiny_network.stats)
        for i in range(40):
            node_id = ring.join(host=i)
            ring.build_table(node_id)
        before = tiny_network.stats.snapshot()
        result = ring.route(ring.random_member(), 12345, category="probe")
        assert tiny_network.stats.delta(before).get("probe", 0) == result.hops
