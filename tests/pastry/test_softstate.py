"""Soft-state on Pastry: regions, placement, lookup, slot policies."""

import numpy as np
import pytest

from repro.pastry import build_soft_state_pastry


@pytest.fixture
def ring_pair(tiny_network):
    ring, softstate = build_soft_state_pastry(
        tiny_network, 48, landmarks=6, policy_name="softstate", digits=10, seed=4
    )
    return ring, softstate


class TestRegions:
    def test_region_bounds_align_with_prefix(self, ring_pair):
        ring, softstate = ring_pair
        node_id = ring.members()[0]
        for row in softstate.useful_rows():
            region = softstate.region_of(node_id, row)
            lo, hi = softstate.region_bounds(region)
            assert lo <= node_id < hi
            assert (hi - lo) == ring.space >> (row * ring.digit_bits)

    def test_map_key_in_condensed_prefix(self, ring_pair):
        ring, softstate = ring_pair
        for node_id, record in list(softstate.registry.items())[:10]:
            for region in softstate.regions_of(node_id):
                key = softstate.map_key(record.landmark_number, region)
                lo, hi = softstate.region_bounds(region)
                assert lo <= key < lo + max(1, int((hi - lo) * softstate.condense_rate))


class TestPublication:
    def test_every_member_published(self, ring_pair):
        ring, softstate = ring_pair
        expected = len(list(softstate.useful_rows()))
        for node_id in ring.members():
            held = sum(node_id in bucket for bucket in softstate.maps.values())
            assert held == expected

    def test_withdraw_on_leave(self, ring_pair):
        ring, softstate = ring_pair
        victim = ring.members()[0]
        ring.leave(victim)
        assert victim not in softstate.registry
        assert all(victim not in bucket for bucket in softstate.maps.values())


class TestLookup:
    def test_sorted_by_vector_distance(self, ring_pair):
        ring, softstate = ring_pair
        querier = ring.members()[0]
        region = softstate.region_of(querier, 1)
        records = softstate.lookup(querier, region)
        own = np.asarray(softstate.registry[querier].landmark_vector)
        gaps = [
            float(np.linalg.norm(np.asarray(r.landmark_vector) - own))
            for r in records
        ]
        assert gaps == sorted(gaps)
        assert querier not in [r.node_id for r in records]

    def test_max_results(self, ring_pair):
        ring, softstate = ring_pair
        querier = ring.members()[1]
        region = softstate.region_of(querier, 1)
        assert len(softstate.lookup(querier, region, max_results=2)) <= 2


class TestPolicies:
    @pytest.mark.parametrize("policy", ["random", "first", "softstate", "optimal"])
    def test_routable_under_every_policy(self, tiny_network, policy):
        ring, _ = build_soft_state_pastry(
            tiny_network, 40, landmarks=5, policy_name=policy, digits=9, seed=2
        )
        rng = np.random.default_rng(5)
        for _ in range(40):
            result = ring.route(ring.random_member(), int(rng.integers(0, ring.space)))
            assert result.success

    def test_unknown_policy(self, tiny_network):
        with pytest.raises(ValueError):
            build_soft_state_pastry(tiny_network, 8, policy_name="tarot")

    def test_softstate_slots_respect_prefix(self, ring_pair):
        ring, _ = ring_pair
        for node_id in ring.members()[:10]:
            for (row, digit), entry in ring.nodes[node_id].table.items():
                assert ring.shared_prefix(node_id, entry) >= row
                assert ring.digit(entry, row) == digit

    def test_generality_ordering(self, small_topology):
        """Pastry with soft-state slot selection: same ordering as eCAN,
        with the big margin base-4 prefix routing allows."""
        from repro.netsim import ManualLatencyModel, Network

        means = {}
        for policy in ("random", "softstate", "optimal"):
            network = Network(small_topology, ManualLatencyModel())
            ring, _ = build_soft_state_pastry(
                network, 128, landmarks=8, policy_name=policy, digits=12, seed=7
            )
            stretch = ring.measure_stretch(300, rng=np.random.default_rng(11))
            means[policy] = stretch.mean()
        assert means["softstate"] < 0.6 * means["random"]
        assert means["optimal"] <= means["softstate"] * 1.2
