"""Maintenance policies: reactive, periodic, proactive."""

import pytest

from repro.core.reliability import NO_RETRY
from repro.netsim import FaultPlan
from repro.softstate import MaintenanceDriver, MaintenancePolicy


class TestProactive:
    def test_graceful_departure_withdraws(self, overlay):
        node_id = overlay.node_ids[0]
        overlay.remove_node(node_id, graceful=True)
        for bucket in overlay.store.maps.values():
            assert node_id not in bucket

    def test_crash_leaves_records_stale(self, overlay):
        node_id = overlay.node_ids[0]
        overlay.remove_node(node_id, graceful=False)
        assert overlay.maintenance.stale_entries() > 0


class TestReactive:
    @pytest.fixture
    def reactive_overlay(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.REACTIVE
        return overlay

    def test_crash_then_failed_use_purges(self, reactive_overlay):
        overlay = reactive_overlay
        node_id = overlay.node_ids[0]
        overlay.remove_node(node_id, graceful=False)
        assert overlay.maintenance.stale_entries() > 0
        removed = overlay.maintenance.on_failed_use(node_id)
        assert removed > 0
        for bucket in overlay.store.maps.values():
            assert node_id not in bucket

    def test_failed_use_ignored_under_other_policies(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PROACTIVE
        node_id = overlay.node_ids[1]
        overlay.remove_node(node_id, graceful=False)
        assert overlay.maintenance.on_failed_use(node_id) == 0

    def test_selection_triggers_reactive_purge(self, reactive_overlay):
        """A dead record returned by a lookup is purged by the policy."""
        overlay = reactive_overlay
        victim = overlay.node_ids[5]
        overlay.remove_node(victim, graceful=False)
        # re-selecting tables will eventually touch the dead record
        for node_id in list(overlay.node_ids):
            overlay.ecan.build_table(node_id)
        assert all(
            victim not in bucket for bucket in overlay.store.maps.values()
        )


class TestPeriodic:
    def test_poll_purges_dead_and_charges_pings(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        victim = overlay.node_ids[2]
        overlay.remove_node(victim, graceful=False)
        before = overlay.network.stats.snapshot()
        removed = overlay.maintenance.poll_once()
        assert removed > 0
        assert overlay.network.stats.delta(before)["maintenance_ping"] > 0
        assert overlay.maintenance.stale_entries() == 0

    def test_timer_driven_sweep(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        overlay.maintenance.poll_interval = 10.0
        overlay.maintenance.start()
        victim = overlay.node_ids[3]
        overlay.remove_node(victim, graceful=False)
        assert overlay.maintenance.stale_entries() > 0
        overlay.network.clock.run_until(25.0)
        assert overlay.maintenance.stale_entries() == 0
        overlay.maintenance.stop()

    def test_start_is_idempotent(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        overlay.maintenance.start()
        timer = overlay.maintenance._timer
        overlay.maintenance.start()
        assert overlay.maintenance._timer is timer
        overlay.maintenance.stop()

    def test_start_noop_for_other_policies(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PROACTIVE
        overlay.maintenance.start()
        assert overlay.maintenance._timer is None

    def test_liveness_decided_by_probes_not_oracle(self, overlay):
        """The sweep pings every record through the charged probe path."""
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        before = overlay.network.stats.snapshot()
        overlay.maintenance.poll_once()
        pings = overlay.network.stats.delta(before)["maintenance_ping"]
        records = sum(len(b) for b in overlay.store.maps.values())
        assert pings >= records  # at least one ping per record

    def test_no_false_purges_under_loss_with_confirmation(self, overlay):
        """N-confirmation probing never purges a live member."""
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        entries = overlay.store.total_entries()
        overlay.arm_faults(FaultPlan(probe_loss_rate=0.15), seed=9)
        try:
            overlay.maintenance.poll_once()
        finally:
            overlay.disarm_faults()
        assert overlay.maintenance.false_purges == 0
        assert overlay.store.total_entries() == entries

    def test_unconfirmed_baseline_false_purges_under_loss(self, overlay):
        """The fire-and-forget baseline mistakes lost pings for deaths."""
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        overlay.maintenance.retry_policy = NO_RETRY
        overlay.maintenance.confirmations = 1
        overlay.arm_faults(FaultPlan(probe_loss_rate=0.7), seed=9)
        try:
            overlay.maintenance.poll_once()
        finally:
            overlay.disarm_faults()
        assert overlay.maintenance.false_purges > 0

    def test_crash_stop_purged_through_probe_path(self, overlay):
        """With faults armed, a crashed host times out and is purged --
        after confirmation rounds, so no live node rides along."""
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        overlay.arm_faults(FaultPlan(), seed=0)
        try:
            victim = overlay.node_ids[2]
            overlay.remove_node(victim, graceful=False)
            assert overlay.maintenance.stale_entries() > 0
            overlay.maintenance.poll_once()
            assert overlay.maintenance.stale_entries() == 0
            assert overlay.maintenance.false_purges == 0
        finally:
            overlay.disarm_faults()

    def test_confirmation_backoff_advances_sim_clock(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        victim = overlay.node_ids[1]
        overlay.remove_node(victim, graceful=False)
        start = overlay.network.clock.now
        overlay.maintenance.poll_once()
        # confirming the death slept through retry backoffs in sim time
        assert overlay.network.clock.now > start

    def test_poll_also_expires_leases(self, overlay):
        overlay.maintenance.policy = MaintenancePolicy.PERIODIC
        overlay.store.record_ttl = 5.0
        node_id = overlay.node_ids[4]
        overlay.store.publish(node_id, charge=False)
        overlay.network.clock.run_until(50.0)
        overlay.maintenance.poll_once()
        assert all(
            node_id not in bucket for bucket in overlay.store.maps.values()
        )
