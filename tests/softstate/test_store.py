"""The distributed soft-state store."""

import numpy as np
import pytest

from repro.softstate import Region
from repro.softstate.store import EventKind


class TestPublication:
    def test_every_member_is_published_in_its_regions(self, overlay):
        store = overlay.store
        for node_id in overlay.node_ids:
            regions = store.current_regions(node_id)
            published = store._published.get(node_id, set())
            assert published == set(regions)
            for region in regions:
                assert node_id in store.maps[region]

    def test_records_positioned_inside_their_region(self, overlay):
        store = overlay.store
        for region, bucket in store.maps.items():
            for stored in bucket.values():
                assert region.contains_point(stored.position)

    def test_publish_charges_messages(self, overlay):
        stats = overlay.network.stats
        assert stats.get("softstate_publish") > 0

    def test_publish_requires_identity(self, overlay):
        with pytest.raises(KeyError):
            overlay.store.publish(987654)

    def test_republish_reconciles_regions(self, overlay):
        """After zones deepen, a republish must cover the new regions."""
        store = overlay.store
        node_id = overlay.node_ids[0]
        store.publish(node_id)
        assert store._published[node_id] == set(store.current_regions(node_id))

    def test_withdraw_removes_everywhere(self, overlay):
        store = overlay.store
        node_id = overlay.node_ids[3]
        removed = store.withdraw(node_id)
        assert removed > 0
        for bucket in store.maps.values():
            assert node_id not in bucket
        assert node_id not in store.registry

    def test_update_load_propagates_to_maps(self, overlay):
        store = overlay.store
        node_id = overlay.node_ids[5]
        store.update_load(node_id, 7.5)
        for region in store._published[node_id]:
            assert store.maps[region][node_id].record.load == 7.5
        assert store.registry[node_id].load == 7.5


class TestLookup:
    def test_lookup_returns_candidates_sorted_by_vector_distance(self, overlay):
        store = overlay.store
        querier = overlay.node_ids[0]
        region = Region(1, (0, 0))
        result = store.lookup(querier, region)
        assert result.records  # level-1 region of a 48-node overlay is populated
        own = np.asarray(store.registry[querier].landmark_vector)
        gaps = [
            float(np.linalg.norm(np.asarray(r.landmark_vector) - own))
            for r in result.records
        ]
        assert gaps == sorted(gaps)

    def test_lookup_excludes_querier(self, overlay):
        store = overlay.store
        querier = overlay.node_ids[0]
        for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
            result = store.lookup(querier, Region(1, cell))
            assert querier not in [r.node_id for r in result.records]

    def test_lookup_respects_max_results(self, overlay):
        store = overlay.store
        result = store.lookup(overlay.node_ids[1], Region(1, (1, 1)), max_results=3)
        assert len(result.records) <= 3

    def test_lookup_charges_route(self, overlay):
        stats = overlay.network.stats
        before = stats.snapshot()
        overlay.store.lookup(overlay.node_ids[2], Region(1, (0, 1)))
        assert stats.delta(before).get("softstate_lookup", 0) >= 0
        # at minimum the route itself was attempted (may be 0 hops if
        # the querier already hosts the shard); an uncharged lookup
        # must not add messages
        before = stats.snapshot()
        overlay.store.lookup(overlay.node_ids[2], Region(1, (0, 1)), charge=False)
        assert "softstate_lookup" not in stats.delta(before)

    def test_lookup_with_explicit_vector(self, overlay):
        store = overlay.store
        vector = store.registry[overlay.node_ids[4]].landmark_vector
        result = store.lookup(
            overlay.node_ids[0], Region(1, (0, 0)), query_vector=vector
        )
        assert isinstance(result.records, list)

    def test_lookup_unknown_querier(self, overlay):
        with pytest.raises(KeyError):
            overlay.store.lookup(424242, Region(1, (0, 0)))

    def test_widening_finds_records_despite_tight_condense(self, small_overlay):
        """With a strongly condensed map, a lookup landing on an empty
        shard must widen and still return candidates."""
        store = small_overlay.store
        found_any = 0
        for node_id in small_overlay.node_ids[:20]:
            for cell in ((0, 0), (1, 1)):
                result = store.lookup(node_id, Region(1, cell))
                found_any += bool(result.records)
        assert found_any > 30


class TestExpiry:
    def test_expire_stale_drops_lapsed_records(self, overlay):
        store = overlay.store
        store.record_ttl = 10.0
        node_id = overlay.node_ids[0]
        store.publish(node_id, charge=False)
        overlay.network.clock.run_until(100.0)
        removed = store.expire_stale()
        assert removed >= 1
        for bucket in store.maps.values():
            assert node_id not in bucket

    def test_refresh_keeps_record_alive(self, overlay):
        store = overlay.store
        store.record_ttl = 50.0
        node_id = overlay.node_ids[1]
        store.publish(node_id, charge=False)
        overlay.network.clock.run_until(30.0)
        store.publish(node_id, charge=False)  # refresh
        overlay.network.clock.run_until(60.0)
        store.expire_stale()
        assert any(node_id in bucket for bucket in store.maps.values())


class TestEvents:
    def test_publish_emits_joined(self, overlay):
        events = []
        overlay.store.hooks.append(events.append)
        new_id = overlay.add_node()
        kinds = {e.kind for e in events if e.record.node_id == new_id}
        assert EventKind.NODE_JOINED in kinds

    def test_withdraw_emits_left(self, overlay):
        events = []
        overlay.store.hooks.append(events.append)
        node_id = overlay.node_ids[7]
        overlay.store.withdraw(node_id)
        kinds = {e.kind for e in events if e.record.node_id == node_id}
        assert kinds == {EventKind.NODE_LEFT}

    def test_load_update_emits(self, overlay):
        events = []
        overlay.store.hooks.append(events.append)
        node_id = overlay.node_ids[2]
        overlay.store.update_load(node_id, 1.0)
        assert any(
            e.kind == EventKind.LOAD_UPDATED and e.record.node_id == node_id
            for e in events
        )


class TestDiagnostics:
    def test_entries_per_node_accounts_everything(self, overlay):
        counts = overlay.store.entries_per_node()
        assert sum(counts.values()) == overlay.store.total_entries()
        assert all(owner in overlay.ecan.can.nodes for owner in counts)

    def test_condensing_concentrates_entries(self, tiny_topology):
        from repro.core import OverlayParams, TopologyAwareOverlay
        from repro.netsim import ManualLatencyModel, Network

        hosting = {}
        for rate in (1.0, 1.0 / 64):
            network = Network(tiny_topology, ManualLatencyModel())
            ov = TopologyAwareOverlay(
                network,
                OverlayParams(
                    num_nodes=48, policy="softstate", landmarks=6,
                    condense_rate=rate, seed=5,
                ),
            )
            ov.build()
            hosting[rate] = len(ov.store.entries_per_node())
        assert hosting[1.0 / 64] <= hosting[1.0]
