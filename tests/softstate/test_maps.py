"""Regions and the map-placement hash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.zone import Zone
from repro.softstate import Region, map_position, regions_of_zone


class TestRegion:
    def test_zone_round_trip(self):
        region = Region(level=2, cell=(1, 3))
        zone = region.zone()
        assert zone.lo == (0.25, 0.75)
        assert zone.hi == (0.5, 1.0)
        assert region.contains_point((0.3, 0.8))
        assert not region.contains_point((0.3, 0.5))

    def test_parent(self):
        assert Region(2, (3, 1)).parent() == Region(1, (1, 0))

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Region(0, (0, 0)).parent()

    def test_regions_of_zone(self):
        zone = Zone.root(2)
        for _ in range(4):
            zone = zone.split()[0]
        regions = regions_of_zone(zone)
        assert [r.level for r in regions] == [1, 2]
        for region in regions:
            assert region.contains_point(zone.center())

    def test_shallow_zone_has_no_regions(self):
        assert regions_of_zone(Zone.root(2)) == []
        assert regions_of_zone(Zone.root(2).split()[0]) == []


class TestMapPosition:
    def test_position_inside_region(self):
        region = Region(1, (1, 0))
        for number in (0, 100, 1023):
            point = map_position(number, 10, region, condense_rate=1.0)
            assert region.contains_point(point)

    def test_condensed_position_in_subbox(self):
        region = Region(1, (0, 0))
        zone = region.zone()
        rate = 1.0 / 16.0
        side = rate ** 0.5  # per-dimension shrink in 2-d
        for number in (0, 55, 1023):
            point = map_position(number, 10, region, condense_rate=rate)
            for lo, hi, x in zip(zone.lo, zone.hi, point):
                assert lo <= x < lo + (hi - lo) * side + 1e-12

    def test_condense_rate_validation(self):
        region = Region(1, (0, 0))
        with pytest.raises(ValueError):
            map_position(0, 10, region, condense_rate=0.0)
        with pytest.raises(ValueError):
            map_position(0, 10, region, condense_rate=1.5)

    def test_locality_preserved(self):
        """Adjacent landmark numbers land at adjacent map positions."""
        region = Region(1, (0, 0))
        previous = None
        max_gap = 0.0
        for number in range(0, 64):
            point = map_position(number, 6, region, condense_rate=1.0)
            if previous is not None:
                gap = sum((a - b) ** 2 for a, b in zip(point, previous)) ** 0.5
                max_gap = max(max_gap, gap)
            previous = point
        # one Hilbert step = one grid cell; region side 0.5, 8x8 grid
        assert max_gap <= 0.5 / 8 + 1e-9

    @given(
        st.integers(min_value=0, max_value=(1 << 12) - 1),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_number_lands_inside(self, number, level):
        region = Region(level, (0,) * 2)
        point = map_position(number, 12, region, condense_rate=0.25)
        assert region.contains_point(point)

    def test_same_number_same_position(self):
        region = Region(2, (1, 1))
        a = map_position(77, 10, region, condense_rate=0.5)
        b = map_position(77, 10, region, condense_rate=0.5)
        assert a == b
