"""Publish/subscribe: conditions, delivery, trees."""

import numpy as np
import pytest

from repro.netsim import FaultPlan
from repro.softstate import Condition, Region
from repro.softstate.records import NodeRecord
from repro.softstate.store import EventKind, MapEvent


def make_event(kind, region=Region(1, (0, 0)), node_id=9, load=0.0, capacity=1.0,
               vector=(1.0, 1.0)):
    record = NodeRecord(
        node_id=node_id,
        host=1,
        landmark_vector=vector,
        landmark_number=3,
        load=load,
        capacity=capacity,
    )
    return MapEvent(kind, region, record)


class TestConditions:
    def test_kind_filter(self):
        cond = Condition.node_joined()
        assert cond.matches(make_event(EventKind.NODE_JOINED))
        assert not cond.matches(make_event(EventKind.NODE_LEFT))

    def test_node_left_matches_expiry_too(self):
        cond = Condition.node_left()
        assert cond.matches(make_event(EventKind.NODE_LEFT))
        assert cond.matches(make_event(EventKind.RECORD_EXPIRED))

    def test_specific_node_filter(self):
        cond = Condition.node_left(node_id=9)
        assert cond.matches(make_event(EventKind.NODE_LEFT, node_id=9))
        assert not cond.matches(make_event(EventKind.NODE_LEFT, node_id=8))

    def test_load_threshold(self):
        cond = Condition.load_above(0.8)
        assert cond.matches(make_event(EventKind.LOAD_UPDATED, load=0.9))
        assert not cond.matches(make_event(EventKind.LOAD_UPDATED, load=0.7))

    def test_closer_candidate_distance_filter(self):
        cond = Condition.node_joined(vector=(0.0, 0.0), within_distance=1.0)
        assert cond.matches(make_event(EventKind.NODE_JOINED, vector=(0.5, 0.5)))
        assert not cond.matches(make_event(EventKind.NODE_JOINED, vector=(3.0, 4.0)))


class TestSubscriptions:
    def region_of(self, overlay, node_id):
        zone = overlay.ecan.can.nodes[node_id].zone
        return Region(1, zone.cell(1))

    def test_subscribe_and_notify_on_join(self, overlay):
        received = []
        subscriber = overlay.node_ids[0]
        for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
            overlay.pubsub.subscribe(
                subscriber,
                Region(1, cell),
                Condition.node_joined(),
                callback=lambda sub, event: received.append(event),
            )
        new_id = overlay.add_node()
        assert any(e.record.node_id == new_id for e in received)

    def test_notification_charged_as_tree_edges(self, overlay):
        stats = overlay.network.stats
        for node_id in overlay.node_ids[:10]:
            overlay.pubsub.subscribe(
                node_id, Region(1, (0, 0)), Condition.node_joined()
            )
        before = stats.snapshot()
        overlay.add_node()
        # any notification traffic appears under pubsub_notify
        delta = stats.delta(before)
        if overlay.pubsub.deliveries:
            assert delta.get("pubsub_notify", 0) >= 1

    def test_tree_shares_edges_across_subscribers(self, small_overlay):
        """Delivering to many subscribers costs fewer messages than the
        sum of individual unicast paths (that is the tree's point)."""
        overlay = small_overlay
        subscribers = overlay.node_ids[:30]
        # a joiner only publishes into the cells enclosing its own zone,
        # so watch every level-1 cell
        for node_id in subscribers:
            for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
                overlay.pubsub.subscribe(
                    node_id, Region(1, cell), Condition.node_joined()
                )
        overlay.pubsub.deliveries.clear()
        overlay.add_node()
        deliveries = [
            d for d in overlay.pubsub.deliveries if len(d.subscribers) >= 5
        ]
        assert deliveries, "expected a fan-out delivery"
        for delivery in deliveries:
            unicast_cost = 0
            rendezvous = overlay.pubsub._rendezvous_of(delivery.event)
            for sub in delivery.subscribers:
                node = overlay.ecan.can.nodes.get(sub)
                if node is None:
                    continue
                result = overlay.ecan.route(
                    rendezvous, node.zone.center(), category=None
                )
                unicast_cost += result.hops
            assert delivery.tree_edges <= unicast_cost

    def test_no_self_notification(self, overlay):
        received = []
        subscriber = overlay.node_ids[1]
        region = Region(1, (1, 1))
        overlay.pubsub.subscribe(
            subscriber,
            region,
            Condition.node_joined(),
            callback=lambda sub, event: received.append(event),
        )
        overlay.store.publish(subscriber)  # republishing self into the map
        assert all(e.record.node_id != subscriber for e in received)

    def test_unsubscribe_stops_notifications(self, overlay):
        received = []
        subscriber = overlay.node_ids[2]
        sub_id = overlay.pubsub.subscribe(
            subscriber,
            Region(1, (0, 1)),
            Condition.node_joined(),
            callback=lambda sub, event: received.append(event),
        )
        assert overlay.pubsub.unsubscribe(sub_id)
        before = len(received)
        for _ in range(3):
            overlay.add_node()
        assert len(received) == before

    def test_unsubscribe_unknown(self, overlay):
        assert not overlay.pubsub.unsubscribe(999999)

    def test_unsubscribe_all(self, overlay):
        subscriber = overlay.node_ids[3]
        for cell in ((0, 0), (1, 0)):
            overlay.pubsub.subscribe(
                subscriber, Region(1, cell), Condition.node_joined()
            )
        assert overlay.pubsub.unsubscribe_all(subscriber) == 2
        assert overlay.pubsub.subscriptions_of(subscriber) == []

    def test_load_alarm_delivery(self, overlay):
        received = []
        watcher = overlay.node_ids[0]
        target = overlay.node_ids[5]
        regions = list(overlay.store._published[target])
        overlay.pubsub.subscribe(
            watcher,
            regions[0],
            Condition.load_above(0.8, node_id=target),
            callback=lambda sub, event: received.append(event),
        )
        overlay.store.update_load(target, 0.5)  # below threshold
        assert received == []
        overlay.store.update_load(target, 0.95)
        assert len(received) == 1
        assert received[0].record.node_id == target

    def test_disabled_service_stays_silent(self, overlay):
        received = []
        overlay.pubsub.subscribe(
            overlay.node_ids[0],
            Region(1, (0, 0)),
            Condition.node_joined(),
            callback=lambda sub, event: received.append(event),
        )
        overlay.pubsub.enabled = False
        overlay.add_node()
        assert received == []

    def test_delivery_reports_acks(self, overlay):
        """On a healthy network every matching subscriber acks."""
        for node_id in overlay.node_ids[:8]:
            for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
                overlay.pubsub.subscribe(
                    node_id, Region(1, cell), Condition.node_joined()
                )
        overlay.pubsub.deliveries.clear()
        before = overlay.network.stats.snapshot()
        overlay.add_node()
        assert overlay.pubsub.deliveries
        delta = overlay.network.stats.delta(before)
        acked = sum(len(d.delivered) for d in overlay.pubsub.deliveries)
        assert delta.get("pubsub_ack", 0) == acked
        for report in overlay.pubsub.deliveries:
            assert report.complete
            assert sorted(report.delivered) == sorted(report.subscribers)


class TestLossyDelivery:
    def subscribe_all_cells(self, overlay, subscribers, received):
        for node_id in subscribers:
            for cell in ((0, 0), (0, 1), (1, 0), (1, 1)):
                overlay.pubsub.subscribe(
                    node_id,
                    Region(1, cell),
                    Condition.node_joined(),
                    callback=lambda sub, event: received.append(sub.subscriber),
                )

    def test_broken_path_recorded_as_failed_not_fabricated(self, overlay):
        received = []
        self.subscribe_all_cells(overlay, overlay.node_ids[:8], received)
        overlay.pubsub.deliveries.clear()
        overlay.arm_faults(FaultPlan(message_loss_rate=1.0), seed=0)
        try:
            overlay.add_node()
        finally:
            overlay.disarm_faults()
        reports = overlay.pubsub.deliveries
        assert reports
        failed = [s for d in reports for s in d.failed]
        assert failed, "total message loss must break some delivery"
        for report in reports:
            assert set(report.failed).isdisjoint(report.delivered)
            if report.failed:
                assert not report.complete
        # a failed path fires no callback: only delivered subscribers heard
        delivered_all = {s for r in reports for s in r.delivered}
        assert set(received) <= delivered_all
        assert overlay.pubsub.missed_count() == len(failed)
        assert overlay.pubsub.failed_deliveries() == len(failed)
        assert overlay.network.stats.get("pubsub_notify_failed") >= 1

    def test_anti_entropy_recovers_missed_notifications(self, overlay):
        received = []
        self.subscribe_all_cells(overlay, overlay.node_ids[:8], received)
        overlay.pubsub.deliveries.clear()
        overlay.arm_faults(FaultPlan(message_loss_rate=1.0), seed=0)
        try:
            overlay.add_node()
        finally:
            overlay.disarm_faults()
        missed = overlay.pubsub.missed_count()
        assert missed > 0
        before = overlay.network.stats.snapshot()
        recovered = overlay.pubsub.resync_once()
        assert recovered == missed
        assert overlay.pubsub.missed_count() == 0
        assert overlay.pubsub.resynced == recovered
        # the pull was charged as resync routing traffic
        assert overlay.network.stats.delta(before).get("pubsub_resync", 0) >= 1
        assert len(received) >= recovered

    def test_anti_entropy_timer_runs_on_clock(self, overlay):
        received = []
        self.subscribe_all_cells(overlay, overlay.node_ids[:8], received)
        overlay.arm_faults(FaultPlan(message_loss_rate=1.0), seed=0)
        try:
            overlay.add_node()
        finally:
            overlay.disarm_faults()
        assert overlay.pubsub.missed_count() > 0
        overlay.pubsub.start_anti_entropy(interval=60.0)
        overlay.network.clock.run_for(100.0)
        assert overlay.pubsub.missed_count() == 0
        overlay.pubsub.stop_anti_entropy()

    def test_departed_subscriber_backlog_dropped(self, overlay):
        received = []
        self.subscribe_all_cells(overlay, overlay.node_ids[:4], received)
        overlay.arm_faults(FaultPlan(message_loss_rate=1.0), seed=0)
        try:
            overlay.add_node()
        finally:
            overlay.disarm_faults()
        missed_subs = [s for s in overlay.pubsub._missed]
        assert missed_subs
        gone = missed_subs[0]
        overlay.ecan.leave(gone)  # crash-leave: subscription objects remain
        heard_before = received.count(gone)
        overlay.pubsub.resync_once()
        assert gone not in overlay.pubsub._missed
        # the dropped backlog never fired the departed subscriber's callback
        assert received.count(gone) == heard_before

    def test_departed_subscriber_not_notified(self, overlay):
        received = []
        subscriber = overlay.node_ids[4]
        overlay.pubsub.subscribe(
            subscriber,
            Region(1, (0, 0)),
            Condition.node_joined(),
            callback=lambda sub, event: received.append(event),
        )
        overlay.ecan.leave(subscriber)  # crash-leave, no unsubscribe
        overlay.add_node()
        assert received == []
