"""Fixtures: small assembled overlays for soft-state tests."""

import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network


@pytest.fixture
def overlay(tiny_topology):
    """48-node soft-state overlay on the tiny topology."""
    network = Network(tiny_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network,
        OverlayParams(num_nodes=48, policy="softstate", landmarks=6, seed=5),
    )
    ov.build()
    return ov


@pytest.fixture
def small_overlay(small_topology):
    """128-node soft-state overlay with more room (churn tests)."""
    network = Network(small_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network,
        OverlayParams(num_nodes=128, policy="softstate", landmarks=8, seed=5),
    )
    ov.build()
    return ov
