"""NodeRecord semantics."""

import math

import pytest

from repro.softstate import NodeRecord


def make(**kw):
    defaults = dict(
        node_id=1,
        host=100,
        landmark_vector=(1.0, 2.0),
        landmark_number=5,
    )
    defaults.update(kw)
    return NodeRecord(**defaults)


class TestExpiry:
    def test_never_expires_by_default(self):
        assert not make().is_expired(1e12)

    def test_expires_at_lease_end(self):
        record = make(expires_at=10.0)
        assert not record.is_expired(9.999)
        assert record.is_expired(10.0)

    def test_refreshed_extends_lease(self):
        record = make(expires_at=10.0)
        fresh = record.refreshed(now=8.0, ttl=5.0)
        assert fresh.expires_at == 13.0
        assert fresh.published_at == 8.0
        # original is untouched (records are value-ish)
        assert record.expires_at == 10.0


class TestLoad:
    def test_utilization(self):
        record = make(capacity=4.0, load=1.0)
        assert record.utilization == pytest.approx(0.25)

    def test_zero_capacity_is_infinite_utilization(self):
        assert make(capacity=0.0, load=1.0).utilization == math.inf

    def test_with_load_preserves_identity(self):
        record = make(load=0.0)
        updated = record.with_load(3.0)
        assert updated.load == 3.0
        assert updated.node_id == record.node_id
        assert record.load == 0.0
