"""The incremental position -> owner index behind ``lookup``.

Two properties: the query path resolves owners O(1) times per lookup
(instead of once per stored record), and the index survives every
membership event -- join, graceful leave, instant takeover, crash +
recovery takeover -- verified against a brute-force re-resolution by
``check_invariants``.
"""

import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.core.recovery import check_invariants
from repro.netsim import ManualLatencyModel, Network
from repro.netsim.faults import FaultPlan
from repro.softstate.maps import Region


@pytest.fixture
def overlay(tiny_topology):
    network = Network(tiny_topology, ManualLatencyModel())
    ov = TopologyAwareOverlay(
        network,
        OverlayParams(
            num_nodes=48, landmarks=6, replication_factor=2, seed=9
        ),
    )
    ov.build()
    return ov


def count_owner_resolutions(overlay, action) -> int:
    """Run ``action`` counting ``Can.owner_of_point`` invocations."""
    can = overlay.ecan.can
    calls = 0
    original = can.owner_of_point

    def counting(point):
        nonlocal calls
        calls += 1
        return original(point)

    can.owner_of_point = counting
    try:
        action()
    finally:
        del can.owner_of_point
    return calls


class TestLookupCost:
    def test_lookup_resolves_owners_o1(self, overlay):
        region = Region(1, (0, 0))
        querier = overlay.node_ids[0]
        calls = count_owner_resolutions(
            overlay, lambda: overlay.store.lookup(querier, region)
        )
        # a handful at most -- never one per stored record
        assert calls <= 2

    def test_lookup_cost_independent_of_map_size(self, overlay):
        region = Region(1, (0, 0))
        querier = overlay.node_ids[0]
        lookup = lambda: overlay.store.lookup(querier, region)
        before = count_owner_resolutions(overlay, lookup)
        # double the membership (and so the region's records) ...
        for _ in range(48):
            overlay.add_node()
        after = count_owner_resolutions(overlay, lookup)
        # ... and the owner-resolution cost of a lookup is unchanged
        assert after <= before


def check_index(overlay) -> None:
    """Tessellation + owner-index cross-check (valid mid-churn, unlike
    the full post-recovery :func:`check_invariants`)."""
    overlay.ecan.can.check_invariants()
    overlay.store.check_owner_index()


class TestIndexSurvivesChurn:
    def test_join_and_graceful_leave(self, overlay):
        check_index(overlay)
        joined = [overlay.add_node() for _ in range(6)]
        check_index(overlay)
        for node_id in joined[:3]:
            overlay.remove_node(node_id, graceful=True)
            check_index(overlay)

    def test_instant_takeover(self, overlay):
        victims = overlay.node_ids[10:13]
        for node_id in victims:
            overlay.remove_node(node_id, graceful=False)
            check_index(overlay)

    def test_crash_and_recovery_takeover(self, overlay):
        overlay.arm_faults(FaultPlan(), seed=3)
        overlay.enable_recovery()
        victim = overlay.node_ids[5]
        overlay.crash_node(victim)
        overlay.recovery.handle_death(victim)
        assert victim not in overlay.ecan.can.nodes
        check_invariants(overlay, overlay.detector)

    def test_checker_catches_tampering(self, overlay):
        store = overlay.store
        region, bucket = next(
            (r, b) for r, b in store.maps.items() if b
        )
        node_id = next(iter(bucket))
        store._owners[region][node_id] = -1  # corrupt one attribution
        with pytest.raises(AssertionError):
            store.check_owner_index()
