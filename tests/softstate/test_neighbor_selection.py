"""Soft-state proximity-neighbor selection."""

import numpy as np
import pytest

from repro.core import OverlayParams, TopologyAwareOverlay
from repro.netsim import ManualLatencyModel, Network
from repro.softstate import Region
from repro.softstate.neighbor_selection import probe_and_pick


class TestSelection:
    def test_selected_entries_probe_rtts(self, overlay):
        assert overlay.network.stats.get("neighbor_probe") > 0

    def test_select_returns_live_member_of_cell(self, overlay):
        policy = overlay.ecan.policy
        node_id = overlay.node_ids[0]
        node = overlay.ecan.can.nodes[node_id]
        level = 1
        cell = node.zone.cell(level)
        from repro.overlay.zone import sibling_cells

        for sibling in sibling_cells(cell):
            candidates = overlay.ecan.members(level, sibling, exclude=node_id)
            chosen = policy.select(overlay.ecan, node_id, level, sibling, candidates)
            if chosen is not None:
                assert chosen in overlay.ecan.can.nodes
                assert chosen != node_id

    def test_select_none_without_identity(self, overlay):
        policy = overlay.ecan.policy
        chosen = policy.select(overlay.ecan, 10 ** 9, 1, (0, 0), overlay.node_ids[:3])
        assert chosen is None

    def test_selection_quality_close_to_oracle(self, overlay):
        """After a rebuild (fresh candidate sets), the probed pick is
        usually near the cell's true optimum.  Entries chosen at join
        time may legitimately be stale -- that staleness is what the
        pub/sub layer exists to fix -- so rebuild first."""
        network = overlay.network
        for node_id in list(overlay.node_ids):
            overlay.ecan.build_table(node_id)
        ratios = []
        for node_id in overlay.node_ids[:12]:
            node = overlay.ecan.can.nodes[node_id]
            table = overlay.ecan.table_of(node_id)
            for level, row in table.items():
                for cell, entry in row.items():
                    members = overlay.ecan.members(level, cell, exclude=node_id)
                    if entry not in members or len(members) < 2:
                        continue
                    best = min(
                        network.latency(node.host, overlay.ecan.can.nodes[m].host)
                        for m in members
                    )
                    got = network.latency(
                        node.host, overlay.ecan.can.nodes[entry].host
                    )
                    ratios.append(got / max(best, 1e-9) if best > 0 else 1.0)
        assert np.mean(ratios) < 3.0

    def test_load_weight_prefers_idle_nodes(self, tiny_topology):
        network = Network(tiny_topology, ManualLatencyModel())
        ov = TopologyAwareOverlay(
            network,
            OverlayParams(
                num_nodes=32, policy="softstate", landmarks=6,
                load_weight=5.0, seed=9,
            ),
        )
        ov.build()
        # saturate one frequently chosen node, re-select, confirm avoidance
        table_refs = {}
        for node_id in ov.node_ids:
            for row in ov.ecan.table_of(node_id).values():
                for entry in row.values():
                    table_refs[entry] = table_refs.get(entry, 0) + 1
        hot = max(table_refs, key=table_refs.get)
        ov.store.update_load(hot, 100.0)
        for node_id in list(ov.node_ids):
            ov.ecan.build_table(node_id)
        new_refs = 0
        for node_id in ov.node_ids:
            for row in ov.ecan.table_of(node_id).values():
                new_refs += sum(1 for e in row.values() if e == hot)
        assert new_refs < table_refs[hot]


class TestProbeAndPick:
    def test_picks_minimum_rtt(self, overlay):
        network = overlay.network
        records = [
            overlay.store.registry[n] for n in overlay.node_ids[1:8]
        ]
        host = overlay.ecan.can.nodes[overlay.node_ids[0]].host
        record, rtt = probe_and_pick(network, host, records, budget=len(records))
        expected = min(
            records, key=lambda r: (network.rtt(host, r.host, category=None or "x"), r.node_id)
        )
        assert record.node_id == expected.node_id

    def test_empty_records(self, overlay):
        record, rtt = probe_and_pick(overlay.network, 0, [], budget=5)
        assert record is None
        assert rtt == np.inf

    def test_budget_limits_probes(self, overlay):
        network = overlay.network
        records = [overlay.store.registry[n] for n in overlay.node_ids[1:10]]
        before = network.stats.snapshot()
        probe_and_pick(network, 0, records, budget=3)
        assert network.stats.delta(before)["neighbor_probe"] == 3
