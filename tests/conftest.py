"""Shared fixtures: tiny deterministic networks and overlays.

Topology generation is cheap at test scale but Dijkstra row caches are
per-Network, so topologies are memoised at session scope while
Network instances are function-scoped (tests freely mutate stats and
clocks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim import (
    GeneratedLatencyModel,
    ManualLatencyModel,
    Network,
    TransitStubConfig,
    generate_transit_stub,
)


@pytest.fixture(scope="session")
def tiny_topology():
    """~120-node transit-stub graph shared by the whole session."""
    return generate_transit_stub(TransitStubConfig.tsk_large(0.25), seed=7)


@pytest.fixture(scope="session")
def small_topology():
    """~800-node graph for tests that need room (overlays, searches)."""
    return generate_transit_stub(TransitStubConfig.tsk_large(0.5), seed=7)


@pytest.fixture(scope="session")
def small_topology_dense():
    """tsk-small flavour (few transit domains, big stubs)."""
    return generate_transit_stub(TransitStubConfig.tsk_small(0.5), seed=7)


@pytest.fixture
def tiny_network(tiny_topology):
    return Network(tiny_topology, ManualLatencyModel())


@pytest.fixture
def tiny_network_generated(tiny_topology):
    return Network(tiny_topology, GeneratedLatencyModel())


@pytest.fixture
def small_network(small_topology):
    return Network(small_topology, ManualLatencyModel())


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
