"""Every figure runner produces well-formed rows (micro scale).

These tests run each experiment at a micro scale preset -- small
enough for CI, large enough that the paper's qualitative shapes
(orderings, monotone trends) can be asserted.
"""

import math

import numpy as np
import pytest

from repro.experiments import Scale
from repro.experiments import (
    fig02_hops,
    fig03_06_nn,
    fig10_13_stretch_rtts,
    fig14_15_stretch_nodes,
    fig16_condense,
    intro_tacan_imbalance,
    pubsub_ablation,
    qos_load,
)

MICRO = Scale(
    name="micro",
    topo_scale=0.3,
    overlay_nodes=64,
    node_sweep=(32, 64),
    fig2_sweep=(64, 256),
    fig2_dims=(2, 3),
    route_samples=128,
    nn_queries=10,
    ers_budgets=(10, 60),
    hybrid_budgets=(1, 8),
    rtt_sweep=(1, 8),
    landmark_sweep=(5,),
    condense_sweep=(1.0 / 16, 1.0),
    churn_events=12,
)


class TestFig02:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig02_hops.run(scale=MICRO, samples=100)

    def test_row_coverage(self, rows):
        variants = {r["variant"] for r in rows}
        assert "eCAN (EXP), d=2" in variants
        assert "CAN, d=2" in variants
        assert len(rows) == len(MICRO.fig2_sweep) * (len(MICRO.fig2_dims) + 1)

    def test_ecan_beats_low_dim_can(self, rows):
        by = {(r["variant"], r["N"]): r["mean_hops"] for r in rows}
        for n in MICRO.fig2_sweep:
            assert by[("eCAN (EXP), d=2", n)] < by[("CAN, d=2", n)]

    def test_can_hops_grow_polynomially(self, rows):
        by = {(r["variant"], r["N"]): r["mean_hops"] for r in rows}
        growth = by[("CAN, d=2", 256)] / by[("CAN, d=2", 64)]
        assert growth > 1.5  # ~sqrt(4) = 2 expected

    def test_ecan_hops_grow_slowly(self, rows):
        by = {(r["variant"], r["N"]): r["mean_hops"] for r in rows}
        growth = by[("eCAN (EXP), d=2", 256)] / by[("eCAN (EXP), d=2", 64)]
        assert growth < 1.8


class TestFig0306:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig03_06_nn.run("tsk-large", scale=MICRO, methods=("lmk+rtt", "ers"))

    def test_rows_shape(self, rows):
        methods = {r["method"] for r in rows}
        assert methods == {"lmk+rtt", "ers"}
        assert all(math.isfinite(r["mean_stretch"]) for r in rows)
        assert all(r["mean_stretch"] >= 1.0 - 1e-9 for r in rows)

    def test_hybrid_improves_with_probes(self, rows):
        hybrid = sorted(
            (r for r in rows if r["method"] == "lmk+rtt"), key=lambda r: r["probes"]
        )
        assert hybrid[-1]["mean_stretch"] <= hybrid[0]["mean_stretch"]

    def test_hybrid_beats_ers_at_comparable_budget(self, rows):
        """The paper's Figure 3 claim: guided probing crushes flooding."""
        hybrid_at_8 = next(
            r for r in rows if r["method"] == "lmk+rtt" and r["probes"] == 8
        )
        ers_at_10 = next(r for r in rows if r["method"] == "ers" and r["probes"] == 10)
        assert hybrid_at_8["mean_stretch"] < ers_at_10["mean_stretch"]

    def test_order_ranking_available(self):
        rows = fig03_06_nn.run("tsk-large", scale=MICRO, methods=("order",))
        assert {r["method"] for r in rows} == {"lmk-order"}

    def test_gnp_ranking_available(self):
        """The coordinate-based related-work baseline plugs into the
        same harness and produces sane curves."""
        rows = fig03_06_nn.run("tsk-large", scale=MICRO, methods=("gnp",))
        assert {r["method"] for r in rows} == {"gnp"}
        ordered = sorted(rows, key=lambda r: r["probes"])
        assert ordered[-1]["mean_stretch"] <= ordered[0]["mean_stretch"]


class TestFig1013:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_13_stretch_rtts.run("tsk-large", "manual", scale=MICRO)

    def test_reference_rows_present(self, rows):
        labels = {r["landmarks"] for r in rows}
        assert "optimal" in labels and "random" in labels

    def test_softstate_between_optimal_and_random(self, rows):
        by_label = {}
        for r in rows:
            by_label.setdefault(r["landmarks"], []).append(r["mean_stretch"])
        softstate_best = min(v for k, vals in by_label.items() if isinstance(k, int) for v in vals)
        assert by_label["optimal"][0] <= softstate_best * 1.3
        assert softstate_best < by_label["random"][0]

    def test_gap_breakdown_consistent(self):
        gaps = fig10_13_stretch_rtts.gap_breakdown(scale=MICRO)
        assert gaps["structural_gap"] >= 0
        assert gaps["softstate_stretch"] == pytest.approx(
            1.0 + gaps["structural_gap"] + gaps["information_gap"]
        )
        assert 0 < gaps["softstate_vs_random_saving"] < 1


class TestFig1415:
    def test_softstate_beats_random_everywhere(self):
        rows = fig14_15_stretch_nodes.run("manual", scale=MICRO)
        by = {(r["topology"], r["policy"], r["N"]): r["mean_stretch"] for r in rows}
        for topology in ("tsk-large", "tsk-small"):
            for n in MICRO.node_sweep:
                assert by[(topology, "softstate", n)] < by[(topology, "random", n)]


class TestFig16:
    def test_entries_concentrate_as_rate_shrinks(self):
        rows = fig16_condense.run(scale=MICRO)
        assert len(rows) == len(MICRO.condense_sweep)
        condensed, spread = rows[0], rows[-1]
        assert condensed["condense_rate"] < spread["condense_rate"]
        assert condensed["hosting_nodes"] <= spread["hosting_nodes"]
        for row in rows:
            assert row["mean_stretch"] >= 1.0


class TestTacan:
    def test_tacan_more_imbalanced_than_uniform(self):
        result = intro_tacan_imbalance.run(scale=MICRO, num_landmarks=4)
        assert (
            result["tacan"]["nodes_for_80pct_space"]
            < result["uniform"]["nodes_for_80pct_space"]
        )

    def test_ordering_slice_is_lexicographic_rank(self):
        f = intro_tacan_imbalance._ordering_slice
        assert f((0, 1, 2), 3) == 0
        assert f((2, 1, 0), 3) == 5
        assert len({f(p, 3) for p in [(0,1,2),(0,2,1),(1,0,2),(1,2,0),(2,0,1),(2,1,0)]}) == 6


class TestPubsubAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return pubsub_ablation.run(scale=MICRO)

    def test_modes_covered(self, rows):
        assert [r["mode"] for r in rows] == ["none", "polling", "pubsub"]

    def test_pubsub_cheaper_than_polling(self, rows):
        by = {r["mode"]: r for r in rows}
        assert by["pubsub"]["maintenance_messages"] < by["polling"]["maintenance_messages"]
        assert by["pubsub"]["notifications"] > 0


class TestQos:
    def test_load_awareness_flattens_tail(self):
        """Averaged over seeds (single micro runs are noisy), load-aware
        selection lowers the utilization tail without hurting stretch much."""
        tails = {0.0: [], 2.0: []}
        stretches = {0.0: [], 2.0: []}
        for seed in (0, 1, 2, 3):
            for row in qos_load.run(scale=MICRO, seed=seed, weights=(0.0, 2.0)):
                assert math.isfinite(row["mean_stretch"])
                tails[row["load_weight"]].append(row["p99_utilization"])
                stretches[row["load_weight"]].append(row["mean_stretch"])
        assert np.mean(tails[2.0]) < np.mean(tails[0.0])
        assert np.mean(stretches[2.0]) < 1.5 * np.mean(stretches[0.0])
