"""Extension experiment runners (join cost, churn policies, resilience)."""

import pytest

from repro.experiments import churn_timeline, failure_resilience, join_cost
from repro.softstate.maintenance import MaintenancePolicy
from tests.experiments.test_runners import MICRO


class TestJoinCost:
    @pytest.fixture(scope="class")
    def rows(self):
        return join_cost.run(scale=MICRO, probe_joins=8)

    def test_categories_present(self, rows):
        for row in rows:
            assert row["landmark_probe"] == 15.0  # OverlayParams default
            assert row["total_per_join"] > 0

    def test_sublinear_growth(self, rows):
        growth = rows[-1]["total_per_join"] / rows[0]["total_per_join"]
        size_growth = rows[-1]["N"] / rows[0]["N"]
        assert growth < size_growth

    def test_total_covers_categories(self, rows):
        for row in rows:
            parts = sum(
                v for k, v in row.items() if k not in ("N", "total_per_join")
            )
            assert row["total_per_join"] >= parts - 1e-9


class TestChurnTimeline:
    @pytest.fixture(scope="class")
    def rows(self):
        return churn_timeline.run(scale=MICRO)

    def test_all_policies_covered(self, rows):
        assert {r["policy"] for r in rows} == {"reactive", "periodic", "proactive"}

    def test_periodic_pings_and_prunes(self, rows):
        by = {r["policy"]: r for r in rows}
        assert by["periodic"]["maintenance_pings"] > 0
        assert by["reactive"]["maintenance_pings"] == 0

    def test_routing_survives_every_policy(self, rows):
        for row in rows:
            assert row["final_stretch"] is not None
            assert row["final_stretch"] >= 1.0 - 1e-9

    def test_single_policy_timeline_monotone_time(self):
        result = churn_timeline.run_policy(
            MaintenancePolicy.REACTIVE, scale=MICRO
        )
        times = [r["time"] for r in result["timeline"]]
        assert times == sorted(times)


class TestFailureResilience:
    @pytest.fixture(scope="class")
    def rows(self):
        return failure_resilience.run(
            scale=MICRO, crash_fractions=(0.0, 0.3), probes=48
        )

    def test_success_rate_stays_high(self, rows):
        for row in rows:
            assert row["success_rate"] >= 0.9

    def test_crashes_create_stale_records_and_repairs(self, rows):
        baseline, crashed = rows
        assert baseline["stale_records"] == 0
        assert crashed["stale_records"] > 0
        assert crashed["table_repairs"] >= baseline["table_repairs"]

    def test_stretch_finite_after_crashes(self, rows):
        assert rows[-1]["mean_stretch"] is not None
