"""EXPERIMENTS.md generation."""

import pathlib

import pytest

from repro.experiments import report


class TestRender:
    def test_covers_every_paper_figure(self):
        ids = " ".join(r.exp_id for r in report.REPORTS)
        for needed in (
            "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
            "Figures 10-13", "Figures 14-15", "Figure 16",
        ):
            assert needed in ids

    def test_every_report_names_a_bench_file(self):
        bench_dir = pathlib.Path(report.REPO_ROOT) / "benchmarks"
        for figure in report.REPORTS:
            for part in figure.bench.split(" / "):
                name = part.strip().split("/")[-1]
                assert (bench_dir / name).exists(), f"missing {name}"

    def test_render_includes_tables_when_present(self):
        text = report.render()
        assert text.startswith("# EXPERIMENTS")
        for figure in report.REPORTS:
            assert figure.exp_id in text
            assert figure.paper_says[:30] in text
        # at least one regenerated table is embedded (benches ran before)
        if any((report.OUT_DIR / f"{n}.txt").exists()
               for r in report.REPORTS for n in r.out_files):
            assert "```" in text

    def test_render_mentions_missing_outputs(self, tmp_path, monkeypatch):
        monkeypatch.setattr(report, "OUT_DIR", tmp_path)
        text = report.render()
        assert "run the bench to produce" in text

    def test_main_writes_target(self, tmp_path, monkeypatch):
        target = tmp_path / "EXPERIMENTS.md"
        monkeypatch.setattr(report, "TARGET", target)
        report.main()
        assert target.exists()
        assert target.read_text().startswith("# EXPERIMENTS")
