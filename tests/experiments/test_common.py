"""Experiment infrastructure."""

import numpy as np
import pytest

from repro.experiments.common import (
    SCALES,
    bulk_vectors,
    current_scale,
    format_table,
    get_network,
)
from repro.proximity import select_landmarks
from repro.proximity.landmarks import measure_vector


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"quick", "medium", "paper"}

    def test_scales_are_ordered(self):
        assert (
            SCALES["quick"].overlay_nodes
            < SCALES["medium"].overlay_nodes
            < SCALES["paper"].overlay_nodes
        )
        assert max(SCALES["paper"].fig2_sweep) > max(SCALES["quick"].fig2_sweep)

    def test_default_scale_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()


class TestNetworkCache:
    def test_memoised(self):
        a = get_network("tsk-large", "manual", 0.25, seed=0)
        b = get_network("tsk-large", "manual", 0.25, seed=0)
        assert a is b

    def test_distinct_keys(self):
        a = get_network("tsk-large", "manual", 0.25, seed=0)
        b = get_network("tsk-large", "generated", 0.25, seed=0)
        assert a is not b


class TestBulkVectors:
    def test_matches_per_host_measurement(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 5, rng)
        hosts = tiny_network.topology.stub_nodes()[:10]
        bulk = bulk_vectors(tiny_network, landmarks, hosts, charge=False)
        for i, host in enumerate(hosts):
            single = measure_vector(tiny_network, int(host), landmarks)
            assert np.allclose(bulk[i], single, rtol=1e-5)

    def test_charging(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 5, rng)
        hosts = tiny_network.topology.stub_nodes()[:10]
        before = tiny_network.stats.snapshot()
        bulk_vectors(tiny_network, landmarks, hosts, charge=True)
        assert tiny_network.stats.delta(before)["landmark_probe"] == 50


class TestFormatTable:
    def test_alignment_and_floats(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": 7.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "0.123" in text
        assert len(lines) == 4

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
