"""Hilbert curves: bijectivity, locality, the unit-cube interface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proximity.hilbert import HilbertCurve


class TestConstruction:
    def test_sizes(self):
        curve = HilbertCurve(bits=3, dims=2)
        assert curve.side == 8
        assert curve.length == 64

    @pytest.mark.parametrize("bits,dims", [(0, 2), (2, 0), (-1, 3)])
    def test_rejects_bad_parameters(self, bits, dims):
        with pytest.raises(ValueError):
            HilbertCurve(bits=bits, dims=dims)

    def test_rejects_out_of_range_coords(self):
        curve = HilbertCurve(bits=2, dims=2)
        with pytest.raises(ValueError):
            curve.encode((4, 0))
        with pytest.raises(ValueError):
            curve.encode((0, -1))

    def test_rejects_out_of_range_index(self):
        curve = HilbertCurve(bits=2, dims=2)
        with pytest.raises(ValueError):
            curve.decode(16)
        with pytest.raises(ValueError):
            curve.decode(-1)

    def test_rejects_wrong_dimension_count(self):
        with pytest.raises(ValueError):
            HilbertCurve(bits=2, dims=2).encode((1, 1, 1))


class TestExhaustive:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_bijective(self, dims, bits):
        curve = HilbertCurve(bits=bits, dims=dims)
        seen = set()
        for index in range(curve.length):
            coords = curve.decode(index)
            assert curve.encode(coords) == index
            seen.add(coords)
        assert len(seen) == curve.length

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_unit_step_locality(self, dims, bits):
        """Consecutive indices differ by 1 in exactly one coordinate --
        the defining Hilbert property the paper's placement relies on."""
        curve = HilbertCurve(bits=bits, dims=dims)
        prev = curve.decode(0)
        for index in range(1, curve.length):
            cur = curve.decode(index)
            diff = [abs(a - b) for a, b in zip(prev, cur)]
            assert sum(diff) == 1 and max(diff) == 1, (index, prev, cur)
            prev = cur

    def test_known_2d_order_1(self):
        """The order-1 2-d Hilbert curve visits the four quadrants in a
        U shape (up to orientation: all four visited, each step adjacent)."""
        curve = HilbertCurve(bits=1, dims=2)
        path = [curve.decode(i) for i in range(4)]
        assert set(path) == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestProperties:
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=8),
           st.data())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_random(self, dims, bits, data):
        curve = HilbertCurve(bits=bits, dims=dims)
        index = data.draw(st.integers(min_value=0, max_value=curve.length - 1))
        assert curve.encode(curve.decode(index)) == index

    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_encode_round_trip_random_coords(self, data):
        dims = data.draw(st.integers(min_value=1, max_value=5))
        bits = data.draw(st.integers(min_value=1, max_value=6))
        curve = HilbertCurve(bits=bits, dims=dims)
        coords = tuple(
            data.draw(st.integers(min_value=0, max_value=curve.side - 1))
            for _ in range(dims)
        )
        assert curve.decode(curve.encode(coords)) == coords

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_index_locality_bounds_coordinate_distance(self, data):
        """Close indices stay close in space (weak locality bound)."""
        curve = HilbertCurve(bits=4, dims=2)
        index = data.draw(st.integers(min_value=0, max_value=curve.length - 2))
        a = curve.decode(index)
        b = curve.decode(index + 1)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1


class TestUnitInterface:
    def test_encode_point_matches_grid(self):
        curve = HilbertCurve(bits=2, dims=2)
        assert curve.encode_point((0.0, 0.0)) == curve.encode((0, 0))
        assert curve.encode_point((0.99, 0.99)) == curve.encode((3, 3))

    def test_encode_point_boundary_one_maps_to_last_cell(self):
        curve = HilbertCurve(bits=2, dims=2)
        # x == 1.0 is a float-normalisation artefact, not a range error
        assert curve.encode_point((1.0, 1.0)) == curve.encode((3, 3))

    def test_encode_point_rejects_out_of_range(self):
        curve = HilbertCurve(bits=2, dims=2)
        with pytest.raises(ValueError, match="unit interval"):
            curve.encode_point((-0.01, 0.5))
        with pytest.raises(ValueError, match="unit interval"):
            curve.encode_point((0.5, 1.01))

    def test_decode_center_round_trip(self):
        curve = HilbertCurve(bits=3, dims=2)
        for index in (0, 17, 63):
            center = curve.decode_center(index)
            assert curve.encode_point(center) == index
            assert all(0.0 < c < 1.0 for c in center)
