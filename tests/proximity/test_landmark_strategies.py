"""Landmark placement strategies."""

import numpy as np
import pytest

from repro.netsim import NodeKind
from repro.proximity import select_landmarks


class TestStrategies:
    def test_transit_picks_backbone_nodes(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 6, rng, strategy="transit")
        kinds = tiny_network.topology.node_kind[landmarks.hosts]
        assert (kinds == NodeKind.TRANSIT).all()

    def test_transit_pool_exhaustion(self, tiny_network, rng):
        transit_count = len(tiny_network.topology.transit_nodes())
        with pytest.raises(ValueError):
            select_landmarks(tiny_network, transit_count + 1, rng, strategy="transit")

    def test_spread_yields_distinct_hosts(self, tiny_network, rng):
        landmarks = select_landmarks(tiny_network, 6, rng, strategy="spread")
        assert len(set(int(h) for h in landmarks.hosts)) == 6

    def test_spread_separates_better_than_random(self, tiny_network):
        """Greedy max-min selection achieves a larger minimum pairwise
        latency than random picks (averaged over seeds)."""

        def min_gap(landmarks):
            hosts = landmarks.hosts
            return min(
                tiny_network.latency(int(a), int(b))
                for i, a in enumerate(hosts)
                for b in hosts[i + 1 :]
            )

        spread_gaps, random_gaps = [], []
        for seed in range(4):
            rng = np.random.default_rng(seed)
            spread_gaps.append(
                min_gap(select_landmarks(tiny_network, 5, rng, strategy="spread"))
            )
            rng = np.random.default_rng(seed)
            random_gaps.append(
                min_gap(select_landmarks(tiny_network, 5, rng, strategy="random"))
            )
        assert np.mean(spread_gaps) >= np.mean(random_gaps)

    def test_spread_charges_probes(self, tiny_network, rng):
        before = tiny_network.stats.snapshot()
        select_landmarks(tiny_network, 5, rng, strategy="spread")
        delta = tiny_network.stats.delta(before)
        # selection probes beyond the final pairwise calibration
        assert delta["landmark_calibration"] > 10

    def test_unknown_strategy(self, tiny_network, rng):
        with pytest.raises(ValueError, match="unknown landmark strategy"):
            select_landmarks(tiny_network, 5, rng, strategy="psychic")
