"""GNP-style coordinate embedding."""

import numpy as np
import pytest

from repro.proximity import CoordinateSystem


@pytest.fixture
def fitted(tiny_network, rng):
    system = CoordinateSystem(dims=3)
    landmarks = tiny_network.sample_hosts(8, rng, stub_only=False)
    system.fit_landmarks(tiny_network, landmarks)
    return system


class TestFit:
    def test_landmark_coords_shape(self, fitted):
        assert fitted.landmark_coords.shape == (8, 3)

    def test_landmark_embedding_roughly_preserves_distances(
        self, fitted, tiny_network
    ):
        hosts = fitted.landmark_hosts
        true_d, embed_d = [], []
        for i in range(len(hosts)):
            for j in range(i + 1, len(hosts)):
                true_d.append(tiny_network.latency(int(hosts[i]), int(hosts[j])))
                embed_d.append(
                    fitted.distance(fitted.landmark_coords[i], fitted.landmark_coords[j])
                )
        correlation = np.corrcoef(true_d, embed_d)[0, 1]
        assert correlation > 0.8

    def test_requires_enough_landmarks(self, tiny_network, rng):
        system = CoordinateSystem(dims=4)
        with pytest.raises(ValueError):
            system.fit_landmarks(tiny_network, tiny_network.sample_hosts(4, rng))

    def test_solve_before_fit_rejected(self, tiny_network):
        with pytest.raises(RuntimeError):
            CoordinateSystem(dims=2).solve_host(tiny_network, 0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            CoordinateSystem(dims=0)


class TestSolve:
    def test_host_coordinates_predict_distances(self, fitted, tiny_network, rng):
        hosts = tiny_network.sample_hosts(12, rng)
        coords = {int(h): fitted.solve_host(tiny_network, int(h)) for h in hosts}
        true_d, embed_d = [], []
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                true_d.append(tiny_network.latency(int(a), int(b)))
                embed_d.append(fitted.distance(coords[int(a)], coords[int(b)]))
        correlation = np.corrcoef(true_d, embed_d)[0, 1]
        assert correlation > 0.6

    def test_probes_charged(self, fitted, tiny_network):
        before = tiny_network.stats.snapshot()
        fitted.solve_host(tiny_network, 3)
        assert tiny_network.stats.delta(before)["gnp_probe"] == 8

    def test_solve_from_rtts_matches_solve_host(self, fitted, tiny_network):
        rtts = tiny_network.rtt_many(5, fitted.landmark_hosts)
        a = fitted.solve_from_rtts(rtts)
        b = fitted.solve_host(tiny_network, 5)
        assert np.allclose(a, b, atol=1e-6)
