"""Landmark vectors, orderings and landmark numbers."""

import numpy as np
import pytest

from repro.proximity import LandmarkSpace, select_landmarks
from repro.proximity.landmarks import landmark_order, measure_vector


@pytest.fixture
def landmark_set(tiny_network, rng):
    return select_landmarks(tiny_network, 6, rng)


class TestSelection:
    def test_count_and_distinct(self, landmark_set):
        assert landmark_set.count == 6
        assert len(set(landmark_set.hosts.tolist())) == 6

    def test_needs_two(self, tiny_network, rng):
        with pytest.raises(ValueError):
            select_landmarks(tiny_network, 1, rng)

    def test_max_rtt_covers_landmark_spread(self, tiny_network, landmark_set):
        pairwise = [
            2 * tiny_network.latency(int(a), int(b))
            for i, a in enumerate(landmark_set.hosts)
            for b in landmark_set.hosts[i + 1 :]
        ]
        assert landmark_set.max_rtt_ms >= max(pairwise)

    def test_calibration_is_charged(self, tiny_network, rng):
        select_landmarks(tiny_network, 5, rng)
        # 5 choose 2 pairwise calibration probes
        assert tiny_network.stats.get("landmark_calibration") == 10


class TestVectors:
    def test_vector_shape_and_values(self, tiny_network, landmark_set):
        vector = measure_vector(tiny_network, 3, landmark_set)
        assert vector.shape == (6,)
        for rtt, lm in zip(vector, landmark_set.hosts):
            assert rtt == pytest.approx(2 * tiny_network.latency(3, int(lm)))

    def test_vector_probes_charged(self, tiny_network, landmark_set):
        before = tiny_network.stats.snapshot()
        measure_vector(tiny_network, 3, landmark_set)
        assert tiny_network.stats.delta(before)["landmark_probe"] == 6

    def test_same_stub_hosts_have_close_vectors(self, tiny_network, landmark_set):
        topo = tiny_network.topology
        stub_ids = topo.stub_domain
        stub0 = np.flatnonzero(stub_ids == 0)[:2]
        far = np.flatnonzero(
            (stub_ids >= 0) & (topo.transit_domain != topo.transit_domain[stub0[0]])
        )[0]
        v_a = measure_vector(tiny_network, int(stub0[0]), landmark_set)
        v_b = measure_vector(tiny_network, int(stub0[1]), landmark_set)
        v_far = measure_vector(tiny_network, int(far), landmark_set)
        assert np.linalg.norm(v_a - v_b) < np.linalg.norm(v_a - v_far)


class TestOrdering:
    def test_order_is_permutation(self):
        order = landmark_order(np.array([30.0, 10.0, 20.0]))
        assert order == (1, 2, 0)

    def test_ties_stable(self):
        assert landmark_order(np.array([5.0, 5.0, 1.0])) == (2, 0, 1)


class TestLandmarkSpace:
    def test_total_bits(self, landmark_set):
        space = LandmarkSpace(landmark_set, bits_per_dim=5, index_dims=3)
        assert space.total_bits == 15
        assert space.number_range == 1 << 15

    def test_default_index_dims_capped(self, landmark_set):
        space = LandmarkSpace(landmark_set)
        assert space.index_dims == 4

    def test_index_dims_validation(self, landmark_set):
        with pytest.raises(ValueError):
            LandmarkSpace(landmark_set, index_dims=7)
        with pytest.raises(ValueError):
            LandmarkSpace(landmark_set, index_dims=0)

    def test_bin_vector_within_grid(self, tiny_network, landmark_set):
        space = LandmarkSpace(landmark_set, bits_per_dim=4, index_dims=3)
        vector = measure_vector(tiny_network, 7, landmark_set)
        cell = space.bin_vector(vector)
        assert len(cell) == 3
        assert all(0 <= c < 16 for c in cell)

    def test_number_in_range(self, tiny_network, landmark_set):
        space = LandmarkSpace(landmark_set, bits_per_dim=4, index_dims=3)
        for host in (2, 9, 30):
            vector = measure_vector(tiny_network, host, landmark_set)
            assert 0 <= space.number(vector) < space.number_range

    def test_number_overflow_clipped(self, landmark_set):
        space = LandmarkSpace(landmark_set, bits_per_dim=3, index_dims=2)
        huge = np.full(landmark_set.count, 10 * landmark_set.max_rtt_ms)
        assert 0 <= space.number(huge) < space.number_range

    def test_close_hosts_get_close_numbers_more_often_than_far(
        self, tiny_network, landmark_set
    ):
        """Statistical locality of the landmark number."""
        space = LandmarkSpace(landmark_set, bits_per_dim=5, index_dims=4)
        topo = tiny_network.topology
        stubs = topo.stub_nodes()
        rng = np.random.default_rng(5)
        close_gaps, far_gaps = [], []
        for _ in range(60):
            a, b = rng.choice(stubs, size=2, replace=False)
            va = measure_vector(tiny_network, int(a), landmark_set)
            vb = measure_vector(tiny_network, int(b), landmark_set)
            gap = abs(space.number(va) - space.number(vb))
            if topo.stub_domain[a] == topo.stub_domain[b]:
                close_gaps.append(gap)
            elif topo.transit_domain[a] != topo.transit_domain[b]:
                far_gaps.append(gap)
        same_stub = np.flatnonzero(topo.stub_domain == 1)[:2]
        va = measure_vector(tiny_network, int(same_stub[0]), landmark_set)
        vb = measure_vector(tiny_network, int(same_stub[1]), landmark_set)
        close_gaps.append(abs(space.number(va) - space.number(vb)))
        assert np.mean(close_gaps) < np.mean(far_gaps)

    def test_number_distance(self, landmark_set):
        space = LandmarkSpace(landmark_set)
        assert space.number_distance(5, 9) == 4
        assert space.number_distance(9, 5) == 4
