"""Hybrid landmark+RTT search and candidate ranking."""

import numpy as np
import pytest

from repro.proximity import LandmarkSpace, hybrid_search, rank_candidates, select_landmarks
from repro.experiments.common import bulk_vectors


@pytest.fixture
def testbed(tiny_network, rng):
    landmarks = select_landmarks(tiny_network, 8, rng)
    space = LandmarkSpace(landmarks, bits_per_dim=5, index_dims=4)
    hosts = tiny_network.topology.stub_nodes()
    vectors = bulk_vectors(tiny_network, landmarks, hosts, charge=False)
    return tiny_network, space, hosts, vectors


class TestRanking:
    def test_vector_ranking_orders_by_distance(self, testbed):
        _, _, hosts, vectors = testbed
        order = rank_candidates(vectors[0], vectors, rank="vector")
        dists = np.linalg.norm(vectors - vectors[0], axis=1)
        assert dists[order[0]] <= dists[order[-1]]
        assert order[0] == 0  # itself is distance zero

    def test_number_ranking(self, testbed):
        _, space, hosts, vectors = testbed
        order = rank_candidates(
            vectors[3], vectors, rank="number", landmark_space=space
        )
        numbers = np.array([space.number(v) for v in vectors])
        gaps = np.abs(numbers - space.number(vectors[3]))
        assert gaps[order[0]] == gaps.min()

    def test_number_ranking_requires_space(self, testbed):
        _, _, _, vectors = testbed
        with pytest.raises(ValueError):
            rank_candidates(vectors[0], vectors, rank="number")

    def test_order_ranking_prefers_same_permutation(self, testbed):
        _, _, hosts, vectors = testbed
        rng = np.random.default_rng(3)
        order = rank_candidates(vectors[5], vectors, rank="order", rng=rng)
        query_perm = tuple(np.argsort(vectors[5], kind="stable"))
        top_perm = tuple(np.argsort(vectors[order[0]], kind="stable"))
        assert top_perm == query_perm

    def test_unknown_ranking(self, testbed):
        _, _, _, vectors = testbed
        with pytest.raises(ValueError):
            rank_candidates(vectors[0], vectors, rank="nope")

    def test_coordinates_ranking(self, testbed):
        network, _, hosts, vectors = testbed
        from repro.proximity import CoordinateSystem

        system = CoordinateSystem(dims=3)
        system.fit_landmarks(network, network.sample_hosts(8, np.random.default_rng(2)))
        coords = np.array(
            [system.solve_host(network, int(h)) for h in hosts[:20]]
        )
        order = rank_candidates(
            vectors[0],
            vectors[:20],
            rank="coordinates",
            coordinates=coords,
            query_coords=coords[0],
        )
        assert sorted(order.tolist()) == list(range(20))
        assert order[0] == 0  # itself at distance zero

    def test_coordinates_ranking_requires_embedding(self, testbed):
        _, _, _, vectors = testbed
        with pytest.raises(ValueError):
            rank_candidates(vectors[0], vectors, rank="coordinates")


class TestHybridSearch:
    def _true_nearest(self, network, hosts, query_idx):
        lat = network.latencies_from(int(hosts[query_idx]))[hosts].astype(np.float64)
        lat[query_idx] = np.inf
        return float(lat.min())

    def test_finds_nearest_with_moderate_budget(self, testbed):
        network, space, hosts, vectors = testbed
        hits = 0
        for q in (0, 7, 20, 33):
            true_nn = self._true_nearest(network, hosts, q)
            curve = hybrid_search(
                network, int(hosts[q]), vectors[q], hosts, vectors, budget=15
            )
            if curve.stretch_after(15, true_nn) == pytest.approx(1.0):
                hits += 1
        assert hits >= 3  # landmark guidance works with ~15 probes

    def test_budget_respected_and_charged(self, testbed):
        network, _, hosts, vectors = testbed
        before = network.stats.snapshot()
        hybrid_search(network, int(hosts[0]), vectors[0], hosts, vectors, budget=7)
        assert network.stats.delta(before)["hybrid_probe"] == 7

    def test_excludes_query_host(self, testbed):
        network, _, hosts, vectors = testbed
        curve = hybrid_search(
            network, int(hosts[4]), vectors[4], hosts, vectors, budget=5
        )
        assert int(hosts[4]) not in curve.best_host.tolist()

    def test_budget_one_is_landmark_only(self, testbed):
        """The first point of the lmk+rtt series is landmark clustering alone."""
        network, _, hosts, vectors = testbed
        curve = hybrid_search(
            network, int(hosts[9]), vectors[9], hosts, vectors, budget=1
        )
        order = rank_candidates(vectors[9], vectors)
        expected = next(int(hosts[i]) for i in order if int(hosts[i]) != int(hosts[9]))
        assert curve.best_after(1)[0] == expected

    def test_more_budget_never_hurts(self, testbed):
        network, _, hosts, vectors = testbed
        true_nn = self._true_nearest(network, hosts, 12)
        curve = hybrid_search(
            network, int(hosts[12]), vectors[12], hosts, vectors, budget=40
        )
        values = [curve.stretch_after(b, true_nn) for b in (1, 5, 15, 40)]
        assert values == sorted(values, reverse=True)

    def test_beats_random_probing_on_average(self, testbed):
        """Landmark pre-selection must outperform blind probing at equal
        budget -- the paper's core claim about proximity generation."""
        network, _, hosts, vectors = testbed
        rng = np.random.default_rng(4)
        budget = 8
        hybrid_total, random_total = 0.0, 0.0
        for q in range(0, 40, 5):
            true_nn = self._true_nearest(network, hosts, q)
            if true_nn <= 0:
                continue
            curve = hybrid_search(
                network, int(hosts[q]), vectors[q], hosts, vectors, budget=budget
            )
            hybrid_total += curve.stretch_after(budget, true_nn)
            pool = [h for h in hosts.tolist() if h != int(hosts[q])]
            sample = rng.choice(pool, size=budget, replace=False)
            best = min(network.latency(int(hosts[q]), int(h)) for h in sample)
            random_total += best / true_nn
        assert hybrid_total < random_total
