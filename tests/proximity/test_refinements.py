"""§5.4 refinement strategies."""

import numpy as np
import pytest

from repro.experiments.common import bulk_vectors
from repro.netsim import GeneratedLatencyModel, Network, NoisyLatencyModel
from repro.proximity import select_landmarks
from repro.proximity.refinements import (
    HierarchicalLandmarks,
    LandmarkGroups,
    SvdProjector,
)


@pytest.fixture
def noisy_testbed(tiny_topology, rng):
    """Noisy latencies + many landmarks: the regime §5.4 targets."""
    network = Network(
        tiny_topology, NoisyLatencyModel(base=GeneratedLatencyModel(), sigma=0.5, seed=9)
    )
    landmarks = select_landmarks(network, 12, rng)
    hosts = tiny_topology.stub_nodes()
    vectors = bulk_vectors(network, landmarks, hosts, charge=False)
    return network, hosts, vectors


def ranking_quality(network, hosts, order_fn, queries=12, top=5) -> float:
    """Mean true latency of the top-ranked candidates (lower = better)."""
    rng = np.random.default_rng(3)
    picks = rng.choice(len(hosts), size=queries, replace=False)
    total = 0.0
    for q in picks:
        order = order_fn(int(q))
        order = [i for i in order if i != q][:top]
        lat = network.latencies_from(int(hosts[q]))[hosts]
        total += float(np.mean(lat[order]))
    return total / queries


class TestLandmarkGroups:
    def test_split_partitions(self):
        groups = LandmarkGroups.split(10, 3)
        flat = sorted(int(i) for g in groups.groups for i in g)
        assert flat == list(range(10))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            LandmarkGroups.split(4, 5)
        with pytest.raises(ValueError):
            LandmarkGroups([])

    def test_rank_is_permutation(self, noisy_testbed):
        _, hosts, vectors = noisy_testbed
        groups = LandmarkGroups.split(vectors.shape[1], 3)
        order = groups.rank(vectors[0], vectors)
        assert sorted(order.tolist()) == list(range(len(hosts)))

    def test_one_group_equals_plain_ranking(self, noisy_testbed):
        _, _, vectors = noisy_testbed
        groups = LandmarkGroups.split(vectors.shape[1], 1)
        plain = np.argsort(np.linalg.norm(vectors - vectors[0], axis=1), kind="stable")
        assert np.array_equal(groups.rank(vectors[0], vectors), plain)

    def test_vetoes_single_group_false_clustering(self):
        """A candidate that fakes closeness in one group but not the
        other must rank below a candidate close in both."""
        query = np.zeros(4)
        good = np.array([1.0, 1.0, 1.0, 1.0])
        faker = np.array([0.0, 0.0, 3.0, 3.0])  # perfect in group 0 only
        groups = LandmarkGroups([[0, 1], [2, 3]])
        order = groups.rank(query, np.stack([faker, good]))
        assert order[0] == 1  # 'good' wins despite larger plain distance


class TestSvd:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SvdProjector(2).transform(np.zeros((3, 5)))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            SvdProjector(0)
        with pytest.raises(ValueError):
            SvdProjector(5).fit(np.zeros((4, 6)))

    def test_transform_shape(self, noisy_testbed):
        _, _, vectors = noisy_testbed
        projector = SvdProjector(4).fit(vectors)
        out = projector.transform(vectors[:7])
        assert out.shape == (7, 4)

    def test_rank_is_permutation(self, noisy_testbed):
        _, hosts, vectors = noisy_testbed
        projector = SvdProjector(4).fit(vectors)
        order = projector.rank(vectors[3], vectors)
        assert sorted(order.tolist()) == list(range(len(hosts)))

    def test_projection_preserves_dominant_structure(self, noisy_testbed):
        """Ranking quality in the top subspace stays comparable to the
        full noisy vectors (the projection mostly discards noise)."""
        network, hosts, vectors = noisy_testbed
        projector = SvdProjector(5).fit(vectors)

        def svd_rank(q):
            return projector.rank(vectors[q], vectors)

        def plain_rank(q):
            return np.argsort(np.linalg.norm(vectors - vectors[q], axis=1))

        svd_quality = ranking_quality(network, hosts, svd_rank)
        plain_quality = ranking_quality(network, hosts, plain_rank)
        assert svd_quality <= plain_quality * 1.3


class TestHierarchical:
    @pytest.fixture
    def hierarchy(self, tiny_topology):
        network = Network(tiny_topology, GeneratedLatencyModel())
        return network, HierarchicalLandmarks(
            network, global_count=4, local_count=2, rng=np.random.default_rng(5)
        )

    def test_local_sets_cover_domains(self, hierarchy):
        network, h = hierarchy
        assert len(h.local_sets) == network.topology.config.transit_domains

    def test_measure_shapes(self, hierarchy):
        network, h = hierarchy
        host = int(network.topology.stub_nodes()[0])
        global_vector, locals_ = h.measure(host)
        assert global_vector.shape == (4,)
        assert all(v.shape == (2,) for v in locals_.values())

    def test_rank_is_permutation(self, hierarchy):
        network, h = hierarchy
        hosts = network.topology.stub_nodes()[:15]
        measured = [h.measure(int(x)) for x in hosts]
        order = h.rank(measured[0], measured)
        assert sorted(order.tolist()) == list(range(15))

    def test_local_refinement_separates_same_bucket_nodes(self, hierarchy):
        """Nodes indistinguishable at the global coarse bucket must be
        ordered by local-landmark distance."""
        network, h = hierarchy
        topo = network.topology
        # query + same-stub near node + same-domain far node
        stub0 = np.flatnonzero(topo.stub_domain == 0)
        domain = topo.transit_domain[stub0[0]]
        other_stub = np.flatnonzero(
            (topo.transit_domain == domain) & (topo.stub_domain > 0)
            & (topo.stub_domain >= 0)
        )
        trio = [int(stub0[0]), int(stub0[1]), int(other_stub[-1])]
        measured = [h.measure(x) for x in trio]
        order = h.rank(measured[0], measured)
        assert list(order)[0] == 0  # itself
        assert list(order).index(1) < list(order).index(2)
