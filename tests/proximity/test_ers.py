"""Expanding-ring search and the SearchCurve container."""

import numpy as np
import pytest

from repro.overlay import CanOverlay
from repro.proximity import expanding_ring_search
from repro.proximity.ers import SearchCurve


@pytest.fixture
def search_can(tiny_network):
    """A CAN containing every node of the tiny topology."""
    can = CanOverlay(dims=2, rng=np.random.default_rng(11))
    for i in range(tiny_network.num_nodes):
        can.join(i, host=i)
    return can


class TestSearchCurve:
    def make(self):
        return SearchCurve(
            probes=np.array([1, 4, 9]),
            best_rtt=np.array([10.0, 6.0, 2.0]),
            best_host=np.array([7, 8, 9]),
        )

    def test_best_after(self):
        curve = self.make()
        assert curve.best_after(1) == (7, 10.0)
        assert curve.best_after(5) == (8, 6.0)
        assert curve.best_after(100) == (9, 2.0)

    def test_best_after_zero_budget(self):
        assert self.make().best_after(0) == (None, float("inf"))

    def test_empty_curve(self):
        curve = SearchCurve(
            probes=np.array([]), best_rtt=np.array([]), best_host=np.array([])
        )
        assert curve.best_after(10) == (None, float("inf"))
        assert curve.stretch_after(10, 1.0) == float("inf")

    def test_stretch_after(self):
        curve = self.make()
        # best rtt 2.0 -> one-way 1.0; true nearest 0.5 -> stretch 2
        assert curve.stretch_after(100, 0.5) == pytest.approx(2.0)

    def test_stretch_monotone_in_budget(self):
        curve = self.make()
        values = [curve.stretch_after(b, 1.0) for b in (1, 4, 9)]
        assert values == sorted(values, reverse=True)


class TestErs:
    def test_finds_true_nearest_with_full_budget(self, tiny_network, search_can):
        query = 5
        curve = expanding_ring_search(
            tiny_network, search_can, query, max_probes=tiny_network.num_nodes
        )
        lat = tiny_network.latencies_from(5).astype(np.float64).copy()
        lat[5] = np.inf
        best_host, best_rtt = curve.best_after(tiny_network.num_nodes)
        assert best_rtt / 2.0 == pytest.approx(float(lat.min()))

    def test_respects_probe_budget(self, tiny_network, search_can):
        before = tiny_network.stats.snapshot()
        curve = expanding_ring_search(tiny_network, search_can, 3, max_probes=25)
        delta = tiny_network.stats.delta(before)
        assert delta["ers_probe"] <= 25
        assert curve.probes.max() <= 25

    def test_quality_improves_with_budget(self, tiny_network, search_can):
        stretches = []
        lat = tiny_network.latencies_from(8).astype(np.float64).copy()
        lat[8] = np.inf
        true_nn = float(lat.min())
        curve = expanding_ring_search(
            tiny_network, search_can, 8, max_probes=tiny_network.num_nodes
        )
        for budget in (5, 40, tiny_network.num_nodes):
            stretches.append(curve.stretch_after(budget, true_nn))
        assert stretches[0] >= stretches[1] >= stretches[2]
        assert stretches[2] == pytest.approx(1.0)

    def test_counts_control_messages(self, tiny_network, search_can):
        curve = expanding_ring_search(tiny_network, search_can, 2, max_probes=30)
        assert curve.control_messages >= len(curve.probes)

    def test_unknown_query_node(self, tiny_network, search_can):
        with pytest.raises(KeyError):
            expanding_ring_search(tiny_network, search_can, 10 ** 9)

    def test_best_rtt_series_strictly_improving(self, tiny_network, search_can):
        curve = expanding_ring_search(tiny_network, search_can, 4, max_probes=200)
        assert (np.diff(curve.best_rtt) < 0).all()
        assert (np.diff(curve.probes) > 0).all()
