"""Soft-state on Chord: regions, placement, lookup, finger policies."""

import numpy as np
import pytest

from repro.chord import (
    ChordRegion,
    ChordRing,
    ChordSoftState,
)
from repro.chord.ring import in_interval
from repro.chord.softstate import build_soft_state_ring


@pytest.fixture
def ring_pair(tiny_network):
    ring, softstate = build_soft_state_ring(
        tiny_network, 48, landmarks=6, policy_name="softstate", bits=16, seed=4
    )
    return ring, softstate


class TestRegions:
    def test_bounds(self):
        region = ChordRegion(level=2, index=3)
        lo, hi = region.bounds(bits=8)
        assert (lo, hi) == (192, 256)

    def test_containing(self):
        region = ChordRegion.containing(200, level=2, bits=8)
        assert region == ChordRegion(level=2, index=3)
        lo, hi = region.bounds(8)
        assert lo <= 200 < hi

    def test_level_one_splits_ring_in_half(self):
        a = ChordRegion.containing(0, 1, 8)
        b = ChordRegion.containing(255, 1, 8)
        assert a != b


class TestPlacement:
    def test_map_key_inside_condensed_prefix(self, ring_pair):
        ring, softstate = ring_pair
        for node_id, record in list(softstate.registry.items())[:10]:
            for region in softstate.regions_of(node_id):
                key = softstate.map_key(record.landmark_number, region)
                lo, hi = region.bounds(ring.bits)
                condensed_hi = lo + max(
                    1, int((hi - lo) * softstate.condense_rate)
                )
                assert lo <= key < condensed_hi

    def test_close_landmark_numbers_get_close_keys(self, ring_pair):
        ring, softstate = ring_pair
        region = ChordRegion(level=1, index=0)
        keys = [softstate.map_key(n, region) for n in (100, 101, 5000)]
        assert abs(keys[0] - keys[1]) <= abs(keys[0] - keys[2])

    def test_every_member_published(self, ring_pair):
        ring, softstate = ring_pair
        for node_id in ring.members():
            assert node_id in softstate.registry
            held = sum(node_id in bucket for bucket in softstate.maps.values())
            assert held == len(list(softstate.levels_for()))

    def test_withdraw_on_leave(self, ring_pair):
        ring, softstate = ring_pair
        victim = ring.members()[0]
        ring.leave(victim)
        assert victim not in softstate.registry
        assert all(victim not in bucket for bucket in softstate.maps.values())

    def test_entries_per_node_totals(self, ring_pair):
        ring, softstate = ring_pair
        counts = softstate.entries_per_node()
        total = sum(len(bucket) for bucket in softstate.maps.values())
        assert sum(counts.values()) == total


class TestLookup:
    def test_returns_sorted_by_vector_distance(self, ring_pair):
        ring, softstate = ring_pair
        querier = ring.members()[0]
        region = ChordRegion(level=1, index=0)
        records = softstate.lookup(querier, region)
        own = np.asarray(softstate.registry[querier].landmark_vector)
        gaps = [
            float(np.linalg.norm(np.asarray(r.landmark_vector) - own))
            for r in records
        ]
        assert gaps == sorted(gaps)
        assert querier not in [r.node_id for r in records]

    def test_respects_max_results(self, ring_pair):
        ring, softstate = ring_pair
        querier = ring.members()[1]
        records = softstate.lookup(querier, ChordRegion(1, 1), max_results=3)
        assert len(records) <= 3

    def test_lookup_charges_route(self, ring_pair, tiny_network):
        ring, softstate = ring_pair
        before = tiny_network.stats.snapshot()
        softstate.lookup(ring.members()[2], ChordRegion(1, 0))
        delta = tiny_network.stats.delta(before)
        assert set(delta) <= {"softstate_lookup"}


class TestPolicies:
    @pytest.mark.parametrize("policy", ["random", "successor", "softstate", "optimal"])
    def test_build_produces_routable_ring(self, tiny_network, policy):
        ring, _ = build_soft_state_ring(
            tiny_network, 40, landmarks=5, policy_name=policy, bits=14, seed=2
        )
        rng = np.random.default_rng(5)
        for _ in range(30):
            result = ring.route(ring.random_member(), int(rng.integers(0, ring.space)))
            assert result.success

    def test_unknown_policy(self, tiny_network):
        with pytest.raises(ValueError):
            build_soft_state_ring(tiny_network, 8, policy_name="psychic")

    def test_softstate_fingers_stay_in_interval(self, ring_pair):
        ring, _ = ring_pair
        for node_id in ring.members()[:10]:
            for index, entry in ring.nodes[node_id].fingers.items():
                lo, hi = ring.finger_interval(node_id, index)
                assert in_interval(entry, lo, hi, ring.space)

    def test_generality_ordering(self, small_topology):
        """The paper's claim ported to Chord: soft-state selection beats
        random finger choice and tracks the oracle."""
        from repro.netsim import ManualLatencyModel, Network

        means = {}
        for policy in ("random", "softstate", "optimal"):
            network = Network(small_topology, ManualLatencyModel())
            ring, _ = build_soft_state_ring(
                network, 128, landmarks=8, policy_name=policy, bits=18, seed=7
            )
            stretch = ring.measure_stretch(300, rng=np.random.default_rng(11))
            means[policy] = stretch.mean()
        assert means["softstate"] < means["random"]
        assert means["optimal"] <= means["softstate"] * 1.2
