"""Chord ring mechanics: arithmetic, membership, fingers, routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.ring import ChordRing, distance_cw, in_interval


def build_ring(n: int, bits: int = 12, seed: int = 0) -> ChordRing:
    ring = ChordRing(bits=bits, rng=np.random.default_rng(seed))
    for i in range(n):
        ring.join(host=1000 + i)
    return ring


class TestArithmetic:
    def test_distance_cw(self):
        assert distance_cw(2, 5, 16) == 3
        assert distance_cw(5, 2, 16) == 13
        assert distance_cw(7, 7, 16) == 0

    def test_in_interval_plain(self):
        assert in_interval(3, 2, 5, 16)
        assert not in_interval(5, 2, 5, 16)  # half-open
        assert in_interval(2, 2, 5, 16)

    def test_in_interval_wrapping(self):
        assert in_interval(1, 14, 3, 16)
        assert in_interval(15, 14, 3, 16)
        assert not in_interval(5, 14, 3, 16)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_interval_membership_partition(self, x, lo, hi):
        """x is in exactly one of [lo, hi) and [hi, lo) unless lo == hi."""
        if lo == hi:
            assert not in_interval(x, lo, hi, 256)
        else:
            assert in_interval(x, lo, hi, 256) != in_interval(x, hi, lo, 256)


class TestMembership:
    def test_join_assigns_unique_ids(self):
        ring = build_ring(50)
        assert len(ring) == 50
        assert len(set(ring.members())) == 50

    def test_explicit_id(self):
        ring = ChordRing(bits=8, rng=np.random.default_rng(1))
        ring.join(host=1, node_id=42)
        assert 42 in ring
        with pytest.raises(ValueError):
            ring.join(host=2, node_id=42)

    def test_successor_of_wraps(self):
        ring = ChordRing(bits=8, rng=np.random.default_rng(1))
        for node_id in (10, 100, 200):
            ring.join(host=node_id, node_id=node_id)
        assert ring.successor_of(5) == 10
        assert ring.successor_of(10) == 10
        assert ring.successor_of(150) == 200
        assert ring.successor_of(201) == 10  # wrap

    def test_successor_predecessor_cycle(self):
        ring = build_ring(20)
        members = ring.members()
        for node_id in members:
            succ = ring.successor(node_id)
            assert ring.predecessor(succ) == node_id

    def test_interval_members(self):
        ring = ChordRing(bits=8, rng=np.random.default_rng(1))
        for node_id in (10, 100, 200):
            ring.join(host=node_id, node_id=node_id)
        assert ring.interval_members(5, 150) == [10, 100]
        assert ring.interval_members(150, 50) == [200, 10]  # wrapping
        assert ring.interval_members(30, 30) == []

    def test_leave(self):
        ring = build_ring(10)
        victim = ring.members()[3]
        ring.leave(victim)
        assert victim not in ring
        assert len(ring) == 9
        with pytest.raises(KeyError):
            ring.leave(victim)

    def test_empty_ring_operations(self):
        ring = ChordRing(bits=8)
        with pytest.raises(RuntimeError):
            ring.successor_of(3)
        with pytest.raises(RuntimeError):
            ring.random_member()


class TestFingers:
    def test_vanilla_fingers_are_interval_successors(self):
        ring = build_ring(64, seed=2)
        node_id = ring.members()[0]
        ring.build_fingers(node_id)
        for index, entry in ring.nodes[node_id].fingers.items():
            lo, hi = ring.finger_interval(node_id, index)
            assert in_interval(entry, lo, hi, ring.space)
            # successor policy: first member of the interval
            members = ring.interval_members(lo, hi)
            assert entry == members[0] if members[0] != node_id else True

    def test_finger_repairs_after_leave(self):
        ring = build_ring(64, seed=3)
        node_id = ring.members()[0]
        ring.build_fingers(node_id)
        index, victim = next(iter(ring.nodes[node_id].fingers.items()))
        if victim != node_id:
            ring.leave(victim)
            repaired = ring.finger(node_id, index)
            assert repaired is None or repaired in ring.nodes

    def test_empty_interval_has_no_finger(self):
        ring = ChordRing(bits=8, rng=np.random.default_rng(1))
        ring.join(host=1, node_id=0)
        ring.join(host=2, node_id=128)
        ring.build_fingers(0)
        # interval [1, 2) etc. are empty; only the half-ring finger exists
        assert set(ring.nodes[0].fingers.values()) == {128}


class TestRouting:
    def test_route_reaches_owner(self):
        ring = build_ring(100, seed=5)
        rng = np.random.default_rng(7)
        for _ in range(80):
            start = ring.random_member()
            key = int(rng.integers(0, ring.space))
            result = ring.route(start, key)
            assert result.success
            assert result.owner == ring.successor_of(key)

    def test_route_to_own_key(self):
        ring = build_ring(20, seed=5)
        node_id = ring.members()[4]
        result = ring.route(node_id, node_id)
        assert result.owner == node_id

    def test_single_node_ring(self):
        ring = build_ring(1)
        only = ring.members()[0]
        result = ring.route(only, 12345 % ring.space)
        assert result.owner == only

    def test_logarithmic_hops(self):
        rng = np.random.default_rng(9)
        means = {}
        for n in (32, 256):
            ring = build_ring(n, bits=14, seed=6)
            hops = []
            for _ in range(60):
                result = ring.route(ring.random_member(), int(rng.integers(0, ring.space)))
                hops.append(result.hops)
            means[n] = np.mean(hops)
        assert means[256] < means[32] * 2.2  # ~log growth, not linear

    def test_routing_after_churn(self):
        ring = build_ring(80, seed=8)
        rng = np.random.default_rng(3)
        for victim in ring.members()[::3]:
            ring.leave(victim)
        for i in range(20):
            ring.join(host=5000 + i)
        for _ in range(50):
            result = ring.route(ring.random_member(), int(rng.integers(0, ring.space)))
            assert result.success

    def test_unknown_start(self):
        ring = build_ring(5)
        with pytest.raises(KeyError):
            ring.route(10 ** 9, 0)

    def test_route_counts_messages(self, tiny_network):
        ring = ChordRing(bits=12, network=tiny_network,
                         rng=np.random.default_rng(1), stats=tiny_network.stats)
        for i in range(30):
            ring.join(host=i)
        before = tiny_network.stats.snapshot()
        result = ring.route(ring.random_member(), 99, category="probe_route")
        assert tiny_network.stats.delta(before).get("probe_route", 0) == result.hops
