"""Latency models."""

import numpy as np
import pytest

from repro.netsim import (
    GeneratedLatencyModel,
    ManualLatencyModel,
    NoisyLatencyModel,
    latency_model_from_name,
)
from repro.netsim.transit_stub import LinkClass


class TestManual:
    def test_class_values(self, tiny_topology):
        model = ManualLatencyModel()
        weights = model.weights(tiny_topology)
        cls = tiny_topology.edge_class
        assert np.allclose(weights[cls == LinkClass.CROSS_TRANSIT], 100.0)
        assert np.allclose(weights[cls == LinkClass.INTRA_TRANSIT], 20.0)
        assert np.allclose(weights[cls == LinkClass.TRANSIT_STUB], 5.5)
        assert np.allclose(weights[cls == LinkClass.INTRA_STUB], 1.0)

    def test_custom_values(self, tiny_topology):
        model = ManualLatencyModel(intra_stub_ms=3.0)
        weights = model.weights(tiny_topology)
        cls = tiny_topology.edge_class
        assert np.allclose(weights[cls == LinkClass.INTRA_STUB], 3.0)

    def test_latency_ordering_matches_hierarchy(self, tiny_topology):
        """Backbone links must dominate edge links."""
        model = ManualLatencyModel()
        assert model.cross_transit_ms > model.intra_transit_ms
        assert model.intra_transit_ms > model.transit_stub_ms
        assert model.transit_stub_ms > model.intra_stub_ms


class TestGenerated:
    def test_positive(self, tiny_topology):
        weights = GeneratedLatencyModel().weights(tiny_topology)
        assert (weights > 0).all()

    def test_cross_transit_longer_than_intra_stub_on_average(self, tiny_topology):
        weights = GeneratedLatencyModel().weights(tiny_topology)
        cls = tiny_topology.edge_class
        cross = weights[cls == LinkClass.CROSS_TRANSIT]
        stub = weights[cls == LinkClass.INTRA_STUB]
        assert cross.mean() > 5 * stub.mean()

    def test_deterministic(self, tiny_topology):
        model = GeneratedLatencyModel()
        assert np.array_equal(model.weights(tiny_topology), model.weights(tiny_topology))

    def test_scale_knob(self, tiny_topology):
        base = GeneratedLatencyModel(ms_per_unit=0.25).weights(tiny_topology)
        double = GeneratedLatencyModel(ms_per_unit=0.5).weights(tiny_topology)
        big_enough = base > GeneratedLatencyModel().min_latency_ms
        assert np.allclose(double[big_enough], 2 * base[big_enough])


class TestNoisy:
    def test_requires_base(self, tiny_topology):
        with pytest.raises(ValueError):
            NoisyLatencyModel().weights(tiny_topology)

    def test_perturbs_but_preserves_scale(self, tiny_topology):
        base_model = ManualLatencyModel()
        noisy = NoisyLatencyModel(base=base_model, sigma=0.3, seed=2)
        base = base_model.weights(tiny_topology)
        values = noisy.weights(tiny_topology)
        assert not np.allclose(values, base)
        assert (values > 0).all()
        # log-normal with sigma=0.3: geometric mean ratio close to 1
        ratio = np.exp(np.mean(np.log(values / base)))
        assert 0.8 < ratio < 1.2

    def test_seeded(self, tiny_topology):
        a = NoisyLatencyModel(base=ManualLatencyModel(), seed=5).weights(tiny_topology)
        b = NoisyLatencyModel(base=ManualLatencyModel(), seed=5).weights(tiny_topology)
        c = NoisyLatencyModel(base=ManualLatencyModel(), seed=6).weights(tiny_topology)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["generated", "manual", "noisy-generated", "noisy-manual"]
    )
    def test_known_names(self, name, tiny_topology):
        model = latency_model_from_name(name, seed=1)
        weights = model.weights(tiny_topology)
        assert len(weights) == tiny_topology.num_edges

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown latency model"):
            latency_model_from_name("bogus")
