"""Topology save/load round trips."""

import numpy as np
import pytest

from repro.netsim import DistanceOracle, ManualLatencyModel
from repro.netsim.serialize import load_topology, save_topology


class TestRoundTrip:
    def test_arrays_and_metadata_survive(self, tiny_topology, tmp_path):
        path = tmp_path / "topo.npz"
        save_topology(tiny_topology, path)
        loaded = load_topology(path)
        assert loaded.num_nodes == tiny_topology.num_nodes
        assert loaded.seed == tiny_topology.seed
        assert loaded.name == tiny_topology.name
        assert loaded.config == tiny_topology.config
        for attr in ("edges", "edge_class", "node_kind", "transit_domain",
                     "stub_domain", "coords"):
            assert np.array_equal(getattr(loaded, attr), getattr(tiny_topology, attr))

    def test_loaded_topology_is_usable(self, tiny_topology, tmp_path):
        path = tmp_path / "topo.npz"
        save_topology(tiny_topology, path)
        loaded = load_topology(path)
        oracle = DistanceOracle.from_topology(loaded, ManualLatencyModel())
        assert oracle.is_connected()
        original = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        assert oracle.distance(0, 5) == pytest.approx(original.distance(0, 5))

    @staticmethod
    def _rewrite_version(topology, path, version):
        import json

        save_topology(topology, path)
        data = dict(np.load(path))
        header = json.loads(bytes(data["header"]).decode())
        header["format_version"] = version
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(path, **data)

    def test_newer_version_rejected_with_clear_error(self, tiny_topology, tmp_path):
        """A file from a future writer must fail loudly, naming both versions."""
        path = tmp_path / "topo.npz"
        self._rewrite_version(tiny_topology, path, 999)
        with pytest.raises(ValueError, match=r"format_version 999.*newer than"):
            load_topology(path)

    def test_newer_version_message_names_supported_version(
        self, tiny_topology, tmp_path
    ):
        from repro.netsim.serialize import FORMAT_VERSION

        path = tmp_path / "topo.npz"
        self._rewrite_version(tiny_topology, path, FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match=str(FORMAT_VERSION)):
            load_topology(path)

    @pytest.mark.parametrize("version", [None, "1", 0, -3, True])
    def test_garbage_version_rejected(self, tiny_topology, tmp_path, version):
        path = tmp_path / "topo.npz"
        self._rewrite_version(tiny_topology, path, version)
        with pytest.raises(ValueError, match="format_version"):
            load_topology(path)
