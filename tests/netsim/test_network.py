"""Network facade: measurement accounting and host sampling."""

import numpy as np
import pytest

from repro.netsim import NodeKind
from repro.netsim.network import MessageStats


class TestMessageStats:
    def test_count_and_get(self):
        stats = MessageStats()
        stats.count("x")
        stats.count("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_total(self):
        stats = MessageStats()
        stats.count("a", 2)
        stats.count("b", 3)
        assert stats.total() == 5

    def test_snapshot_delta(self):
        stats = MessageStats()
        stats.count("a", 2)
        before = stats.snapshot()
        stats.count("a", 1)
        stats.count("b", 7)
        assert stats.delta(before) == {"a": 1, "b": 7}

    def test_delta_skips_unchanged(self):
        stats = MessageStats()
        stats.count("a", 2)
        assert stats.delta(stats.snapshot()) == {}

    def test_reset(self):
        stats = MessageStats()
        stats.count("a")
        stats.reset()
        assert stats.total() == 0


class TestRtt:
    def test_rtt_is_twice_latency(self, tiny_network):
        assert tiny_network.rtt(0, 5) == pytest.approx(2 * tiny_network.latency(0, 5))

    def test_rtt_charges_probe(self, tiny_network):
        tiny_network.rtt(0, 5)
        tiny_network.rtt(0, 6, category="custom")
        assert tiny_network.stats.get("rtt_probe") == 1
        assert tiny_network.stats.get("custom") == 1

    def test_latency_is_free(self, tiny_network):
        tiny_network.latency(0, 5)
        tiny_network.latencies_from(0)
        assert tiny_network.stats.total() == 0

    def test_rtt_many(self, tiny_network):
        hosts = [3, 4, 5]
        rtts = tiny_network.rtt_many(0, hosts)
        assert len(rtts) == 3
        assert tiny_network.stats.get("rtt_probe") == 3
        for host, rtt in zip(hosts, rtts):
            assert rtt == pytest.approx(2 * tiny_network.latency(0, host))

    def test_path_latency(self, tiny_network):
        path = [0, 4, 9]
        expected = tiny_network.latency(0, 4) + tiny_network.latency(4, 9)
        assert tiny_network.path_latency(path) == pytest.approx(expected)

    def test_path_latency_single_host_is_zero(self, tiny_network):
        assert tiny_network.path_latency([3]) == 0.0


class TestHosts:
    def test_sample_hosts_distinct_stub(self, tiny_network, rng):
        hosts = tiny_network.sample_hosts(20, rng)
        assert len(set(hosts.tolist())) == 20
        kinds = tiny_network.topology.node_kind[hosts]
        assert (kinds == NodeKind.STUB).all()

    def test_sample_hosts_all_pool(self, tiny_network, rng):
        hosts = tiny_network.sample_hosts(tiny_network.num_nodes, rng, stub_only=False)
        assert len(hosts) == tiny_network.num_nodes

    def test_sample_hosts_overdraw(self, tiny_network, rng):
        with pytest.raises(ValueError):
            tiny_network.sample_hosts(tiny_network.num_nodes + 1, rng, stub_only=False)

    def test_clock_attached(self, tiny_network):
        assert tiny_network.clock.now == 0.0
        tiny_network.clock.run_until(5.0)
        assert tiny_network.clock.now == 5.0
