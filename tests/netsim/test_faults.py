"""Fault injection: determinism, accounting, partitions, crashes."""

import numpy as np
import pytest

from repro.netsim import FaultInjector, FaultPlan, Partition, ProbeResult, ProbeTimeout


def fault_sequence(network, plan, seed, pairs):
    """Replay ``pairs`` through a fresh injector; record each outcome."""
    injector = network.arm_faults(plan, seed=seed)
    outcomes = []
    try:
        for u, v in pairs:
            try:
                outcomes.append(round(float(network.rtt(u, v)), 9))
            except ProbeTimeout as exc:
                outcomes.append(exc.reason)
    finally:
        network.disarm_faults()
    return outcomes, injector


class TestPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(probe_loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(message_loss_rate=-0.1)

    def test_spike_factor_and_deadline(self):
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(probe_timeout_ms=0.0)

    def test_partition_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            Partition(start=10.0, end=10.0, domains=(0,))

    def test_with_loss_sets_both_rates(self):
        plan = FaultPlan().with_loss(0.25)
        assert plan.probe_loss_rate == 0.25
        assert plan.message_loss_rate == 0.25


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self, tiny_network, rng):
        hosts = tiny_network.topology.stub_nodes()
        pairs = [
            tuple(int(h) for h in rng.choice(hosts, size=2, replace=False))
            for _ in range(200)
        ]
        plan = FaultPlan(probe_loss_rate=0.2, latency_spike_rate=0.1)
        first, inj_a = fault_sequence(tiny_network, plan, seed=5, pairs=pairs)
        second, inj_b = fault_sequence(tiny_network, plan, seed=5, pairs=pairs)
        assert first == second
        assert inj_a.injected == inj_b.injected
        assert "lost" in first  # the rate is high enough to manifest

    def test_different_seed_diverges(self, tiny_network, rng):
        hosts = tiny_network.topology.stub_nodes()
        pairs = [
            tuple(int(h) for h in rng.choice(hosts, size=2, replace=False))
            for _ in range(200)
        ]
        plan = FaultPlan(probe_loss_rate=0.2)
        first, _ = fault_sequence(tiny_network, plan, seed=5, pairs=pairs)
        second, _ = fault_sequence(tiny_network, plan, seed=6, pairs=pairs)
        assert first != second


class TestProbeFaults:
    def test_unarmed_network_unchanged(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        rtt = tiny_network.rtt(int(hosts[0]), int(hosts[1]))
        assert not isinstance(rtt, ProbeResult)
        assert tiny_network.faults is None

    def test_armed_probe_returns_probe_result(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        tiny_network.arm_faults(FaultPlan(), seed=1)
        rtt = tiny_network.rtt(int(hosts[0]), int(hosts[1]))
        assert isinstance(rtt, ProbeResult)
        assert rtt.rtt == pytest.approx(float(rtt))
        tiny_network.disarm_faults()
        plain = tiny_network.rtt(int(hosts[0]), int(hosts[1]))
        assert float(plain) == pytest.approx(float(rtt))

    def test_loss_charged_in_stats_and_tally(self, tiny_network, rng):
        hosts = tiny_network.topology.stub_nodes()
        injector = tiny_network.arm_faults(FaultPlan(probe_loss_rate=1.0), seed=2)
        with pytest.raises(ProbeTimeout):
            tiny_network.rtt(int(hosts[0]), int(hosts[1]))
        assert tiny_network.stats.get("fault_probe_lost") == 1
        assert injector.injected["fault_probe_lost"] == 1
        assert injector.injected_total() == 1
        tiny_network.disarm_faults()

    def test_spike_inflates_rtt(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        base = float(tiny_network.rtt(u, v))
        tiny_network.arm_faults(
            FaultPlan(latency_spike_rate=1.0, latency_spike_factor=3.0), seed=3
        )
        spiked = tiny_network.rtt(u, v)
        assert spiked.spiked
        assert float(spiked) == pytest.approx(3.0 * base)
        tiny_network.disarm_faults()

    def test_deadline_turns_spike_into_timeout(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        base = float(tiny_network.rtt(u, v))
        tiny_network.arm_faults(
            FaultPlan(
                latency_spike_rate=1.0,
                latency_spike_factor=4.0,
                probe_timeout_ms=2.0 * base,
            ),
            seed=4,
        )
        with pytest.raises(ProbeTimeout) as exc_info:
            tiny_network.rtt(u, v)
        assert exc_info.value.reason == "timeout"
        assert tiny_network.stats.get("fault_probe_timeout") == 1
        tiny_network.disarm_faults()

    def test_rtt_many_marks_lost_probes_nan(self, tiny_network):
        hosts = [int(h) for h in tiny_network.topology.stub_nodes()[:8]]
        tiny_network.arm_faults(FaultPlan(probe_loss_rate=0.5), seed=8)
        vector = tiny_network.rtt_many(hosts[0], hosts[1:])
        assert np.isnan(vector).any()
        assert (~np.isnan(vector)).any()
        tiny_network.disarm_faults()


class TestPartitions:
    def test_partition_severs_only_during_window(self, tiny_network):
        domains = tiny_network.topology.transit_domain
        stubs = tiny_network.topology.stub_nodes()
        inside = next(int(h) for h in stubs if domains[h] == 0)
        outside = next(int(h) for h in stubs if domains[h] != 0)
        plan = FaultPlan(
            partitions=(Partition(start=100.0, end=200.0, domains=(0,)),)
        )
        tiny_network.arm_faults(plan, seed=0)
        assert float(tiny_network.rtt(inside, outside)) > 0  # before the window
        tiny_network.clock.advance(150.0)
        with pytest.raises(ProbeTimeout) as exc_info:
            tiny_network.rtt(inside, outside)
        assert exc_info.value.reason == "fault_partition_drop"
        tiny_network.clock.advance(100.0)  # window over
        assert float(tiny_network.rtt(inside, outside)) > 0
        tiny_network.disarm_faults()

    def test_same_side_traffic_unaffected(self, tiny_network):
        domains = tiny_network.topology.transit_domain
        stubs = tiny_network.topology.stub_nodes()
        both = [int(h) for h in stubs if domains[h] == 0][:2]
        plan = FaultPlan(partitions=(Partition(start=0.0, end=1e9, domains=(0,)),))
        tiny_network.arm_faults(plan, seed=0)
        assert float(tiny_network.rtt(both[0], both[1])) >= 0
        tiny_network.disarm_faults()


class TestCrashStop:
    def test_crashed_host_answers_nothing_until_revived(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        injector = tiny_network.arm_faults(FaultPlan(), seed=0)
        injector.crash_host(v)
        with pytest.raises(ProbeTimeout) as exc_info:
            tiny_network.rtt(u, v)
        assert exc_info.value.reason == "fault_crash_drop"
        injector.revive_host(v)
        assert float(tiny_network.rtt(u, v)) > 0
        tiny_network.disarm_faults()

    def test_message_delivery_respects_crash(self, tiny_network):
        hosts = tiny_network.topology.stub_nodes()
        u, v = int(hosts[0]), int(hosts[1])
        injector = tiny_network.arm_faults(FaultPlan(), seed=0)
        assert injector.deliver(u, v)
        injector.crash_host(u)
        assert not injector.deliver(u, v)
        assert injector.injected["fault_crash_drop"] == 1
        tiny_network.disarm_faults()


class TestPartitionObservability:
    def test_active_partitions_tracks_the_window(self, tiny_network):
        plan = FaultPlan(
            partitions=(
                Partition(start=100.0, end=200.0, domains=(0,)),
                Partition(start=150.0, end=400.0, domains=(1,)),
            )
        )
        injector = tiny_network.arm_faults(plan, seed=0)
        try:
            assert injector.active_partitions() == []
            assert len(injector.active_partitions(now=160.0)) == 2
            assert [p.domains for p in injector.active_partitions(now=300.0)] == [(1,)]
            assert injector.active_partitions(now=400.0) == []  # end exclusive
        finally:
            tiny_network.disarm_faults()

    def test_severed_pairs_follow_active_windows(self, tiny_network):
        domains = tiny_network.topology.transit_domain
        stubs = tiny_network.topology.stub_nodes()
        inside = next(int(h) for h in stubs if domains[h] == 0)
        outside = next(int(h) for h in stubs if domains[h] != 0)
        same_side = next(
            int(h) for h in stubs if domains[h] == 0 and int(h) != inside
        )
        plan = FaultPlan(partitions=(Partition(start=10.0, end=20.0, domains=(0,)),))
        injector = tiny_network.arm_faults(plan, seed=0)
        try:
            assert not injector.severed(inside, outside, now=5.0)
            assert injector.severed(inside, outside, now=15.0)
            assert not injector.severed(inside, same_side, now=15.0)
            assert not injector.severed(inside, outside, now=25.0)
        finally:
            tiny_network.disarm_faults()

    def test_watch_partitions_fires_once_at_window_end(self, tiny_network):
        clock = tiny_network.clock
        plan = FaultPlan(
            partitions=(
                Partition(start=clock.now + 10.0, end=clock.now + 50.0, domains=(0,)),
                Partition(start=clock.now - 20.0, end=clock.now - 5.0, domains=(1,)),
            )
        )
        injector = tiny_network.arm_faults(plan, seed=0)
        healed = []
        try:
            armed = injector.watch_partitions(healed.append)
            assert armed == 1  # the already-over window is not watched
            clock.run_until(clock.now + 30.0)
            assert healed == []  # still inside the window
            clock.run_until(clock.now + 100.0)
            assert [p.domains for p in healed] == [(0,)]
        finally:
            tiny_network.disarm_faults()
