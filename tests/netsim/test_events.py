"""Event scheduler."""

import pytest

from repro.netsim import EventScheduler


class TestScheduling:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        sched = EventScheduler()
        fired = []
        for tag in "abc":
            sched.schedule(1.0, lambda t=tag: fired.append(t))
        sched.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_run_until_is_inclusive_and_advances_clock(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append(1))
        executed = sched.run_until(5.0)
        assert executed == 1 and fired == [1]
        assert sched.now == 5.0

    def test_future_events_stay_queued(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append(1))
        sched.run_until(4.9)
        assert fired == []
        assert sched.pending() == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        fired = []
        sched.schedule_at(12.0, lambda: fired.append(sched.now))
        sched.run_until(20.0)
        assert fired == [12.0]

    def test_callback_can_schedule_followup(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            sched.schedule(1.0, lambda: fired.append("second"))

        sched.schedule(1.0, first)
        sched.run_until(3.0)
        assert fired == ["first", "second"]

    def test_run_for(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(3.0, lambda: fired.append(2))
        sched.run_for(2.0)
        assert fired == [1]
        sched.run_for(2.0)
        assert fired == [1, 2]


class TestCancellation:
    def test_cancel_prevents_firing(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sched.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_firing_is_harmless(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda: None)
        sched.run_until(2.0)
        handle.cancel()


class TestRecurring:
    def test_fires_repeatedly(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_every(2.0, lambda: fired.append(sched.now))
        sched.run_until(7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_cancel_stops_series(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule_every(1.0, lambda: fired.append(sched.now))
        sched.run_until(2.5)
        handle.cancel()
        sched.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_every(0.0, lambda: None)

    def test_run_all_guards_against_runaway(self):
        sched = EventScheduler()
        sched.schedule_every(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            sched.run_all(max_events=10)
