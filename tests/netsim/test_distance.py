"""Distance oracle: correctness and caching."""

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.netsim import DistanceOracle, ManualLatencyModel


def line_graph(weights) -> csr_matrix:
    """Path graph 0-1-2-... with the given edge weights."""
    n = len(weights) + 1
    rows, cols, data = [], [], []
    for i, w in enumerate(weights):
        rows += [i, i + 1]
        cols += [i + 1, i]
        data += [w, w]
    return csr_matrix((data, (rows, cols)), shape=(n, n))


class TestExactness:
    def test_line_graph_distances(self):
        oracle = DistanceOracle(line_graph([1.0, 2.0, 3.0]))
        assert oracle.distance(0, 3) == pytest.approx(6.0)
        assert oracle.distance(1, 3) == pytest.approx(5.0)
        assert oracle.distance(2, 2) == 0.0

    def test_shortcut_wins(self):
        graph = line_graph([1.0, 1.0, 1.0]).tolil()
        graph[0, 3] = 2.0
        graph[3, 0] = 2.0
        oracle = DistanceOracle(csr_matrix(graph))
        assert oracle.distance(0, 3) == pytest.approx(2.0)

    def test_symmetry(self, tiny_topology, rng):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        for _ in range(20):
            u, v = rng.integers(0, tiny_topology.num_nodes, size=2)
            assert oracle.distance(int(u), int(v)) == pytest.approx(
                oracle.distance(int(v), int(u)), rel=1e-5
            )

    def test_triangle_inequality_on_shortest_paths(self, tiny_topology, rng):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        for _ in range(30):
            a, b, c = rng.integers(0, tiny_topology.num_nodes, size=3)
            ab = oracle.distance(int(a), int(b))
            bc = oracle.distance(int(b), int(c))
            ac = oracle.distance(int(a), int(c))
            assert ac <= ab + bc + 1e-6

    def test_self_distance_zero(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        assert oracle.distance(5, 5) == 0.0

    def test_row_matches_distance(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        row = oracle.row(3)
        assert row[10] == pytest.approx(oracle.distance(3, 10), rel=1e-6)
        assert len(row) == tiny_topology.num_nodes

    def test_rows_bulk_matches_single(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        bulk = oracle.rows([2, 4, 6])
        for i, src in enumerate([2, 4, 6]):
            assert np.allclose(bulk[i], oracle.row(src), rtol=1e-6)

    def test_pairwise(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        hosts = [1, 5, 9]
        mat = oracle.pairwise(hosts)
        assert mat.shape == (3, 3)
        assert np.allclose(np.diag(mat), 0.0)
        assert mat[0, 1] == pytest.approx(oracle.distance(1, 5), rel=1e-6)


class TestCache:
    def test_rows_are_cached_and_reused(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        row1 = oracle.row(3)
        row2 = oracle.row(3)
        assert row1 is row2

    def test_lru_eviction(self):
        oracle = DistanceOracle(line_graph([1.0] * 9), max_cached_rows=3)
        for src in range(5):
            oracle.row(src)
        assert oracle.cache_info()["rows"] == 3

    def test_cached_rows_are_read_only(self, tiny_topology):
        oracle = DistanceOracle.from_topology(tiny_topology, ManualLatencyModel())
        row = oracle.row(0)
        with pytest.raises(ValueError):
            row[0] = 42.0

    def test_is_connected_detects_disconnection(self):
        graph = csr_matrix((4, 4))
        assert not DistanceOracle(graph).is_connected()
