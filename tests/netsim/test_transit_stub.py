"""Structure of generated transit-stub topologies."""

import numpy as np
import pytest

from repro.netsim import (
    LinkClass,
    NodeKind,
    TransitStubConfig,
    generate_transit_stub,
)
from repro.netsim.distance import DistanceOracle
from repro.netsim.latency import ManualLatencyModel


@pytest.fixture(scope="module")
def topo():
    return generate_transit_stub(TransitStubConfig.tsk_large(0.3), seed=3)


class TestConfig:
    def test_total_nodes_formula(self):
        cfg = TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stubs_per_transit_node=4,
            nodes_per_stub=5,
        )
        assert cfg.total_nodes == 2 * 3 * (1 + 4 * 5)

    def test_tsk_large_full_scale_matches_paper(self):
        cfg = TransitStubConfig.tsk_large()
        assert cfg.transit_domains == 8
        # ~10k nodes, as in the paper
        assert 8_000 <= cfg.total_nodes <= 12_000

    def test_tsk_small_full_scale_matches_paper(self):
        cfg = TransitStubConfig.tsk_small()
        assert cfg.transit_domains == 2
        assert 8_000 <= cfg.total_nodes <= 12_000

    def test_tsk_small_has_denser_stubs_than_tsk_large(self):
        large = TransitStubConfig.tsk_large()
        small = TransitStubConfig.tsk_small()
        assert small.nodes_per_stub > large.nodes_per_stub
        assert small.transit_domains < large.transit_domains

    def test_scaling_shrinks(self):
        assert (
            TransitStubConfig.tsk_large(0.3).total_nodes
            < TransitStubConfig.tsk_large(1.0).total_nodes
        )


class TestGeneration:
    def test_node_count(self, topo):
        assert topo.num_nodes == topo.config.total_nodes

    def test_determinism(self, topo):
        again = generate_transit_stub(topo.config, seed=3)
        assert np.array_equal(again.edges, topo.edges)
        assert np.array_equal(again.edge_class, topo.edge_class)
        assert np.array_equal(again.coords, topo.coords)

    def test_seed_changes_topology(self, topo):
        other = generate_transit_stub(topo.config, seed=4)
        assert not np.array_equal(other.edges, topo.edges)

    def test_node_partition(self, topo):
        transit = topo.transit_nodes()
        stub = topo.stub_nodes()
        assert len(transit) + len(stub) == topo.num_nodes
        expected_transit = topo.config.transit_domains * topo.config.transit_nodes_per_domain
        assert len(transit) == expected_transit

    def test_stub_domain_ids(self, topo):
        assert (topo.stub_domain[topo.node_kind == NodeKind.TRANSIT] == -1).all()
        stub_ids = topo.stub_domain[topo.node_kind == NodeKind.STUB]
        assert (stub_ids >= 0).all()
        counts = np.bincount(stub_ids)
        assert (counts == topo.config.nodes_per_stub).all()

    def test_every_stub_domain_has_one_gateway_link(self, topo):
        gateway_links = topo.edges[topo.edge_class == LinkClass.TRANSIT_STUB]
        # each transit-stub link connects one transit and one stub node
        for a, b in gateway_links:
            kinds = {int(topo.node_kind[a]), int(topo.node_kind[b])}
            assert kinds == {int(NodeKind.TRANSIT), int(NodeKind.STUB)}
        num_stub_domains = topo.stub_domain.max() + 1
        assert len(gateway_links) == num_stub_domains

    def test_edge_classes_consistent(self, topo):
        for (a, b), cls in zip(topo.edges, topo.edge_class):
            ka, kb = topo.node_kind[a], topo.node_kind[b]
            if cls == LinkClass.INTRA_TRANSIT:
                assert ka == kb == NodeKind.TRANSIT
                assert topo.transit_domain[a] == topo.transit_domain[b]
            elif cls == LinkClass.CROSS_TRANSIT:
                assert ka == kb == NodeKind.TRANSIT
                assert topo.transit_domain[a] != topo.transit_domain[b]
            elif cls == LinkClass.INTRA_STUB:
                assert ka == kb == NodeKind.STUB
                assert topo.stub_domain[a] == topo.stub_domain[b]

    def test_no_duplicate_edges(self, topo):
        key = topo.edges.min(axis=1) * topo.num_nodes + topo.edges.max(axis=1)
        assert len(np.unique(key)) == len(key)

    def test_no_self_loops(self, topo):
        assert (topo.edges[:, 0] != topo.edges[:, 1]).all()

    def test_connected(self, topo):
        oracle = DistanceOracle.from_topology(topo, ManualLatencyModel())
        assert oracle.is_connected()

    def test_degrees_positive(self, topo):
        assert (topo.degree() > 0).all()

    def test_classify_edges_covers_everything(self, topo):
        assert sum(topo.classify_edges().values()) == topo.num_edges


class TestExtras:
    def test_multihoming_adds_transit_stub_links(self):
        base = TransitStubConfig.tsk_large(0.3)
        multi = TransitStubConfig(
            transit_domains=base.transit_domains,
            transit_nodes_per_domain=base.transit_nodes_per_domain,
            stubs_per_transit_node=base.stubs_per_transit_node,
            nodes_per_stub=base.nodes_per_stub,
            multihome_fraction=0.5,
        )
        t_base = generate_transit_stub(base, seed=5)
        t_multi = generate_transit_stub(multi, seed=5)
        count = lambda t: int((t.edge_class == LinkClass.TRANSIT_STUB).sum())
        assert count(t_multi) > count(t_base)

    def test_cross_stub_links(self):
        cfg = TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stubs_per_transit_node=2,
            nodes_per_stub=4,
            cross_stub_links=5,
        )
        topo = generate_transit_stub(cfg, seed=5)
        assert (topo.edge_class == LinkClass.CROSS_STUB).sum() > 0

    def test_single_domain_topology(self):
        cfg = TransitStubConfig(
            transit_domains=1,
            transit_nodes_per_domain=3,
            stubs_per_transit_node=2,
            nodes_per_stub=3,
        )
        topo = generate_transit_stub(cfg, seed=1)
        assert (topo.edge_class != LinkClass.CROSS_TRANSIT).all()
        oracle = DistanceOracle.from_topology(topo, ManualLatencyModel())
        assert oracle.is_connected()
