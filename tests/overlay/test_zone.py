"""Zone arithmetic: splits, siblings, adjacency, cells."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.zone import (
    Zone,
    cell_center,
    cell_zone,
    parent_cell,
    point_cell,
    sibling_cells,
    torus_distance,
)


def random_zone(draw, dims: int, max_depth: int = 10) -> Zone:
    """Hypothesis helper: a zone reached by a random split path."""
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    zone = Zone.root(dims)
    for _ in range(depth):
        lower, upper = zone.split()
        zone = lower if draw(st.booleans()) else upper
    return zone


@st.composite
def zones(draw, dims=2, max_depth=10):
    return random_zone(draw, dims, max_depth)


class TestBasics:
    def test_root(self):
        root = Zone.root(3)
        assert root.volume() == 1.0
        assert root.depth == 0
        assert root.contains((0.0, 0.5, 0.999))
        assert not root.contains((1.0, 0.5, 0.5))

    def test_root_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Zone.root(0)

    def test_split_dim_cycles(self):
        zone = Zone.root(2)
        assert zone.split_dim == 0
        child = zone.split()[0]
        assert child.split_dim == 1
        grandchild = child.split()[0]
        assert grandchild.split_dim == 0

    def test_split_halves_volume(self):
        lower, upper = Zone.root(2).split()
        assert lower.volume() == pytest.approx(0.5)
        assert upper.volume() == pytest.approx(0.5)
        assert lower.depth == upper.depth == 1

    def test_center(self):
        assert Zone.root(2).center() == (0.5, 0.5)


class TestSiblings:
    def test_split_children_are_siblings(self):
        lower, upper = Zone.root(2).split()
        assert lower.is_sibling(upper)
        assert upper.is_sibling(lower)

    def test_merge_restores_parent(self):
        parent = Zone.root(2).split()[0].split()[1]
        lower, upper = parent.split()
        assert lower.merge(upper) == parent
        assert upper.merge(lower) == parent

    def test_root_has_no_sibling(self):
        assert not Zone.root(2).is_sibling(Zone.root(2))

    def test_cousins_are_not_siblings(self):
        """Abutting same-shape zones from different parents must not merge."""
        lower, upper = Zone.root(1).split()
        # depth-2 zones: [0,.25) [.25,.5) [.5,.75) [.75,1)
        q = [lower.split()[0], lower.split()[1], upper.split()[0], upper.split()[1]]
        assert q[0].is_sibling(q[1])
        assert q[2].is_sibling(q[3])
        assert not q[1].is_sibling(q[2])  # the cousin pair
        with pytest.raises(ValueError):
            q[1].merge(q[2])

    def test_merge_rejects_non_siblings(self):
        zone = Zone.root(2)
        with pytest.raises(ValueError):
            zone.merge(zone)


class TestNeighbors:
    def test_halves_are_neighbors(self):
        lower, upper = Zone.root(2).split()
        assert lower.is_neighbor(upper)

    def test_torus_wraparound(self):
        # quarters along dim 0 at depth 2 (2d space, dims split 0 then 1)
        lower, upper = Zone.root(1).split()
        first = lower.split()[0]  # [0, .25)
        last = upper.split()[1]  # [.75, 1)
        assert first.is_neighbor(last, torus=True)
        assert not first.is_neighbor(last, torus=False)

    def test_corner_contact_is_not_neighbor(self):
        a = Zone(lo=(0.0, 0.0), hi=(0.5, 0.5), depth=2)
        b = Zone(lo=(0.5, 0.5), hi=(1.0, 1.0), depth=2)
        assert not a.is_neighbor(b, torus=False)

    def test_same_zone_not_neighbor(self):
        zone = Zone.root(2)
        assert not zone.is_neighbor(zone)


class TestDistance:
    def test_zero_inside(self):
        zone = Zone(lo=(0.0, 0.0), hi=(0.5, 0.5), depth=2)
        assert zone.distance_to_point((0.25, 0.25)) == 0.0

    def test_axis_distance(self):
        zone = Zone(lo=(0.0, 0.0), hi=(0.25, 1.0), depth=2)
        assert zone.distance_to_point((0.5, 0.5), torus=False) == pytest.approx(0.25)

    def test_torus_shortcut(self):
        zone = Zone(lo=(0.0, 0.0), hi=(0.25, 1.0), depth=2)
        # going left across the wrap is shorter from x=0.9
        assert zone.distance_to_point((0.9, 0.5), torus=True) == pytest.approx(0.1)
        assert zone.distance_to_point((0.9, 0.5), torus=False) == pytest.approx(0.65)

    def test_torus_point_distance(self):
        assert torus_distance((0.1, 0.5), (0.9, 0.5)) == pytest.approx(0.2)
        assert torus_distance((0.2, 0.2), (0.2, 0.2)) == 0.0


class TestCells:
    def test_cell_of_root(self):
        assert Zone.root(2).cell(0) == (0, 0)

    def test_max_level(self):
        zone = Zone.root(2)
        for expected_level, splits in ((0, 0), (0, 1), (1, 2), (1, 3), (2, 4)):
            z = zone
            for _ in range(splits):
                z = z.split()[0]
            assert z.max_level == expected_level

    def test_cell_beyond_max_level_rejected(self):
        zone = Zone.root(2).split()[0]  # depth 1, spans two level-1 cells
        with pytest.raises(ValueError):
            zone.cell(1)

    def test_point_cell_matches_zone_cell(self):
        zone = Zone.root(2).split()[1].split()[1].split()[0].split()[1]
        level = zone.max_level
        assert point_cell(zone.center(), level) == zone.cell(level)

    def test_point_cell_clamps_at_one(self):
        assert point_cell((1.0, 1.0), 2) == (3, 3)

    def test_cell_zone_round_trip(self):
        zone = cell_zone((2, 1), 2)
        assert zone.lo == (0.5, 0.25)
        assert zone.hi == (0.75, 0.5)
        assert zone.cell(2) == (2, 1)

    def test_cell_center(self):
        assert cell_center((0, 0), 1) == (0.25, 0.25)

    def test_parent_cell(self):
        assert parent_cell((5, 3)) == (2, 1)

    def test_sibling_cells(self):
        sibs = set(sibling_cells((2, 3)))
        assert sibs == {(3, 3), (2, 2), (3, 2)}
        assert (2, 3) not in sibs


class TestProperties:
    @given(zones(dims=2))
    @settings(max_examples=80, deadline=None)
    def test_split_partitions_zone(self, zone):
        lower, upper = zone.split()
        assert lower.volume() + upper.volume() == pytest.approx(zone.volume())
        center_lower = lower.center()
        center_upper = upper.center()
        assert zone.contains(center_lower) and zone.contains(center_upper)
        assert not lower.contains(center_upper)
        assert not upper.contains(center_lower)

    @given(zones(dims=2))
    @settings(max_examples=80, deadline=None)
    def test_split_then_merge_round_trip(self, zone):
        lower, upper = zone.split()
        assert lower.merge(upper) == zone

    @given(zones(dims=3, max_depth=12))
    @settings(max_examples=60, deadline=None)
    def test_cells_nest(self, zone):
        for level in range(1, zone.max_level + 1):
            child = zone.cell(level)
            parent = zone.cell(level - 1)
            assert parent_cell(child) == parent

    @given(zones(dims=2), st.tuples(st.floats(0, 0.999), st.floats(0, 0.999)))
    @settings(max_examples=80, deadline=None)
    def test_distance_zero_iff_contains_without_torus(self, zone, point):
        # Only without wraparound: on the torus a point at the wrap
        # boundary touches the zone's closure at distance 0 even though
        # half-open containment excludes it.
        dist = zone.distance_to_point(point, torus=False)
        if zone.contains(point):
            assert dist == 0.0
        else:
            on_boundary = any(
                x == hi for x, hi in zip(point, zone.hi)
            )
            assert dist > 0.0 or on_boundary

    @given(zones(dims=2), st.tuples(st.floats(0, 0.999), st.floats(0, 0.999)))
    @settings(max_examples=80, deadline=None)
    def test_torus_distance_never_exceeds_plain(self, zone, point):
        assert (
            zone.distance_to_point(point, torus=True)
            <= zone.distance_to_point(point, torus=False) + 1e-12
        )

    @given(zones(dims=2))
    @settings(max_examples=60, deadline=None)
    def test_zone_is_inside_its_cells(self, zone):
        for level in range(zone.max_level + 1):
            cell = cell_zone(zone.cell(level), level)
            assert cell.contains(zone.center())
            assert all(cl <= zl for cl, zl in zip(cell.lo, zone.lo))
            assert all(ch >= zh for ch, zh in zip(cell.hi, zone.hi))
