"""eCAN edge cases beyond the main suite."""

import numpy as np
import pytest

from repro.overlay import EcanOverlay
from repro.overlay.ecan import MAX_LEVEL


class TestBootstrap:
    def test_single_node_routes_to_itself(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(1))
        ecan.join(0, host=0)
        result = ecan.route(0, (0.7, 0.7))
        assert result.owner == 0
        assert result.hops == 0

    def test_two_node_overlay(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(1))
        ecan.join(0, host=0)
        ecan.join(1, host=1)
        for point in ((0.1, 0.1), (0.9, 0.9)):
            result = ecan.route(ecan.can.random_node(), point)
            assert result.success

    def test_rejoining_same_id_after_leave(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(1))
        for i in range(8):
            ecan.join(i, host=i)
        ecan.leave(3)
        ecan.join(3, host=33)
        assert ecan.can.nodes[3].host == 33
        ecan.can.check_invariants()


class TestTablesEdge:
    def test_max_level_caps_indexing(self):
        assert MAX_LEVEL >= 16  # sanity: cap far above realistic depths

    def test_refresh_entry_on_missing_candidates_returns_none_or_member(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(2))
        ecan.join(0, host=0)
        ecan.join(1, host=1)
        node = ecan.can.nodes[0]
        if node.zone.max_level >= 1:
            cell = node.zone.cell(1)
            entry = ecan.refresh_entry(0, 1, cell)
            assert entry is None or entry in ecan.can.nodes

    def test_three_dim_table_has_seven_siblings(self):
        ecan = EcanOverlay(dims=3, rng=np.random.default_rng(3))
        for i in range(64):
            ecan.join(i, host=i)
        for node_id in ecan.can.nodes:
            ecan.build_table(node_id)
        row_sizes = {
            len(row)
            for table in ecan._tables.values()
            for row in table.values()
        }
        assert max(row_sizes, default=0) == 7  # 2^3 - 1

    def test_fallback_rng_does_not_disturb_join_points(self):
        """Two overlays differing only in policy-fallback usage grow the
        same zone structure (the rng-isolation guarantee)."""
        from repro.overlay.ecan import NeighborPolicy

        class DecliningPolicy(NeighborPolicy):
            name = "declines"

            def select(self, ecan, node_id, level, cell, candidates):
                return None  # force the fallback path every time

        a = EcanOverlay(dims=2, rng=np.random.default_rng(7))
        b = EcanOverlay(dims=2, rng=np.random.default_rng(7), policy=DecliningPolicy())
        for i in range(48):
            a.join(i, host=i)
            b.join(i, host=i)
        zones_a = sorted(str(n.zone) for n in a.can.nodes.values())
        zones_b = sorted(str(n.zone) for n in b.can.nodes.values())
        assert zones_a == zones_b


class TestRoutingEdge:
    def test_route_to_exact_boundary_point(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(4))
        for i in range(32):
            ecan.join(i, host=i)
        for point in ((0.5, 0.5), (0.0, 0.0), (0.25, 0.75)):
            result = ecan.route(ecan.can.random_node(), point)
            assert result.success
            assert ecan.can.nodes[result.owner].contains(point)

    def test_hop_budget_failure_reported_not_raised(self):
        ecan = EcanOverlay(dims=2, rng=np.random.default_rng(5))
        for i in range(32):
            ecan.join(i, host=i)
        result = ecan.route(ecan.can.random_node(), (0.9, 0.9), max_hops=0)
        if not result.success:
            assert result.owner is None
