"""RouteResult metrics."""

import numpy as np
import pytest

from repro.overlay import CanOverlay, RouteResult


@pytest.fixture
def can_with_hosts(tiny_network, rng):
    hosts = tiny_network.sample_hosts(20, rng)
    can = CanOverlay(dims=2, rng=np.random.default_rng(3))
    for i, host in enumerate(hosts):
        can.join(i, int(host))
    return can


class TestRouteResult:
    def test_hops(self):
        assert RouteResult(path=[1, 2, 3]).hops == 2
        assert RouteResult(path=[1]).hops == 0

    def test_host_path(self, can_with_hosts):
        result = RouteResult(path=[0, 1, 2])
        hosts = result.host_path(can_with_hosts)
        assert hosts == [can_with_hosts.nodes[i].host for i in (0, 1, 2)]

    def test_latency_accumulates(self, can_with_hosts, tiny_network):
        result = RouteResult(path=[0, 1, 2])
        expected = tiny_network.path_latency(result.host_path(can_with_hosts))
        assert result.latency(can_with_hosts, tiny_network) == pytest.approx(expected)

    def test_real_route_latency_at_least_direct(self, can_with_hosts, tiny_network, rng):
        """Overlay path latency can never beat the shortest path."""
        for _ in range(20):
            point = tuple(rng.random(2))
            start = can_with_hosts.random_node()
            result = can_with_hosts.route(start, point)
            assert result.success
            src = can_with_hosts.nodes[start].host
            dst = can_with_hosts.nodes[result.owner].host
            path_latency = result.latency(can_with_hosts, tiny_network)
            assert path_latency >= tiny_network.latency(src, dst) - 1e-9

    def test_default_flags(self):
        result = RouteResult()
        assert result.success
        assert result.owner is None
        assert result.repairs == 0
