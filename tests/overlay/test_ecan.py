"""eCAN: high-order zones, tables, policies and routing."""

import numpy as np
import pytest

from repro.netsim.network import MessageStats
from repro.overlay import (
    ClosestNeighborPolicy,
    EcanOverlay,
    RandomNeighborPolicy,
)
from repro.overlay.zone import cell_zone, point_cell


def build_ecan(n: int, seed: int = 0, stats=None, policy=None, dims: int = 2):
    ecan = EcanOverlay(
        dims=dims, rng=np.random.default_rng(seed), stats=stats, policy=policy
    )
    for i in range(n):
        ecan.join(i, host=1000 + i)
    return ecan


class TestMembership:
    def test_members_index_is_containment(self, rng):
        ecan = build_ecan(48)
        for level, buckets in ecan._members.items():
            for cell, node_ids in buckets.items():
                box = cell_zone(cell, level)
                for node_id in node_ids:
                    node = ecan.can.nodes[node_id]
                    assert any(
                        box.contains(z.center()) and z.max_level >= level
                        for z in node.zones
                    )

    def test_members_returns_owner_when_cell_empty(self):
        # 2 nodes: level-2 cells have no contained zones yet
        ecan = build_ecan(2)
        members = ecan.members(2, (0, 0))
        assert len(members) == 1
        assert members[0] in ecan.can.nodes

    def test_members_excludes_requested_node(self):
        ecan = build_ecan(40)
        node = ecan.can.nodes[5]
        level = node.zone.max_level
        if level >= 1:
            cell = node.zone.cell(level)
            assert 5 not in ecan.members(level, cell, exclude=5)

    def test_leave_cleans_index(self):
        ecan = build_ecan(30)
        ecan.leave(3)
        for buckets in ecan._members.values():
            for node_ids in buckets.values():
                assert 3 not in node_ids
        assert 3 not in ecan._tables


class TestTables:
    def test_table_covers_all_levels_and_siblings(self):
        # tables fill lazily as zones deepen; an explicit rebuild must
        # produce full coverage of every level and sibling cell
        ecan = build_ecan(64)
        for node_id in ecan.can.nodes:
            ecan.build_table(node_id)
        for node_id, node in ecan.can.nodes.items():
            table = ecan.table_of(node_id)
            assert set(table) == set(range(1, node.zone.max_level + 1))
            for level, row in table.items():
                # 2^d - 1 = 3 sibling cells in 2 dimensions
                assert len(row) == 3
                for cell, entry in row.items():
                    assert entry in ecan.can.nodes
                    assert entry != node_id

    def test_entry_valid_checks_overlap(self):
        ecan = build_ecan(32)
        node_id = next(iter(ecan.can.nodes))
        ecan.build_table(node_id)
        table = ecan.table_of(node_id)
        level, row = next(iter(table.items()))
        cell, entry = next(iter(row.items()))
        assert ecan._entry_valid(entry, level, cell)
        assert not ecan._entry_valid(99999, level, cell)

    def test_table_entry_repairs_dead_entry(self):
        stats = MessageStats()
        ecan = build_ecan(48, stats=stats)
        # find a node whose table references some victim
        victim = None
        for node_id, table in ecan._tables.items():
            for level, row in table.items():
                for cell, entry in row.items():
                    victim = (node_id, level, cell, entry)
                    break
                if victim:
                    break
            if victim:
                break
        node_id, level, cell, entry = victim
        ecan.leave(entry)
        new_entry, repaired = ecan.table_entry(node_id, level, cell)
        assert repaired
        assert new_entry is None or new_entry in ecan.can.nodes
        assert stats.get("table_repair") >= 1

    def test_refresh_entry_changes_table(self):
        ecan = build_ecan(48, seed=3)
        node_id = 10
        table = ecan.table_of(node_id)
        level, row = next(iter(table.items()))
        cell = next(iter(row))
        entry = ecan.refresh_entry(node_id, level, cell)
        assert ecan.table_of(node_id)[level][cell] == entry


class TestPolicies:
    def test_closest_policy_picks_minimum_latency(self, tiny_network, rng):
        hosts = tiny_network.sample_hosts(40, rng)
        ecan = EcanOverlay(
            dims=2,
            rng=np.random.default_rng(1),
            policy=ClosestNeighborPolicy(tiny_network),
        )
        for i, host in enumerate(hosts):
            ecan.join(i, int(host))
        # rebuild so every entry reflects the final candidate sets,
        # then verify a sampled entry is indeed the closest candidate
        for node_id in ecan.can.nodes:
            ecan.build_table(node_id)
        for node_id in list(ecan.can.nodes)[:10]:
            node = ecan.can.nodes[node_id]
            table = ecan.table_of(node_id)
            for level, row in table.items():
                for cell, entry in row.items():
                    candidates = ecan.members(level, cell, exclude=node_id)
                    if entry not in candidates:
                        continue  # entry may predate later joins
                    best = min(
                        candidates,
                        key=lambda c: (
                            tiny_network.latency(node.host, ecan.can.nodes[c].host),
                            c,
                        ),
                    )
                    entry_latency = tiny_network.latency(
                        node.host, ecan.can.nodes[entry].host
                    )
                    best_latency = tiny_network.latency(
                        node.host, ecan.can.nodes[best].host
                    )
                    assert entry_latency <= best_latency + 1e-9 or entry == best

    def test_random_policy_is_deterministic_per_seed(self):
        a = build_ecan(32, seed=5, policy=RandomNeighborPolicy(np.random.default_rng(9)))
        b = build_ecan(32, seed=5, policy=RandomNeighborPolicy(np.random.default_rng(9)))
        assert a._tables == b._tables


class TestRouting:
    def test_route_reaches_owner(self, rng):
        ecan = build_ecan(80, seed=2)
        for _ in range(60):
            point = tuple(rng.random(2))
            result = ecan.route(ecan.can.random_node(), point)
            assert result.success
            assert ecan.can.nodes[result.owner].contains(point)

    def test_hop_breakdown_sums(self, rng):
        ecan = build_ecan(80, seed=2)
        result = ecan.route(ecan.can.random_node(), tuple(rng.random(2)))
        assert result.expressway_hops + result.can_hops == result.hops

    def test_ecan_beats_can_on_hops(self, rng):
        from repro.overlay import CanOverlay

        n = 400
        ecan = build_ecan(n, seed=4)
        can = CanOverlay(dims=2, rng=np.random.default_rng(4))
        for i in range(n):
            can.join(i, host=i)
        points = [tuple(rng.random(2)) for _ in range(80)]
        ecan_hops = np.mean([ecan.route(ecan.can.random_node(), p).hops for p in points])
        can_hops = np.mean([can.route(can.random_node(), p).hops for p in points])
        assert ecan_hops < can_hops

    def test_logarithmic_scaling(self, rng):
        means = {}
        for n in (64, 512):
            ecan = build_ecan(n, seed=6)
            samples = [
                ecan.route(ecan.can.random_node(), tuple(rng.random(2))).hops
                for _ in range(60)
            ]
            means[n] = np.mean(samples)
        # 8x more nodes should cost ~log(8)/log(4) extra prefix hops, far
        # less than the sqrt growth of plain CAN (which would be ~2.8x)
        assert means[512] < 2.2 * means[64]

    def test_routing_after_heavy_churn(self, rng):
        ecan = build_ecan(100, seed=8)
        for i in range(0, 100, 3):
            ecan.leave(i)
        for j in range(200, 230):
            ecan.join(j, host=j)
        ecan.can.check_invariants()
        for _ in range(50):
            result = ecan.route(ecan.can.random_node(), tuple(rng.random(2)))
            assert result.success

    def test_first_divergence_is_used(self, rng):
        """Expressway hops land inside the target's differing cell."""
        ecan = build_ecan(128, seed=9)
        point = tuple(rng.random(2))
        start = ecan.can.random_node()
        result = ecan.route(start, point)
        if result.expressway_hops:
            # after the first expressway hop, the prefix agreement with
            # the target must be at least as long as the start's
            first_hop = result.path[1]
            start_zone = ecan.can.nodes[start].zone

            def agreement(node_id):
                zone = ecan.can.nodes[node_id].zone
                level = 0
                for l in range(1, zone.max_level + 1):
                    if zone.cell(l) != point_cell(point, l):
                        break
                    level = l
                return level

            if first_hop in ecan.can.nodes and start in ecan.can.nodes:
                assert agreement(first_hop) >= agreement(start)
