"""CAN overlay: join/leave invariants and greedy routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.network import MessageStats
from repro.overlay import CanOverlay


def build_can(n: int, dims: int = 2, seed: int = 0, stats=None) -> CanOverlay:
    can = CanOverlay(dims=dims, rng=np.random.default_rng(seed), stats=stats)
    for i in range(n):
        can.join(i, host=1000 + i)
    return can


class TestJoin:
    def test_first_node_owns_everything(self):
        can = build_can(1)
        assert can.total_volume() == pytest.approx(1.0)
        assert can.nodes[0].zone.depth == 0
        assert can.nodes[0].neighbors == set()

    def test_second_join_splits(self):
        can = build_can(2)
        can.check_invariants()
        assert can.nodes[0].neighbors == {1}
        assert can.nodes[1].neighbors == {0}

    def test_duplicate_id_rejected(self):
        can = build_can(2)
        with pytest.raises(ValueError):
            can.join(0, host=1)

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_invariants_after_many_joins(self, dims):
        can = build_can(60, dims=dims, seed=dims)
        can.check_invariants()

    def test_join_at_specific_point(self):
        can = build_can(1)
        can.join(1, host=5, point=(0.9, 0.9))
        owner = can.owner_of_point((0.9, 0.9))
        assert owner == 1

    def test_volume_conserved(self):
        can = build_can(47)
        assert can.total_volume() == pytest.approx(1.0)

    def test_join_charges_route_messages(self):
        stats = MessageStats()
        build_can(30, stats=stats)
        assert stats.get("join_route") > 0
        assert stats.get("join_update") > 0


class TestOwnerLookup:
    def test_every_point_has_owner(self, rng):
        can = build_can(40)
        for _ in range(100):
            point = tuple(rng.random(2))
            owner = can.owner_of_point(point)
            assert can.nodes[owner].contains(point)

    def test_empty_overlay_raises(self):
        can = CanOverlay(dims=2)
        with pytest.raises((KeyError, RuntimeError)):
            can.owner_of_point((0.5, 0.5))


class TestRouting:
    def test_route_reaches_owner(self, rng):
        can = build_can(50)
        for _ in range(50):
            point = tuple(rng.random(2))
            start = can.random_node()
            result = can.route(start, point)
            assert result.success
            assert result.owner == can.owner_of_point(point)
            assert result.path[0] == start

    def test_route_to_own_zone_is_zero_hops(self):
        can = build_can(10)
        node = can.nodes[3]
        result = can.route(3, node.zone.center())
        assert result.hops == 0
        assert result.owner == 3

    def test_path_is_neighbor_connected(self, rng):
        can = build_can(64, seed=5)
        point = tuple(rng.random(2))
        result = can.route(can.random_node(), point)
        for a, b in zip(result.path, result.path[1:]):
            assert b in can.nodes[a].neighbors

    def test_unknown_start_raises(self):
        can = build_can(5)
        with pytest.raises(KeyError):
            can.route(99, (0.5, 0.5))

    def test_hops_grow_with_n(self, rng):
        hops = {}
        for n in (16, 256):
            can = build_can(n, seed=2)
            samples = [
                can.route(can.random_node(), tuple(rng.random(2))).hops
                for _ in range(60)
            ]
            hops[n] = np.mean(samples)
        assert hops[256] > hops[16]

    def test_higher_dims_route_shorter(self, rng):
        means = {}
        for dims in (2, 4):
            can = build_can(256, dims=dims, seed=3)
            samples = [
                can.route(can.random_node(), tuple(rng.random(dims))).hops
                for _ in range(60)
            ]
            means[dims] = np.mean(samples)
        assert means[4] < means[2]

    def test_route_message_accounting(self):
        stats = MessageStats()
        can = build_can(32, stats=stats)
        before = stats.snapshot()
        result = can.route(can.random_node(), (0.123, 0.456), category="custom_route")
        assert stats.delta(before).get("custom_route", 0) == result.hops


class TestLeave:
    def test_leave_returns_volume(self):
        can = build_can(20)
        can.leave(7)
        assert 7 not in can.nodes
        can.check_invariants()

    def test_leave_unknown_raises(self):
        can = build_can(3)
        with pytest.raises(KeyError):
            can.leave(42)

    def test_leave_last_node(self):
        can = build_can(1)
        can.leave(0)
        assert len(can) == 0

    def test_sibling_merge_restores_single_zone(self):
        can = build_can(1)
        can.join(1, host=5, point=(0.9, 0.5))
        can.leave(1)
        assert len(can.nodes[0].zones) == 1
        assert can.nodes[0].zone.depth == 0

    def test_leave_many_keeps_invariants(self, rng):
        can = build_can(60, seed=9)
        victims = rng.permutation(60)[:40]
        for v in victims:
            can.leave(int(v))
        can.check_invariants()
        assert len(can) == 20

    def test_routing_after_churn(self, rng):
        can = build_can(60, seed=11)
        for v in range(0, 60, 2):
            can.leave(v)
        for _ in range(40):
            result = can.route(can.random_node(), tuple(rng.random(2)))
            assert result.success


class TestChurnProperty:
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=5, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_random_join_leave_sequence_preserves_invariants(self, ops):
        """Any join/leave interleaving keeps the CAN consistent.

        op 0/1 = join (two weights), 2 = leave a random member.
        """
        can = CanOverlay(dims=2, rng=np.random.default_rng(42))
        next_id = 0
        rng = np.random.default_rng(7)
        for op in ops:
            if op < 2 or len(can) == 0:
                can.join(next_id, host=next_id)
                next_id += 1
            else:
                members = list(can.nodes)
                can.leave(members[int(rng.integers(0, len(members)))])
        if len(can):
            can.check_invariants()
            point = tuple(rng.random(2))
            assert can.route(can.random_node(), point).success


class TestCrashTakeover:
    def test_takeover_dead_absorbs_and_charges(self):
        stats = MessageStats()
        can = build_can(16, stats=stats)
        victim = 5
        takers = can.takeover_dead(victim)
        assert victim not in can.nodes
        assert takers and victim not in takers
        assert can.total_volume() == pytest.approx(1.0)
        can.check_invariants()
        assert stats.get("crash_takeover") > 0

    def test_dead_members_never_absorb_each_other(self):
        can = build_can(16)
        victim = 3
        dead = set(can.nodes[victim].neighbors)
        takers = can.takeover_dead(victim, dead=dead)
        assert takers.isdisjoint(dead | {victim})
        can.check_invariants()

    def test_fallback_to_global_survivor_when_all_neighbors_dead(self):
        stats = MessageStats()
        can = build_can(24, stats=stats)
        victim = 7
        # every neighbor (and neighbor's neighbor, to kill siblings too)
        # is a corpse: the sibling/neighbor search must come up empty
        dead = set(can.nodes[victim].neighbors)
        for d in list(dead):
            dead |= set(can.nodes[d].neighbors)
        dead.discard(victim)
        survivors = set(can.nodes) - dead - {victim}
        assert survivors, "scenario needs at least one survivor"
        takers = can.takeover_dead(victim, dead=dead)
        assert takers <= survivors
        assert stats.get("takeover_fallback") > 0
        assert can.total_volume() == pytest.approx(1.0)
        can.check_invariants()

    def test_no_survivor_at_all_raises(self):
        can = build_can(4)
        with pytest.raises(RuntimeError):
            can.takeover_dead(0, dead={1, 2, 3})
