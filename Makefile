# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-medium bench-paper report examples ci clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-medium:
	REPRO_SCALE=medium $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report

# What the GitHub workflow runs: the full test suite plus quick-scale
# smoke runs of the resilience benches (timing disabled -- the assertions
# on success rate / false purges are the point).
ci:
	$(PYTHON) -m pytest tests/ -q
	$(PYTHON) -m pytest benchmarks/bench_ext_failure_resilience.py \
		benchmarks/bench_ext_fault_injection.py -q --benchmark-disable

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; echo; done

clean:
	rm -rf benchmarks/out .pytest_cache build *.egg-info src/*.egg-info
