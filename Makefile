# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-medium bench-paper bench-smoke chaos-smoke runtime-smoke shard-smoke soak-smoke overload-smoke mgmt-smoke report examples ci clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-medium:
	REPRO_SCALE=medium $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report

# One core + one ext bench plus the hot-path scale bench at quick
# scale, then validate the JSON records against benchmarks/schema.json
# and refresh the repo-root BENCH_core.json / BENCH_ext.json
# perf-trajectory files.
bench-smoke:
	REPRO_SCALE=quick $(PYTHON) -m pytest \
		benchmarks/bench_fig05_hybrid_small.py \
		benchmarks/bench_ext_fault_injection.py \
		benchmarks/bench_perf_scale.py \
		benchmarks/bench_perf_runtime.py \
		benchmarks/bench_perf_overload.py -q --benchmark-disable
	$(PYTHON) scripts/bench_report.py

# The live-runtime acceptance scenario: boot a 64-node cluster over
# the loopback transport (joins travel as wire frames), drive 1000
# open-loop lookups, and assert bit-identical owners/endpoints against
# an independently built synchronous simulator -- once per payload
# encoding (JSON and packed), pinning the struct fast path to the
# JSON semantics.
runtime-smoke:
	$(PYTHON) scripts/runtime_smoke.py

# The sharded-runtime acceptance scenario: 64 nodes across 4 worker
# processes (one event loop each, cross-shard frames over TCP peering
# sockets), held to the identical sim-parity bar as the single-process
# runtime, plus a closed-loop throughput sanity gate and a check that
# cross-shard traffic actually flowed.  Leaves
# benchmarks/out/shard/shard_smoke.json.
shard-smoke:
	$(PYTHON) scripts/shard_smoke.py --json benchmarks/out/shard/shard_smoke.json

# The self-stabilization gate: CI-sized churn soak in both execution
# modes.  A sim overlay and a live loopback cluster take continuous
# join/leave/crash/partition churn plus adversarial state corruption
# (scrambled tables, stale replicas, poisoned owner index) and must
# converge back to check_invariants-clean within the round budget,
# with zero false kills/purges and measured availability through a
# kill-33% event.  Leaves benchmarks/out/soak/churn_soak.json.
soak-smoke:
	$(PYTHON) scripts/churn_soak.py --smoke

# The overload-protection gate: a small loopback cluster with tiny
# data-lane mailboxes takes 2x closed-loop overload while the SWIM
# detector ticks against the saturated nodes.  Asserts shed > 0 (the
# protection engaged), zero false crash verdicts, and a goodput floor
# of half the measured capacity.  Leaves
# benchmarks/out/overload/overload_smoke.json.
overload-smoke:
	$(PYTHON) scripts/overload_smoke.py

# The management-plane gate: attach the HTTP controller to a live
# single-process cluster (SWIM recovery armed) and a 2-shard cluster,
# require every endpoint to answer (/topology /stats /health as
# schema-valid JSON, /metrics as strictly-parsed Prometheus text, the
# zone-map page at /), and require /health to flip to 503 degraded
# within one probe period of a crash and back to 200 healthy once the
# recovery stack repairs.  Leaves benchmarks/out/mgmt/mgmt_smoke.json.
mgmt-smoke:
	$(PYTHON) scripts/mgmt_smoke.py --json benchmarks/out/mgmt/mgmt_smoke.json

# The recovery acceptance scenario: 20% simultaneous crash + one
# transit partition window under probe loss; asserts the stack-wide
# invariants hold post-recovery and that no live node was falsely
# killed, on every seed.  Leaves a recovery-telemetry JSON artifact
# under benchmarks/out/chaos/.
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py

# What the GitHub workflow runs: the full test suite plus quick-scale
# smoke runs of the resilience benches (timing disabled -- the assertions
# on success rate / false purges are the point), the chaos recovery
# scenario, the live-runtime parity smoke, and the bench-smoke JSON
# trajectory check.
ci:
	$(PYTHON) -m pytest tests/ -q
	$(PYTHON) -m pytest benchmarks/bench_ext_failure_resilience.py \
		benchmarks/bench_ext_fault_injection.py -q --benchmark-disable
	$(MAKE) chaos-smoke
	$(MAKE) runtime-smoke
	$(MAKE) shard-smoke
	$(MAKE) soak-smoke
	$(MAKE) overload-smoke
	$(MAKE) mgmt-smoke
	$(MAKE) bench-smoke
	$(PYTHON) scripts/bench_report.py --check

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; echo; done

clean:
	rm -rf benchmarks/out .pytest_cache build *.egg-info src/*.egg-info
