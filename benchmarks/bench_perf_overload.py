"""Overload benchmark: goodput and safety past the saturation knee.

Not a paper figure -- this records the overload-protection trajectory
of the live runtime in BENCH_ext.json.  One loopback cluster boots
with small data-lane mailboxes and the SWIM recovery stack armed,
then takes a closed-loop sweep: worker pools holding 0.5x, 1x, 2x and
4x the capacity-probe concurrency in flight.  (A closed loop is the
honest overload model for an in-process cluster -- client and server
share one event loop, so an open-loop schedule far past capacity
degenerates into a single mega-burst whose issue cost starves the
server it is measuring.)

Past the knee the bounded mailboxes shed queue overflow oldest-first,
origins see BUSY and fail fast (per-peer circuit breakers fast-fail
persistent streaks locally), and the detector keeps treating
saturated-but-responsive nodes as alive.  The headline shape this
pins:

* goodput stays flat past saturation -- the 4x cell must deliver at
  least 80% of the sweep's peak goodput; overload shows up as rising
  p99 latency and shed counts, not collapsing throughput;
* overload is never mistaken for death -- zero false crash verdicts
  and an empty confirmed-dead list with the detector running through
  the whole sweep;
* protection actually engaged -- the sweep records a nonzero shed
  count past the knee.

Goodput, latency, shed and breaker columns depend on wall-clock races
so they live under ``wall``-prefixed keys per the trajectory contract
(``bench_report.strip_wall``); the deterministic columns are the
multiplier/concurrency grid and the protection knobs.
"""

from __future__ import annotations

import asyncio

from _common import emit
from repro.core.config import NetworkParams, OverlayParams
from repro.experiments import current_scale, format_table
from repro.runtime import Cluster, ClusterConfig, run_load

MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
#: small enough that a 4x worker pool overflows the hot owners'
#: lanes -- shedding, not unbounded queueing, absorbs the overload
MAILBOX_CAP = 16
SEED = 0

#: closed-loop in-flight budget of the capacity probe (the loopback
#: cluster already saturates here); the sweep cells hold
#: ``multiplier * CONCURRENCY`` requests in flight
CONCURRENCY = 16


def _sizes():
    if current_scale().name == "quick":
        return {"nodes": 12, "capacity_count": 512, "cell_count": 3000}
    return {"nodes": 12, "capacity_count": 2048, "cell_count": 12000}


async def drive(sizes: dict) -> tuple:
    config = ClusterConfig(
        nodes=sizes["nodes"],
        network=NetworkParams(topo_scale=0.25, seed=SEED),
        overlay=OverlayParams(num_nodes=sizes["nodes"], seed=SEED),
        mailbox_cap=MAILBOX_CAP,
        # shed load fails fast: in a closed loop the worker reissues
        # immediately, so retrying into a still-full lane only burns
        # the shared event loop.  Breakers fast-fail persistent
        # per-peer BUSY streaks locally and re-probe quickly.
        busy_retries=0,
        breaker_threshold=8,
        breaker_reset_s=0.03,
    )
    rows = []
    async with Cluster(config) as cluster:
        recovery = await cluster.enable_recovery()

        # capacity probe, then the overload sweep on the same (warm)
        # cluster with the detector live throughout
        capacity = None
        cells = [("capacity", 0.0, CONCURRENCY, sizes["capacity_count"])] + [
            (f"open_{m:g}x", m, int(m * CONCURRENCY), sizes["cell_count"])
            for m in MULTIPLIERS
        ]
        for cell, multiplier, concurrency, count in cells:
            before = cluster.overload_counters()
            report = await run_load(
                cluster, rate=0.0, count=count, seed=SEED, concurrency=concurrency
            )
            after = cluster.overload_counters()
            pct = report.percentiles()
            goodput = (
                report.succeeded / report.wall_duration_s
                if report.wall_duration_s > 0
                else 0.0
            )
            if capacity is None:
                capacity = goodput
            rows.append(
                {
                    "cell": cell,
                    "multiplier": multiplier,
                    "concurrency": concurrency,
                    "nodes": sizes["nodes"],
                    "mailbox_cap": MAILBOX_CAP,
                    "ops": report.ops,
                    "wall_goodput_ops": goodput,
                    "wall_errors": report.errors,
                    "wall_shed": report.shed,
                    "wall_busy_errors": report.busy_errors,
                    "wall_breaker_fastfails": report.breaker_fastfails,
                    "wall_breaker_opens": after["breaker_opens"]
                    - before["breaker_opens"],
                    "wall_p50_ms": pct["p50"],
                    "wall_p99_ms": pct["p99"],
                }
            )

        verdict = {
            "wall_capacity_ops": capacity,
            "wall_false_crashes": recovery.false_kills,
            "wall_confirmed_dead": len(recovery.confirmed_dead),
            "wall_detector_rounds": recovery.rounds,
            "wall_shed_total": cluster.overload_counters()["shed"],
            "wall_breaker_opens_total": cluster.overload_counters()[
                "breaker_opens"
            ],
        }
    return rows, verdict


def bench_perf_overload(benchmark):
    sizes = _sizes()
    rows, verdict = asyncio.run(drive(sizes))
    emit(
        "ext_overload",
        f"Overload sweep: goodput vs in-flight load ({current_scale().name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": current_scale().name,
            "multipliers": list(MULTIPLIERS),
            "mailbox_cap": MAILBOX_CAP,
            "concurrency": CONCURRENCY,
            "topo_scale": 0.25,
            **verdict,
        },
        seed=SEED,
    )

    # the timed unit: a short 2x-overload burst on a small cluster
    async def unit():
        config = ClusterConfig(
            nodes=8,
            network=NetworkParams(topo_scale=0.25, seed=SEED),
            overlay=OverlayParams(num_nodes=8, seed=SEED),
            mailbox_cap=32,
        )
        async with Cluster(config) as cluster:
            await run_load(cluster, rate=0.0, count=256, seed=SEED, concurrency=64)

    benchmark(lambda: asyncio.run(unit()))

    by_cell = {row["cell"]: row for row in rows}
    knee = by_cell["open_4x"]
    # the sub-saturation reference: the capacity probe and the 0.5x
    # cell.  (The 1x/2x cells can overshoot it -- deeper queues buy
    # extra pipelining -- but that hump is wall-noise-sensitive, so
    # the plateau is judged against the uncongested goodput.)
    peak = max(
        verdict["wall_capacity_ops"], by_cell["open_0.5x"]["wall_goodput_ops"]
    )
    # flat plateau: 4x in-flight overload keeps goodput within 20% of
    # peak capacity instead of collapsing under queueing
    assert knee["wall_goodput_ops"] >= 0.8 * peak, rows
    # protection engaged past the knee ...
    assert knee["wall_shed"] + by_cell["open_2x"]["wall_shed"] > 0, rows
    # ... and the detector never mistook overload for death
    assert verdict["wall_false_crashes"] == 0, verdict
    assert verdict["wall_confirmed_dead"] == 0, verdict
    assert verdict["wall_detector_rounds"] > 0, verdict
