"""Extension: does landmark placement matter?

The paper simply scatters landmarks "randomly in the Internet"; the
binning literature often argues for well-separated or infrastructure-
hosted landmarks.  This ablation compares the three placement
strategies by nearest-neighbor search quality at a fixed probe
budget.

Expected shape: placement is a second-order effect -- all strategies
land in the same band once a few RTT probes are in the loop, with
separated/backbone landmarks at most marginally ahead.  (This
validates the paper's choice of not tuning placement.)
"""

import numpy as np

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments.common import bulk_vectors, get_network
from repro.proximity import select_landmarks


def bench_landmark_placement(benchmark):
    scale = current_scale()
    network = get_network("tsk-large", "generated", scale.topo_scale, 0)
    hosts = network.topology.stub_nodes()
    rng = np.random.default_rng(13)
    queries = rng.choice(len(hosts), size=scale.nn_queries, replace=False)
    budgets = [b for b in scale.hybrid_budgets if b <= 16] or [1, 8]

    rows = []
    for strategy in ("random", "transit", "spread"):
        landmarks = select_landmarks(
            network, 15, np.random.default_rng(7), strategy=strategy
        )
        vectors = bulk_vectors(network, landmarks, hosts, charge=False)
        for budget in budgets:
            stretches = []
            for q in queries:
                q = int(q)
                lat = network.latencies_from(int(hosts[q]))[hosts].astype(float).copy()
                lat[q] = np.inf
                true_nn = float(lat.min())
                if true_nn <= 0:
                    continue
                gaps = np.linalg.norm(vectors - vectors[q], axis=1)
                order = [i for i in np.argsort(gaps, kind="stable") if i != q]
                stretches.append(float(lat[order[:budget]].min()) / true_nn)
            rows.append(
                {
                    "placement": strategy,
                    "probes": budget,
                    "mean_stretch": float(np.mean(stretches)),
                }
            )
    emit(
        "ext_landmark_placement",
        f"Extension: landmark placement strategies ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "num_landmarks": 15,
            "budgets": list(budgets),
        },
    )

    benchmark(
        lambda: select_landmarks(
            network, 8, np.random.default_rng(3), strategy="spread"
        )
    )

    by = {(r["placement"], r["probes"]): r["mean_stretch"] for r in rows}
    top = budgets[-1]
    values = [by[(s, top)] for s in ("random", "transit", "spread")]
    # placement is second-order: all strategies within a 2.5x band at
    # the full budget
    assert max(values) <= 2.5 * min(values)
