"""Extension: the per-join message bill of maintaining global state.

§5.1: "each node will appear in a maximum of log(N) such maps ...
this, we believe, is not a big issue."  This bench itemizes the cost
of one join at several overlay sizes.

Expected shape: the per-join total grows polylogarithmically (publish
and lookup routes of O(log N) hops to O(log N) regions), nowhere near
linear in N."""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import join_cost


def bench_join_cost_scaling(benchmark):
    scale = current_scale()
    rows = join_cost.run(scale=scale)
    emit(
        "ext_join_cost",
        f"§5.1: per-join message cost by category vs N ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "node_sweep": list(scale.node_sweep)},
    )

    from repro.experiments.fig10_13_stretch_rtts import build_overlay

    overlay = build_overlay(
        "tsk-large", "manual", num_nodes=min(96, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    benchmark(lambda: overlay.add_node())

    first, last = rows[0], rows[-1]
    growth = last["total_per_join"] / first["total_per_join"]
    size_growth = last["N"] / first["N"]
    assert growth < size_growth / 2  # strongly sublinear in N
