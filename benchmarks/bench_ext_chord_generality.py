"""Extension: the soft-state technique ported to Chord.

The paper claims its machinery "is generic for overlay networks such
as Pastry, Chord, and eCAN" and the appendix gives the Chord mapping
(landmark number used directly as the storage key).  This bench runs
the same random / soft-state / oracle comparison on a Chord ring.

Expected shape: the same ordering as on eCAN -- soft-state beats
random finger choice and tracks the oracle -- with a smaller absolute
margin: a binary ring has ~2x more low-choice terminal hops than the
base-4 eCAN hierarchy, so proximity selection has fewer hops to
optimize (a known property of low-base prefix overlays).
"""

import numpy as np

from _common import emit
from repro.chord.softstate import build_soft_state_ring
from repro.experiments import current_scale, format_table
from repro.experiments.common import get_network
from repro.netsim import Network


def bench_chord_generality(benchmark):
    scale = current_scale()
    shared = get_network("tsk-large", "manual", scale.topo_scale, 0)
    num_nodes = min(192, scale.overlay_nodes)

    rows = []
    for policy in ("successor", "random", "softstate", "optimal"):
        network = Network(shared.topology, shared.latency_model)
        ring, _ = build_soft_state_ring(
            network, num_nodes, policy_name=policy, bits=18, seed=7
        )
        stretch = ring.measure_stretch(
            min(600, scale.route_samples), rng=np.random.default_rng(11)
        )
        rows.append(
            {
                "finger policy": policy,
                "mean_stretch": float(stretch.mean()),
                "messages": network.stats.total(),
            }
        )
    emit(
        "ext_chord_generality",
        f"Extension: soft-state finger selection on Chord ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "num_nodes": num_nodes, "bits": 18},
        seed=7,
    )

    ring, _ = build_soft_state_ring(shared, 64, policy_name="successor", bits=16, seed=3)
    rng = np.random.default_rng(5)

    def unit():
        for _ in range(50):
            ring.route(ring.random_member(), int(rng.integers(0, ring.space)))

    benchmark(unit)

    by = {r["finger policy"]: r["mean_stretch"] for r in rows}
    assert by["softstate"] < by["random"]
    assert by["optimal"] <= by["softstate"] * 1.2
