"""Figure 3: hybrid landmark+RTT vs expanding-ring search, tsk-large.

Paper shape: the hybrid reaches stretch ~1 with tens of probes; ERS
needs orders of magnitude more; the first hybrid point (1 probe) is
landmark clustering alone and is poor.
"""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig03_06_nn


def bench_fig03_hybrid_vs_ers_tsk_large(benchmark):
    scale = current_scale()
    rows = fig03_06_nn.run(
        "tsk-large", scale=scale, methods=("lmk+rtt", "order", "gnp", "ers")
    )
    emit(
        "fig03_nn_compare",
        f"Figure 3: nearest-neighbor stretch vs probes, tsk-large ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "topology": "tsk-large",
            "methods": ["lmk+rtt", "order", "gnp", "ers"],
        },
    )

    testbed = fig03_06_nn.NearestNeighborTestbed(
        "tsk-large", "generated", scale.topo_scale, seed=0
    )
    queries = testbed.sample_queries(4)

    def unit():
        for q in queries:
            testbed.hybrid_curve(int(q), budget=16)

    benchmark(unit)

    hybrid = {r["probes"]: r["mean_stretch"] for r in rows if r["method"] == "lmk+rtt"}
    ers = {r["probes"]: r["mean_stretch"] for r in rows if r["method"] == "ers"}
    best_hybrid_budget = max(hybrid)
    comparable_ers = min(b for b in ers if b >= best_hybrid_budget)
    assert hybrid[best_hybrid_budget] < ers[comparable_ers]
