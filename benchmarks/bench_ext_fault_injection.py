"""Extension: continuous fault injection vs the reliability stack.

Unlike the mass-crash benchmark (one-shot failures against a perfect
network), this one arms a :class:`FaultPlan` that drops probes and
overlay messages continuously, and sweeps loss rate x retry policy:

* ``none``  -- fire-and-forget: one lost hop fails the route, one
  silent ping purges the record;
* ``retry`` -- per-hop resends with sim-clock backoff, dead-expressway
  skipping with greedy degradation, and 2-confirmation maintenance
  probing.

Expected shape: the baseline's routing success decays with loss while
the retry arm stays near 1.0 at the cost of resend traffic; the retry
arm never false-purges a live record; and after a 10% crash-stop both
arms converge to a clean store (the retry arm more slowly -- it pays
confirmation rounds before believing a death)."""

from _common import emit
from repro.experiments import SCALES, current_scale, format_table
from repro.experiments import failure_resilience


def bench_fault_injection(benchmark):
    scale = current_scale()
    rows = failure_resilience.run_fault_injection(scale=scale)
    emit(
        "ext_fault_injection",
        f"Fault injection: loss rate x retry policy ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "loss_rates": [0.0, 0.05, 0.1, 0.2],
            "crash_fraction": 0.1,
        },
    )

    benchmark.pedantic(
        lambda: failure_resilience.run_fault_injection(
            scale=SCALES["quick"], loss_rates=(0.1,), probes=32
        ),
        rounds=1,
        iterations=1,
    )

    by_cell = {(row["loss_rate"], row["policy"]): row for row in rows}
    # the reliability stack holds the line at 10% loss ...
    assert by_cell[(0.1, "retry")]["success_rate"] >= 0.95
    # ... where the fire-and-forget baseline measurably degrades
    assert (
        by_cell[(0.1, "none")]["success_rate"]
        < by_cell[(0.1, "retry")]["success_rate"]
    )
    # N-confirmation probing never purges a live record
    for row in rows:
        if row["policy"] == "retry":
            assert row["false_purges"] == 0
    # retries only ever happen once faults are armed and lossy
    assert by_cell[(0.0, "retry")]["retries"] == 0
