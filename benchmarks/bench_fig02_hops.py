"""Figure 2: eCAN (EXP) vs plain CAN logical hops across overlay sizes.

Paper shape: eCAN d=2 grows ~log N and beats CAN up to d=5, whose
hops grow as ~(d/4) N^(1/d).
"""

import numpy as np

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig02_hops


def bench_fig02_ecan_vs_can_hops(benchmark):
    scale = current_scale()
    rows = fig02_hops.run(scale=scale)
    emit(
        "fig02_hops",
        f"Figure 2: mean logical hops vs N ({scale.name} scale)",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "sweep": list(scale.fig2_sweep)},
    )

    # timed unit: routing 100 lookups through a mid-size eCAN
    ecan = fig02_hops.build_ecan(min(512, max(scale.fig2_sweep)), seed=1)
    rng = np.random.default_rng(2)
    points = [tuple(rng.random(2)) for _ in range(100)]

    def unit():
        for point in points:
            ecan.route(ecan.can.random_node(), point)

    benchmark(unit)

    by = {(r["variant"], r["N"]): r["mean_hops"] for r in rows}
    largest = max(scale.fig2_sweep)
    assert by[("eCAN (EXP), d=2", largest)] < by[("CAN, d=2", largest)]
