"""Figure 4: expanding-ring search alone on tsk-large.

Paper shape: stretch falls slowly; thousands of probes are needed for
a good result on a sparse-stub topology.
"""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig03_06_nn


def bench_fig04_ers_tsk_large(benchmark):
    scale = current_scale()
    rows = fig03_06_nn.run("tsk-large", scale=scale, methods=("ers",))
    emit(
        "fig04_ers_large",
        f"Figure 4: ERS stretch vs probes, tsk-large ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "topology": "tsk-large", "methods": ["ers"]},
    )

    testbed = fig03_06_nn.NearestNeighborTestbed(
        "tsk-large", "generated", scale.topo_scale, seed=0
    )
    queries = testbed.sample_queries(2)

    def unit():
        for q in queries:
            testbed.ers_curve(int(q), budget=min(scale.ers_budgets[-1], 200))

    benchmark(unit)

    ordered = sorted(rows, key=lambda r: r["probes"])
    assert ordered[-1]["mean_stretch"] <= ordered[0]["mean_stretch"]
    # even the largest ERS budget is still visibly above ideal
    assert ordered[0]["mean_stretch"] > 2.0
