"""§5.2 ablation: demand-driven pub/sub vs periodic polling.

Paper claim to quantify: subscriptions keep routing tables as good as
periodic full re-checks at a fraction of the message cost, and both
beat leaving tables stale.
"""

from _common import emit
from repro.experiments import SCALES, current_scale, format_table
from repro.experiments import pubsub_ablation


def bench_pubsub_vs_polling(benchmark):
    scale = current_scale()
    rows = pubsub_ablation.run(scale=scale)
    emit(
        "pubsub_vs_polling",
        f"§5.2: maintenance messages vs final stretch ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "churn_events": scale.churn_events},
    )

    # one small single-round unit; full-mode reruns would dominate
    benchmark.pedantic(
        lambda: pubsub_ablation.run_mode("none", scale=SCALES["quick"]),
        rounds=1,
        iterations=1,
    )

    by = {r["mode"]: r for r in rows}
    assert by["pubsub"]["maintenance_messages"] < by["polling"]["maintenance_messages"]
    assert by["pubsub"]["mean_stretch"] <= by["none"]["mean_stretch"] * 1.1
