"""Figure 16: the map condense-rate sweep.

Paper shape: condensing the map raises entries-per-node (dashed line)
while stretch (solid line) stays essentially flat -- ~10 entries per
node already suffice.
"""

import numpy as np

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig16_condense


def bench_fig16_condense_rate(benchmark):
    scale = current_scale()
    rows = fig16_condense.run(scale=scale)
    emit(
        "fig16_condense_rate",
        f"Figure 16: map entries/node and stretch vs condense rate ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "condense_sweep": list(scale.condense_sweep),
        },
    )

    from repro.experiments.fig10_13_stretch_rtts import build_overlay

    overlay = build_overlay(
        "tsk-large", "manual", num_nodes=min(128, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    benchmark(lambda: overlay.store.entries_per_node())

    # condensing concentrates the map on fewer hosting nodes...
    assert rows[0]["hosting_nodes"] <= rows[-1]["hosting_nodes"]
    # ...while stretch stays within a modest band across the sweep
    stretches = np.array([r["mean_stretch"] for r in rows])
    assert stretches.max() <= stretches.min() * 1.6
