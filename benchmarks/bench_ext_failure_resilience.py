"""Extension: routing through mass simultaneous crashes.

The paper chooses a 2-d eCAN "to give a reasonable fault-tolerance
capability".  Here a fraction of members crash at once -- their
soft-state records and every table entry pointing at them go stale --
and the survivors keep routing with lazy repair.

Expected shape: success rate stays at 1.0 (the CAN invariant keeps
every key owned; greedy + repair always completes), stretch degrades
only mildly, and repair traffic scales with the crash fraction."""

from _common import emit
from repro.experiments import SCALES, current_scale, format_table
from repro.experiments import failure_resilience


def bench_failure_resilience(benchmark):
    scale = current_scale()
    rows = failure_resilience.run(scale=scale)
    emit(
        "ext_failure_resilience",
        f"Fault tolerance: mass crashes with lazy repair ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "crash_fractions": [0.0, 0.1, 0.25, 0.5],
        },
    )

    benchmark.pedantic(
        lambda: failure_resilience.run(
            scale=SCALES["quick"], crash_fractions=(0.1,), probes=32
        ),
        rounds=1,
        iterations=1,
    )

    for row in rows:
        assert row["success_rate"] >= 0.95
    assert rows[-1]["table_repairs"] > rows[0]["table_repairs"]


def bench_recovery_policies(benchmark):
    """Lazy repair vs the active self-healing stack under chaos.

    Both arms face the same 20% simultaneous crash + partition window
    + probe loss; only the active arm runs the failure detector, crash
    takeover, map replication and partition-heal reconciliation.  The
    assertions pin the qualitative claim: only the active arm restores
    the stack-wide invariants, it confirms every corpse, and probe
    loss never kills a live node.
    """
    scale = current_scale()
    rows = failure_resilience.run_recovery_policies(scale=scale)
    emit(
        "ext_recovery_policies",
        f"Self-healing: lazy repair vs active recovery ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "crash_fraction": 0.2,
            "probe_loss": 0.1,
            "replication_factor": 2,
        },
    )

    benchmark.pedantic(
        lambda: failure_resilience.run_recovery_policies(
            scale=SCALES["quick"], probes=32
        ),
        rounds=1,
        iterations=1,
    )

    by_policy = {row["policy"]: row for row in rows}
    active, lazy = by_policy["active"], by_policy["lazy"]
    assert active["invariants_ok"] and not lazy["invariants_ok"]
    assert active["confirmed_dead"] > 0 and lazy["confirmed_dead"] == 0
    assert active["false_kills"] == 0
    assert active["completion_rate"] >= lazy["completion_rate"] - 0.05
