"""Extension: routing through mass simultaneous crashes.

The paper chooses a 2-d eCAN "to give a reasonable fault-tolerance
capability".  Here a fraction of members crash at once -- their
soft-state records and every table entry pointing at them go stale --
and the survivors keep routing with lazy repair.

Expected shape: success rate stays at 1.0 (the CAN invariant keeps
every key owned; greedy + repair always completes), stretch degrades
only mildly, and repair traffic scales with the crash fraction."""

from _common import emit
from repro.experiments import SCALES, current_scale, format_table
from repro.experiments import failure_resilience


def bench_failure_resilience(benchmark):
    scale = current_scale()
    rows = failure_resilience.run(scale=scale)
    emit(
        "ext_failure_resilience",
        f"Fault tolerance: mass crashes with lazy repair ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "crash_fractions": [0.0, 0.1, 0.25, 0.5],
        },
    )

    benchmark.pedantic(
        lambda: failure_resilience.run(
            scale=SCALES["quick"], crash_fractions=(0.1,), probes=32
        ),
        rounds=1,
        iterations=1,
    )

    for row in rows:
        assert row["success_rate"] >= 0.95
    assert rows[-1]["table_repairs"] > rows[0]["table_repairs"]
