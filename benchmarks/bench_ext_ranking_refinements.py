"""Extension: the §5.4 proximity-refinement ablation.

The paper proposes three ways to shrink the second performance gap
(imperfect proximity generation): landmark groups, hierarchical
landmark spaces, and SVD de-noising over many landmarks.  This bench
compares the resulting candidate rankings on a *noisy* latency model
(where plain vector ranking degrades) by the metric that matters to
the hybrid search: the stretch achieved after probing the top-k
ranked candidates.

Expected shape: under noise, every refinement beats or matches plain
ranking at small probe budgets; all converge to ~1 as the budget
grows (probing forgives ranking errors -- which is the paper's core
hybrid insight in the first place).
"""

import numpy as np

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments.common import bulk_vectors
from repro.netsim import GeneratedLatencyModel, Network, NoisyLatencyModel
from repro.proximity import select_landmarks
from repro.proximity.refinements import LandmarkGroups, SvdProjector


def bench_ranking_refinements(benchmark):
    scale = current_scale()
    from repro.experiments.common import get_network

    base = get_network("tsk-large", "generated", scale.topo_scale, 0)
    network = Network(
        base.topology,
        NoisyLatencyModel(base=GeneratedLatencyModel(), sigma=0.3, seed=5),
    )
    rng = np.random.default_rng(7)
    landmarks = select_landmarks(network, 16, rng)
    hosts = network.topology.stub_nodes()
    clean = bulk_vectors(network, landmarks, hosts, charge=False)
    # per-probe measurement jitter: the regime SVD/groups are meant to
    # suppress (queueing noise on individual RTT samples)
    vectors = clean * rng.lognormal(0.0, 0.35, size=clean.shape)

    groups = LandmarkGroups.split(16, 4)
    projector = SvdProjector(5).fit(vectors)

    strategies = {
        "plain-vector": lambda q: np.argsort(
            np.linalg.norm(vectors - vectors[q], axis=1), kind="stable"
        ),
        "landmark-groups": lambda q: groups.rank(vectors[q], vectors),
        "svd-denoised": lambda q: projector.rank(vectors[q], vectors),
    }

    queries = rng.choice(len(hosts), size=scale.nn_queries, replace=False)
    budgets = [b for b in scale.hybrid_budgets if b <= 16] or [1, 8]
    rows = []
    for name, rank in strategies.items():
        latencies = {int(q): network.latencies_from(int(hosts[q]))[hosts] for q in queries}
        for budget in budgets:
            stretches = []
            for q in queries:
                q = int(q)
                lat = latencies[q].astype(np.float64).copy()
                lat[q] = np.inf
                true_nn = float(lat.min())
                if true_nn <= 0:
                    continue
                order = [i for i in rank(q) if i != q][:budget]
                found = float(lat[order].min())
                stretches.append(found / true_nn)
            rows.append(
                {
                    "ranking": name,
                    "probes": budget,
                    "mean_stretch": float(np.mean(stretches)),
                }
            )
    emit(
        "ext_ranking_refinements",
        f"§5.4 refinements: nearest-neighbor stretch under noisy latencies "
        f"({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "num_landmarks": 16,
            "budgets": list(budgets),
        },
    )

    benchmark(lambda: [strategies["svd-denoised"](int(q)) for q in queries[:5]])

    by = {(r["ranking"], r["probes"]): r["mean_stretch"] for r in rows}
    top_budget = budgets[-1]
    for name in strategies:
        # probing forgives ranking noise: everyone decent at full budget
        assert by[(name, top_budget)] <= by[(name, budgets[0])] + 1e-9
