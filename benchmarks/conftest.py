"""Bench-session fixtures: per-bench measurement baselines.

Networks are memoised across benches (``experiments.common.get_network``),
so their stats, telemetry and sim clocks accumulate over a whole
pytest session.  This autouse fixture brackets every bench with a
baseline snapshot so the JSON record each bench emits charges only its
own activity.
"""

import _common
import pytest


@pytest.fixture(autouse=True)
def _bench_measurement():
    _common.begin_measurement()
    yield
    _common.end_measurement()
