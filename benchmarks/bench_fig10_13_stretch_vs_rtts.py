"""Figures 10-13: routing stretch vs RTT budget and landmark count.

Four panels: {tsk-large, tsk-small} x {generated, manual} latencies.
Paper shape per panel: soft-state curves sit between the random
baseline and the optimal line and approach optimal as the RTT budget
grows; landmark count matters most for manual latencies.
"""

import pytest

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig10_13_stretch_rtts

PANELS = [
    ("fig10", "tsk-large", "generated"),
    ("fig11", "tsk-large", "manual"),
    ("fig12", "tsk-small", "generated"),
    ("fig13", "tsk-small", "manual"),
]


@pytest.mark.parametrize("figure,topology,latency", PANELS)
def bench_stretch_vs_rtts(benchmark, figure, topology, latency):
    scale = current_scale()
    rows = fig10_13_stretch_rtts.run(topology, latency, scale=scale)
    emit(
        f"{figure}_stretch_vs_rtts",
        f"Figure {figure[3:]}: stretch vs RTT probes, {topology}, "
        f"{latency} latencies ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "topology": topology, "latency": latency},
    )

    overlay = fig10_13_stretch_rtts.build_overlay(
        topology,
        latency,
        num_nodes=min(128, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    benchmark(lambda: overlay.measure_stretch(samples=64))

    by_label = {}
    for r in rows:
        by_label.setdefault(r["landmarks"], []).append(r["mean_stretch"])
    best_softstate = min(
        v for k, vals in by_label.items() if isinstance(k, int) for v in vals
    )
    assert by_label["optimal"][0] <= best_softstate * 1.35
    assert best_softstate < by_label["random"][0]
