"""Extension: the §5.2 maintenance-policy spectrum under churn.

Identical overlays and churn traces; only the staleness policy
differs (departures are mostly ungraceful, so the policies actually
diverge).  Expected shape: reactive keeps the maps cleanest for free
(it piggybacks on failed uses), periodic buys cleanliness with ping
traffic, proactive helps only for the graceful minority -- while
routing stretch stays policy-insensitive, because the hybrid
RTT-confirms candidates before installing them."""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import churn_timeline


def bench_churn_maintenance_policies(benchmark):
    scale = current_scale()
    rows = churn_timeline.run(scale=scale)
    emit(
        "ext_churn_policies",
        f"§5.2: maintenance policies under churn ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "churn_events": scale.churn_events},
    )

    from repro.core.churn import ChurnDriver, ChurnEvent
    from repro.experiments.fig10_13_stretch_rtts import build_overlay

    overlay = build_overlay(
        "tsk-large", "manual", num_nodes=min(64, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    driver = ChurnDriver(overlay)
    counter = iter(range(10 ** 9))

    def unit():
        driver.apply(ChurnEvent(time=float(next(counter)), kind="join"))

    benchmark(unit)

    by = {r["policy"]: r for r in rows}
    assert by["periodic"]["maintenance_pings"] > 0
    assert by["reactive"]["stale_entries"] <= by["proactive"]["stale_entries"]
    for row in rows:
        assert row["final_stretch"] is not None
