"""Live-runtime benchmark: the nodes x concurrency x encoding x shards sweep.

Not a paper figure -- this records the performance trajectory of the
asyncio runtime (``src/repro/runtime/``) in BENCH_ext.json.  Each
cell boots a cluster and drives the load generator in one of its two
modes over one of the two payload encodings:

* **open loop** (``concurrency=0``): Poisson arrivals at a fixed
  offered rate -- achieved throughput is capped by the schedule, so
  these cells measure latency under a compliant load;
* **closed loop** (``concurrency=N``): a worker pool holds N requests
  in flight -- these cells measure capacity, which is where the
  packed struct encoding and the run-to-completion actor pay off.

The ``shards`` axis boots the same membership across N worker
processes (``ShardedCluster``): ``shards=1`` stays on the classic
single-process harness, the multi-shard cells measure how capacity
scales once each event loop owns a core.  On boxes with fewer cores
than shards the sharded cells still *run* (correctness and parity are
core-count independent) but the speedup gate is skipped and recorded
as such -- a 4-process pile-up on one core measures the scheduler,
not the architecture.

Correctness columns (``ops``, ``errors``, ``parity_checked``,
``parity_mismatches``) are deterministic per seed; every timing lives
under a ``wall``-prefixed key so same-seed records stay byte-identical
modulo wall time (``bench_report.strip_wall``).
"""

from __future__ import annotations

import asyncio
import os
import time

from _common import emit
from repro.core.config import NetworkParams, OverlayParams
from repro.experiments import format_table
from repro.runtime import ClusterConfig, make_cluster
from repro.runtime.wire import Frame, MsgType, decode_frame, encode_frame

#: (transport, nodes, encoding, concurrency, shards) cells;
#: concurrency 0 is the open-loop Poisson mode at RATE; TCP stays
#: small -- real sockets per node
CELLS = (
    ("loopback", 16, "json", 0, 1),
    ("loopback", 16, "packed", 64, 1),
    ("loopback", 64, "json", 0, 1),
    ("loopback", 64, "json", 64, 1),
    ("loopback", 64, "packed", 0, 1),
    ("loopback", 64, "packed", 64, 1),
    ("tcp", 16, "json", 32, 1),
    ("tcp", 16, "packed", 32, 1),
    ("loopback", 64, "packed", 64, 2),
    ("loopback", 64, "packed", 64, 4),
)

#: request counts: open-loop cells replay the historical burst, the
#: closed-loop cells need more requests to reach a steady state
LOOKUPS = 256
CLOSED_LOOKUPS = 2048
RATE = 2000.0
PARITY_LOOKUPS = 64
PARITY_ROUTES = 32

#: cores needed before the multi-shard speedup gate means anything
SPEEDUP_GATE_CPUS = 4
SPEEDUP_FLOOR = 2.0

#: frames per codec micro-bench batch
CODEC_FRAMES = 1000


def codec_microbench(count: int = CODEC_FRAMES) -> dict:
    """Wall seconds to encode+decode ``count`` ROUTE frames, per codec.

    Guards the precompiled-``struct.Struct`` fast path: the packed
    codec exists to beat JSON per hop, so a change that silently drops
    it back behind JSON (a cache regression, an accidental fallback)
    must fail the bench, not just slow the sweep down.
    """
    frames = [
        Frame(
            MsgType.ROUTE,
            i,
            {
                "point": [0.3125, 0.6875],
                "path": [1, 2, 3, 4 + (i % 7)],
                "op": "lookup",
                "src": i % 64,
            },
        )
        for i in range(count)
    ]
    timings = {}
    for packed in (False, True):
        began = time.perf_counter()
        for frame in frames:
            decode_frame(encode_frame(frame, packed=packed))
        timings["packed" if packed else "json"] = (
            time.perf_counter() - began
        )
    return timings


async def drive_cell(
    transport: str,
    nodes: int,
    encoding: str,
    concurrency: int,
    shards: int,
    seed: int = 0,
) -> dict:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport=transport,
        wire_encoding=encoding,
        shards=shards,
    )
    cluster = make_cluster(config)
    t0 = time.perf_counter()
    await cluster.start()
    boot_s = time.perf_counter() - t0
    try:
        report = await cluster.run_load(
            rate=RATE,
            count=CLOSED_LOOKUPS if concurrency else LOOKUPS,
            seed=seed,
            concurrency=concurrency,
        )
        verdict = await cluster.verify_against_sim(
            lookups=PARITY_LOOKUPS, routes=PARITY_ROUTES, seed=seed
        )
        boot_per_shard = (
            cluster.boot_report()["wall_boot_s_per_shard"]
            if shards > 1
            else [boot_s]
        )
    finally:
        await cluster.stop()
    pct = report.percentiles()
    return {
        "transport": transport,
        "nodes": nodes,
        "encoding": encoding,
        "shards": shards,
        "mode": report.mode,
        "concurrency": concurrency,
        "ops": report.ops,
        "errors": report.errors,
        "parity_checked": verdict["checked"],
        "parity_mismatches": verdict["mismatches"],
        "loop": report.loop,
        "wall_boot_s": boot_s,
        "wall_boot_s_per_shard": boot_per_shard,
        "wall_p50_ms": pct["p50"],
        "wall_p95_ms": pct["p95"],
        "wall_p99_ms": pct["p99"],
        "wall_throughput_ops": report.achieved_rate,
    }


def bench_perf_runtime(benchmark):
    rows = [asyncio.run(drive_cell(*cell)) for cell in CELLS]
    cpus = os.cpu_count() or 1
    codec = codec_microbench()
    emit(
        "ext_perf_runtime",
        "Live runtime sweep: nodes x concurrency x encoding x shards, "
        "sim parity",
        format_table(rows),
        rows=rows,
        params={
            "cells": [list(cell) for cell in CELLS],
            "lookups": LOOKUPS,
            "closed_lookups": CLOSED_LOOKUPS,
            "rate": RATE,
            "parity_lookups": PARITY_LOOKUPS,
            "parity_routes": PARITY_ROUTES,
            "topo_scale": 0.25,
            "cpus": cpus,
            "speedup_gate": (
                f"armed (>= {SPEEDUP_FLOOR:.0f}x at 4 shards)"
                if cpus >= SPEEDUP_GATE_CPUS
                else f"skipped ({cpus} cpus < {SPEEDUP_GATE_CPUS})"
            ),
            "codec_frames": CODEC_FRAMES,
            "wall_codec_json_s": codec["json"],
            "wall_codec_packed_s": codec["packed"],
        },
    )

    # the timed unit: boot + a short lookup burst on a small cluster
    async def unit():
        config = ClusterConfig(
            nodes=8,
            network=NetworkParams(topo_scale=0.25, seed=0),
            overlay=OverlayParams(num_nodes=8, seed=0),
        )
        async with make_cluster(config) as cluster:
            await cluster.run_load(rate=RATE, count=32, seed=0)

    benchmark(lambda: asyncio.run(unit()))

    assert all(row["errors"] == 0 for row in rows), rows
    assert all(row["parity_mismatches"] == 0 for row in rows), rows
    assert all(
        row["ops"] == (CLOSED_LOOKUPS if row["concurrency"] else LOOKUPS)
        for row in rows
    )
    # the packed codec must beat JSON on a like-for-like frame batch:
    # a cache regression or silent JSON fallback fails here first
    assert codec["packed"] <= codec["json"], codec
    # the closed-loop packed cells must clear the open-loop ceiling:
    # a regression that re-pins the runtime to the arrival schedule
    # (or a codec fallback to JSON-everywhere) should fail loudly
    by_cell = {
        (
            r["transport"], r["nodes"], r["encoding"],
            r["concurrency"], r["shards"],
        ): r
        for r in rows
    }
    fast = by_cell[("loopback", 64, "packed", 64, 1)]
    assert fast["wall_throughput_ops"] > RATE, fast
    # sharding earns its keep only when each loop owns a core; with
    # enough of them, 4 shards must at least double the 1-shard cell
    if cpus >= SPEEDUP_GATE_CPUS:
        sharded = by_cell[("loopback", 64, "packed", 64, 4)]
        floor = SPEEDUP_FLOOR * fast["wall_throughput_ops"]
        assert sharded["wall_throughput_ops"] >= floor, (fast, sharded)
