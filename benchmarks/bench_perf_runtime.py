"""Live-runtime benchmark: boot, open-loop latency, and sim parity.

Not a paper figure -- this records the performance trajectory of the
asyncio runtime (``src/repro/runtime/``) in BENCH_ext.json: cluster
boot wall time (topology-aware joins over the wire), open-loop lookup
latency percentiles and achieved throughput from the load driver, and
the parity verdict against the synchronous simulator.  One cell per
(transport, size): loopback at two sizes plus real TCP sockets at 16
nodes.

Correctness columns (``ops``, ``errors``, ``parity_checked``,
``parity_mismatches``) are deterministic per seed; every timing lives
under a ``wall``-prefixed key so same-seed records stay byte-identical
modulo wall time (``bench_report.strip_wall``).
"""

from __future__ import annotations

import asyncio
import time

from _common import emit
from repro.core.config import NetworkParams, OverlayParams
from repro.experiments import format_table
from repro.runtime import Cluster, ClusterConfig, run_load

#: (transport, nodes) cells; TCP stays small -- real sockets per node
CELLS = (("loopback", 16), ("loopback", 64), ("tcp", 16))

LOOKUPS = 256
RATE = 2000.0
PARITY_LOOKUPS = 64
PARITY_ROUTES = 32


async def drive_cell(transport: str, nodes: int, seed: int = 0) -> dict:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport=transport,
    )
    cluster = Cluster(config)
    t0 = time.perf_counter()
    await cluster.start()
    boot_s = time.perf_counter() - t0
    try:
        report = await run_load(cluster, rate=RATE, count=LOOKUPS, seed=seed)
        verdict = await cluster.verify_against_sim(
            lookups=PARITY_LOOKUPS, routes=PARITY_ROUTES, seed=seed
        )
    finally:
        await cluster.stop()
    pct = report.percentiles()
    return {
        "transport": transport,
        "nodes": nodes,
        "ops": report.ops,
        "errors": report.errors,
        "parity_checked": verdict["checked"],
        "parity_mismatches": verdict["mismatches"],
        "wall_boot_s": boot_s,
        "wall_p50_ms": pct["p50"],
        "wall_p95_ms": pct["p95"],
        "wall_p99_ms": pct["p99"],
        "wall_throughput_ops": report.achieved_rate,
    }


def bench_perf_runtime(benchmark):
    rows = [
        asyncio.run(drive_cell(transport, nodes))
        for transport, nodes in CELLS
    ]
    emit(
        "ext_perf_runtime",
        "Live runtime: boot, open-loop lookup latency, sim parity",
        format_table(rows),
        rows=rows,
        params={
            "cells": [list(cell) for cell in CELLS],
            "lookups": LOOKUPS,
            "rate": RATE,
            "parity_lookups": PARITY_LOOKUPS,
            "parity_routes": PARITY_ROUTES,
            "topo_scale": 0.25,
        },
    )

    # the timed unit: boot + a short lookup burst on a small cluster
    async def unit():
        config = ClusterConfig(
            nodes=8,
            network=NetworkParams(topo_scale=0.25, seed=0),
            overlay=OverlayParams(num_nodes=8, seed=0),
        )
        async with Cluster(config) as cluster:
            await run_load(cluster, rate=RATE, count=32, seed=0)

    benchmark(lambda: asyncio.run(unit()))

    assert all(row["errors"] == 0 for row in rows), rows
    assert all(row["parity_mismatches"] == 0 for row in rows), rows
    assert all(row["ops"] == LOOKUPS for row in rows)
