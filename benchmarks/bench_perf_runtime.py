"""Live-runtime benchmark: the nodes x concurrency x encoding sweep.

Not a paper figure -- this records the performance trajectory of the
asyncio runtime (``src/repro/runtime/``) in BENCH_ext.json.  Each
cell boots a cluster and drives the load generator in one of its two
modes over one of the two payload encodings:

* **open loop** (``concurrency=0``): Poisson arrivals at a fixed
  offered rate -- achieved throughput is capped by the schedule, so
  these cells measure latency under a compliant load;
* **closed loop** (``concurrency=N``): a worker pool holds N requests
  in flight -- these cells measure capacity, which is where the
  packed struct encoding and the run-to-completion actor pay off.

Cells cover loopback at 16 and 64 nodes and real TCP sockets at 16
nodes, each under both the JSON and packed payload encodings, with
the sim-parity verdict recorded per cell.

Correctness columns (``ops``, ``errors``, ``parity_checked``,
``parity_mismatches``) are deterministic per seed; every timing lives
under a ``wall``-prefixed key so same-seed records stay byte-identical
modulo wall time (``bench_report.strip_wall``).
"""

from __future__ import annotations

import asyncio
import time

from _common import emit
from repro.core.config import NetworkParams, OverlayParams
from repro.experiments import format_table
from repro.runtime import Cluster, ClusterConfig, run_load

#: (transport, nodes, encoding, concurrency) cells; concurrency 0 is
#: the open-loop Poisson mode at RATE; TCP stays small -- real
#: sockets per node
CELLS = (
    ("loopback", 16, "json", 0),
    ("loopback", 16, "packed", 64),
    ("loopback", 64, "json", 0),
    ("loopback", 64, "json", 64),
    ("loopback", 64, "packed", 0),
    ("loopback", 64, "packed", 64),
    ("tcp", 16, "json", 32),
    ("tcp", 16, "packed", 32),
)

#: request counts: open-loop cells replay the historical burst, the
#: closed-loop cells need more requests to reach a steady state
LOOKUPS = 256
CLOSED_LOOKUPS = 2048
RATE = 2000.0
PARITY_LOOKUPS = 64
PARITY_ROUTES = 32


async def drive_cell(
    transport: str, nodes: int, encoding: str, concurrency: int, seed: int = 0
) -> dict:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport=transport,
        wire_encoding=encoding,
    )
    cluster = Cluster(config)
    t0 = time.perf_counter()
    await cluster.start()
    boot_s = time.perf_counter() - t0
    try:
        report = await run_load(
            cluster,
            rate=RATE,
            count=CLOSED_LOOKUPS if concurrency else LOOKUPS,
            seed=seed,
            concurrency=concurrency,
        )
        verdict = await cluster.verify_against_sim(
            lookups=PARITY_LOOKUPS, routes=PARITY_ROUTES, seed=seed
        )
    finally:
        await cluster.stop()
    pct = report.percentiles()
    return {
        "transport": transport,
        "nodes": nodes,
        "encoding": encoding,
        "mode": report.mode,
        "concurrency": concurrency,
        "ops": report.ops,
        "errors": report.errors,
        "parity_checked": verdict["checked"],
        "parity_mismatches": verdict["mismatches"],
        "wall_boot_s": boot_s,
        "wall_p50_ms": pct["p50"],
        "wall_p95_ms": pct["p95"],
        "wall_p99_ms": pct["p99"],
        "wall_throughput_ops": report.achieved_rate,
    }


def bench_perf_runtime(benchmark):
    rows = [asyncio.run(drive_cell(*cell)) for cell in CELLS]
    emit(
        "ext_perf_runtime",
        "Live runtime sweep: nodes x concurrency x encoding, sim parity",
        format_table(rows),
        rows=rows,
        params={
            "cells": [list(cell) for cell in CELLS],
            "lookups": LOOKUPS,
            "closed_lookups": CLOSED_LOOKUPS,
            "rate": RATE,
            "parity_lookups": PARITY_LOOKUPS,
            "parity_routes": PARITY_ROUTES,
            "topo_scale": 0.25,
        },
    )

    # the timed unit: boot + a short lookup burst on a small cluster
    async def unit():
        config = ClusterConfig(
            nodes=8,
            network=NetworkParams(topo_scale=0.25, seed=0),
            overlay=OverlayParams(num_nodes=8, seed=0),
        )
        async with Cluster(config) as cluster:
            await run_load(cluster, rate=RATE, count=32, seed=0)

    benchmark(lambda: asyncio.run(unit()))

    assert all(row["errors"] == 0 for row in rows), rows
    assert all(row["parity_mismatches"] == 0 for row in rows), rows
    assert all(
        row["ops"] == (CLOSED_LOOKUPS if row["concurrency"] else LOOKUPS)
        for row in rows
    )
    # the closed-loop packed cells must clear the open-loop ceiling:
    # a regression that re-pins the runtime to the arrival schedule
    # (or a codec fallback to JSON-everywhere) should fail loudly
    by_cell = {
        (r["transport"], r["nodes"], r["encoding"], r["concurrency"]): r
        for r in rows
    }
    fast = by_cell[("loopback", 64, "packed", 64)]
    assert fast["wall_throughput_ops"] > RATE, fast
