"""Hot-path scale benchmark: wall-clock build + throughput vs N.

Not a paper figure -- this records the performance trajectory of the
stack itself so regressions show up in BENCH_core.json: overlay
construction wall time, routing throughput (the ``measure_stretch``
loop), and soft-state lookup throughput, at a sweep of overlay sizes
on the quick topology.  Correctness columns (``mean_stretch``,
message counts charged by the run) are deterministic per seed; every
timing lives under a ``wall``-prefixed key so same-seed records stay
byte-identical modulo wall time (``bench_report.strip_wall``).

The sweep defaults to the ISSUE sizes per scale preset and can be
overridden with ``REPRO_PERF_N=256,1024,4096``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import emit
from repro.core.builder import TopologyAwareOverlay
from repro.core.config import NetworkParams, OverlayParams, make_network
from repro.experiments import current_scale, format_table
from repro.softstate.maps import Region

#: overlay sizes per scale preset (override with REPRO_PERF_N)
DEFAULT_SWEEP = {
    "quick": (256, 1024),
    "medium": (256, 1024, 4096),
    "paper": (256, 1024, 4096),
}

#: soft-state lookups timed per cell (cycling members x level-1 cells)
LOOKUP_SAMPLES = 1024


def sweep_sizes(scale) -> tuple:
    env = os.environ.get("REPRO_PERF_N")
    if env:
        return tuple(int(part) for part in env.replace(" ", "").split(",") if part)
    return DEFAULT_SWEEP.get(scale.name, DEFAULT_SWEEP["quick"])


def run_cell(n: int, topo_scale: float, seed: int = 0) -> dict:
    """Build an N-node overlay and time its hot paths.

    The physical network is constructed outside the timed section --
    the row is about overlay paths, not topology generation.  A second
    throwaway overlay is built through :meth:`build_bulk` so the row
    records the batched bulk-join fast path's delta over the
    incremental build (same membership and zones; publications are
    deferred to one flush against the final tessellation).
    """
    network = make_network(NetworkParams(topo_scale=topo_scale, seed=seed))
    overlay = TopologyAwareOverlay(network, OverlayParams(num_nodes=n, seed=seed))
    t0 = time.perf_counter()
    overlay.build(n)
    t1 = time.perf_counter()

    bulk = TopologyAwareOverlay(network, OverlayParams(num_nodes=n, seed=seed))
    tb0 = time.perf_counter()
    bulk.build_bulk(n)
    tb1 = time.perf_counter()
    bulk_s = tb1 - tb0
    stretch = overlay.measure_stretch(2 * n)
    t2 = time.perf_counter()

    # lookup throughput: members query the four level-1 region maps
    # round-robin, exactly as neighbor selection does during joins
    members = overlay.node_ids
    dims = overlay.ecan.can.dims
    cells = [
        tuple((index >> d) & 1 for d in range(dims)) for index in range(1 << dims)
    ]
    t3 = time.perf_counter()
    for i in range(LOOKUP_SAMPLES):
        overlay.store.lookup(
            members[i % len(members)], Region(1, cells[i % len(cells)])
        )
    t4 = time.perf_counter()

    build_s = t1 - t0
    stretch_s = t2 - t1
    lookup_s = t4 - t3
    return {
        "n": n,
        "route_samples": int(stretch.size),
        "mean_stretch": float(stretch.mean()),
        "lookup_samples": LOOKUP_SAMPLES,
        "wall_build_s": build_s,
        "wall_bulk_build_s": bulk_s,
        "wall_stretch_s": stretch_s,
        "wall_joins_per_s": n / build_s if build_s > 0 else None,
        "wall_bulk_joins_per_s": n / bulk_s if bulk_s > 0 else None,
        "wall_routes_per_s": (
            float(stretch.size) / stretch_s if stretch_s > 0 else None
        ),
        "wall_lookups_per_s": (
            LOOKUP_SAMPLES / lookup_s if lookup_s > 0 else None
        ),
    }


def bench_perf_scale(benchmark):
    scale = current_scale()
    sizes = sweep_sizes(scale)
    rows = [run_cell(n, scale.topo_scale) for n in sizes]
    emit(
        "perf_scale",
        f"Hot-path scale: build/route/lookup wall-clock vs N ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "topo_scale": scale.topo_scale,
            "sweep": list(sizes),
            "lookup_samples": LOOKUP_SAMPLES,
            "route_samples": "2*n",
        },
    )

    # the timed unit: a fresh small build, the dominant hot path
    smallest = min(sizes)
    benchmark(lambda: run_cell(min(smallest, 256), scale.topo_scale))

    assert all(row["route_samples"] > 0 for row in rows)
    assert all(np.isfinite(row["mean_stretch"]) for row in rows)
    # routing never beats the direct path, so stretch is >= 1
    assert all(row["mean_stretch"] >= 1.0 for row in rows)
