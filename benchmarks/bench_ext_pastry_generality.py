"""Extension: the soft-state technique ported to Pastry.

Pastry is the paper's main comparison point; its own
proximity-neighbor selection relies on expanding-ring search /
heuristics for bootstrap.  Here Pastry's routing-table slots are
filled three ways -- random prefix-matching node, soft-state maps +
RTT probes, oracle closest -- over the same membership.

Expected shape: soft-state matches the oracle and beats random by a
large factor (base-4 prefix routing gives proximity selection many
high-choice hops, unlike the binary Chord ring)."""

import numpy as np

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments.common import get_network
from repro.netsim import Network
from repro.pastry import build_soft_state_pastry


def bench_pastry_generality(benchmark):
    scale = current_scale()
    shared = get_network("tsk-large", "manual", scale.topo_scale, 0)
    num_nodes = min(192, scale.overlay_nodes)

    rows = []
    for policy in ("random", "softstate", "optimal"):
        network = Network(shared.topology, shared.latency_model)
        ring, _ = build_soft_state_pastry(
            network, num_nodes, policy_name=policy, digits=14, seed=7
        )
        stretch = ring.measure_stretch(
            min(600, scale.route_samples), rng=np.random.default_rng(11)
        )
        rows.append(
            {
                "slot policy": policy,
                "mean_stretch": float(stretch.mean()),
                "messages": network.stats.total(),
            }
        )
    emit(
        "ext_pastry_generality",
        f"Extension: soft-state slot selection on Pastry ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "num_nodes": num_nodes, "digits": 14},
        seed=7,
    )

    ring, _ = build_soft_state_pastry(shared, 64, policy_name="random", digits=12, seed=3)
    rng = np.random.default_rng(5)

    def unit():
        for _ in range(50):
            ring.route(ring.random_member(), int(rng.integers(0, ring.space)))

    benchmark(unit)

    by = {r["slot policy"]: r["mean_stretch"] for r in rows}
    assert by["softstate"] < 0.7 * by["random"]
    assert by["optimal"] <= by["softstate"] * 1.2
