"""Shared output plumbing for the figure benchmarks.

Each bench regenerates one paper figure's rows, prints them (visible
with ``pytest benchmarks/ -s`` or on the captured-output section of a
failure) and writes them under ``benchmarks/out/``:

* ``<name>.txt`` -- the aligned table EXPERIMENTS.md is assembled from;
* ``<name>.json`` -- a schema-versioned perf record (see
  ``benchmarks/schema.json``): parameters, seed, simulated and wall
  time, the :class:`~repro.netsim.network.MessageStats` breakdown,
  telemetry event/phase deltas, the raw rows and bootstrap summary
  statistics.  ``scripts/bench_report.py`` merges the records into the
  repo-root ``BENCH_core.json`` / ``BENCH_ext.json`` trajectory files.

Measurement is delta-based: the autouse fixture in
``benchmarks/conftest.py`` snapshots every live
:class:`~repro.netsim.network.Network` (stats, telemetry, sim clock)
when a bench starts, and :func:`emit` charges the record with exactly
what happened since -- memoised networks shared across benches
therefore do not leak counts between records.  All deterministic
fields of a record are byte-stable across same-seed runs; wall-clock
durations live only under keys prefixed ``wall`` so trajectories can
be compared modulo wall time (``bench_report.strip_wall``).
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np

OUT_DIR = pathlib.Path(__file__).parent / "out"

SCHEMA_VERSION = 1

#: snapshot of every live network taken when the current bench started
#: (installed by the autouse fixture in ``benchmarks/conftest.py``)
_BASELINE = None


def begin_measurement() -> None:
    """Snapshot all live networks; deltas are charged by :func:`emit`."""
    global _BASELINE
    from repro.netsim.network import Network

    _BASELINE = {
        "wall_start": time.perf_counter(),
        "networks": {
            net.created_seq: {
                "stats": net.stats.snapshot(),
                "telemetry": net.telemetry.snapshot(),
                "sim_ms": net.clock.now,
            }
            for net in Network.instances()
        },
    }


def end_measurement() -> None:
    global _BASELINE
    _BASELINE = None


def measure() -> dict:
    """What every live network did since :func:`begin_measurement`.

    Networks created mid-bench (absent from the baseline) contribute
    their full totals.  Aggregation order is creation order, so float
    sums are deterministic.
    """
    from repro.core.telemetry import diff_snapshots
    from repro.netsim.network import Network

    baseline = _BASELINE or {"wall_start": None, "networks": {}}
    message_stats: dict = {}
    events: dict = {}
    counters: dict = {}
    phases: dict = {}
    sim_ms = 0.0
    for net in Network.instances():
        base = baseline["networks"].get(net.created_seq, {})
        for category, n in net.stats.delta(base.get("stats", {})).items():
            message_stats[category] = message_stats.get(category, 0) + n
        delta = diff_snapshots(net.telemetry.snapshot(), base.get("telemetry"))
        for kind, n in delta["events"].items():
            events[kind] = events.get(kind, 0) + n
        for name, n in delta["counters"].items():
            counters[name] = counters.get(name, 0) + n
        for name, acc in delta["phases"].items():
            slot = phases.setdefault(
                name, {"sim_ms": 0.0, "entries": 0, "wall_s": 0.0}
            )
            for part in slot:
                slot[part] += acc[part]
        sim_ms += net.clock.now - base.get("sim_ms", 0.0)
    wall_start = baseline.get("wall_start")
    wall_s = (
        time.perf_counter() - wall_start if wall_start is not None else 0.0
    )
    return {
        "message_stats": message_stats,
        "telemetry": {
            "counters": counters,
            "events": events,
            "phases": phases,
        },
        "sim_ms": sim_ms,
        "wall_s": wall_s,
    }


def _jsonable(value):
    """Strict-JSON clone: numpy scalars unboxed, non-finite floats -> None."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    return value


def summarize_rows(rows, seed: int = 0) -> dict:
    """Mean + bootstrap 95% CI per numeric column of ``rows``.

    None and non-finite entries are skipped; all-missing columns are
    omitted.  The bootstrap draws from one Generator seeded with
    ``seed``, so same-seed runs produce identical intervals.
    """
    from repro.core.stats import bootstrap_ci

    if not rows:
        return {}
    rng = np.random.default_rng(seed)
    summary: dict = {}
    columns: list = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    for column in columns:
        values = []
        for row in rows:
            value = row.get(column)
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                continue
            value = float(value)
            if math.isfinite(value):
                values.append(value)
        if not values:
            continue
        low, high = bootstrap_ci(values, rng=rng)
        summary[column] = {
            "mean": float(np.mean(values)),
            "lo": low,
            "hi": high,
            "n": len(values),
        }
    return summary


def canonical_json(record) -> str:
    """Stable serialisation: sorted keys, 2-space indent, strict floats."""
    return json.dumps(
        _jsonable(record), sort_keys=True, indent=2, allow_nan=False
    ) + "\n"


def emit(
    name: str,
    title: str,
    body: str,
    rows=None,
    params: dict = None,
    seed: int = 0,
) -> str:
    """Print and persist one figure's regenerated series.

    Besides the legacy ``<name>.txt`` table, writes ``<name>.json``
    with the full perf record when ``rows`` are given (the usual
    case); benches pass the runner parameters that shaped the cell in
    ``params``.
    """
    text = f"== {title} ==\n{body}\n"
    print(f"\n{text}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text)
    if rows is not None:
        record = {
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "title": title,
            "params": dict(params or {}),
            "seed": seed,
            "rows": list(rows),
            "summary": summarize_rows(rows, seed=seed),
        }
        record.update(measure())
        (OUT_DIR / f"{name}.json").write_text(canonical_json(record))
    return text
