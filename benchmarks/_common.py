"""Shared output plumbing for the figure benchmarks.

Each bench regenerates one paper figure's rows, prints them (visible
with ``pytest benchmarks/ -s`` or on the captured-output section of a
failure) and writes them under ``benchmarks/out/`` so EXPERIMENTS.md
can be assembled from the files.  The ``benchmark`` fixture times a
representative unit of work; the full series is computed exactly once
per run.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, title: str, body: str) -> str:
    """Print and persist one figure's regenerated series."""
    text = f"== {title} ==\n{body}\n"
    print(f"\n{text}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text)
    return text
