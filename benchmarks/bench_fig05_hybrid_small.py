"""Figure 5: the hybrid search on tsk-small (dense stubs).

Paper shape: dense edge networks are harder -- the hybrid needs more
probes than on tsk-large to approach the ideal, but still improves
quickly with the probe budget.
"""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig03_06_nn


def bench_fig05_hybrid_tsk_small(benchmark):
    scale = current_scale()
    rows = fig03_06_nn.run("tsk-small", scale=scale, methods=("lmk+rtt",))
    emit(
        "fig05_hybrid_small",
        f"Figure 5: hybrid stretch vs probes, tsk-small ({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "topology": "tsk-small",
            "methods": ["lmk+rtt"],
        },
    )

    testbed = fig03_06_nn.NearestNeighborTestbed(
        "tsk-small", "generated", scale.topo_scale, seed=0
    )
    queries = testbed.sample_queries(4)

    def unit():
        for q in queries:
            testbed.hybrid_curve(int(q), budget=16)

    benchmark(unit)

    ordered = sorted(rows, key=lambda r: r["probes"])
    assert ordered[-1]["mean_stretch"] <= ordered[0]["mean_stretch"]
    assert ordered[-1]["mean_stretch"] < 2.0  # near-ideal with the full budget
