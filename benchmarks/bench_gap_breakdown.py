"""§5.4: breakdown of the two performance gaps.

Paper shape: shortest path (1.0) -> optimal-under-prefix-constraint
(the structural gap, tens of percent) -> landmark+RTT soft-state (the
information gap on top) -> random baseline far above; soft-state cuts
a large fraction of the random baseline's latency.
"""

import pytest

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig10_13_stretch_rtts


@pytest.mark.parametrize("topology", ["tsk-large", "tsk-small"])
def bench_gap_breakdown(benchmark, topology):
    scale = current_scale()
    gaps = fig10_13_stretch_rtts.gap_breakdown(
        topology=topology, latency="manual", scale=scale
    )
    emit(
        f"gap_breakdown_{topology}",
        f"§5.4 gap breakdown, {topology}, manual latencies ({scale.name})",
        format_table([gaps]),
        rows=[gaps],
        params={"scale": scale.name, "topology": topology, "latency": "manual"},
    )

    overlay = fig10_13_stretch_rtts.build_overlay(
        topology, "manual", num_nodes=min(96, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    benchmark(lambda: overlay.measure_stretch(samples=48))

    assert gaps["structural_gap"] > 0        # the prefix constraint costs
    assert gaps["information_gap"] > -0.2    # soft-state ~never beats oracle
    assert gaps["softstate_vs_random_saving"] > 0.15
