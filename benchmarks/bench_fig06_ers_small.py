"""Figure 6: expanding-ring search alone on tsk-small.

Paper shape: same blindness as Figure 4; with dense stubs the rings
contain closer nodes so absolute stretch is lower than on tsk-large,
but convergence still takes hundreds-to-thousands of probes.
"""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig03_06_nn


def bench_fig06_ers_tsk_small(benchmark):
    scale = current_scale()
    rows = fig03_06_nn.run("tsk-small", scale=scale, methods=("ers",))
    emit(
        "fig06_ers_small",
        f"Figure 6: ERS stretch vs probes, tsk-small ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "topology": "tsk-small", "methods": ["ers"]},
    )

    testbed = fig03_06_nn.NearestNeighborTestbed(
        "tsk-small", "generated", scale.topo_scale, seed=0
    )
    queries = testbed.sample_queries(2)

    def unit():
        for q in queries:
            testbed.ers_curve(int(q), budget=min(scale.ers_budgets[-1], 200))

    benchmark(unit)

    ordered = sorted(rows, key=lambda r: r["probes"])
    assert ordered[-1]["mean_stretch"] <= ordered[0]["mean_stretch"]
