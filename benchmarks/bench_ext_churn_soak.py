"""Churn-soak benchmark: self-stabilization bounds for both modes.

Not a paper figure -- this records the self-stabilization trajectory
of the recovery stack in BENCH_ext.json, at the acceptance sizes: the
simulated overlay at 1024 nodes and the live loopback cluster at 256
nodes, each put through continuous join/leave/crash (+ partition)
churn with one adversarial corruption class per epoch (scrambled
expressway tables, stale map replicas, a poisoned owner index).  Per
cell it records rounds-to-convergence under the
:func:`~repro.core.recovery.check_invariants` legitimacy predicate,
lookup availability while the damage is live, and the false-kill /
false-purge counts that must stay zero.

The sim rows run on the simulated clock and are byte-stable per seed;
every live-mode quantity that depends on wall-clock races (rounds,
availability, corruption placement, retry traffic) lives under a
``wall``-prefixed key per the trajectory contract
(``bench_report.strip_wall``).
"""

from __future__ import annotations

import asyncio

from _common import emit
from repro.core.soak import SoakConfig, run_live_soak, run_sim_soak
from repro.experiments import format_table

SIM_NODES = 1024
LIVE_NODES = 256
ROUND_BUDGET = 30
SEED = 0


def _sim_rows(record: dict) -> list:
    return [
        {
            "mode": "sim",
            "nodes": record["nodes"],
            "kind": epoch["kind"],
            "corrupted": epoch["corrupted"],
            "availability": epoch["availability"],
            "rounds_to_converge": epoch["rounds_to_converge"],
        }
        for epoch in record["epochs"]
    ]


def _live_rows(record: dict) -> list:
    return [
        {
            "mode": "live",
            "nodes": record["nodes"],
            "kind": epoch["kind"],
            "wall_corrupted": epoch["corrupted"],
            "wall_rounds_to_converge": epoch["wall_rounds_to_converge"],
        }
        for epoch in record["epochs"]
    ]


def bench_churn_soak(benchmark):
    sim = run_sim_soak(
        SoakConfig(nodes=SIM_NODES, round_budget=ROUND_BUDGET, seed=SEED)
    )
    live = asyncio.run(
        run_live_soak(
            SoakConfig(
                nodes=LIVE_NODES,
                round_budget=ROUND_BUDGET,
                lookups=2 * LIVE_NODES,
                seed=SEED,
            )
        )
    )
    rows = _sim_rows(sim) + _live_rows(live)
    emit(
        "ext_churn_soak",
        f"Churn soak: sim {SIM_NODES} + live loopback {LIVE_NODES}",
        format_table(rows),
        rows=rows,
        params={
            "sim_nodes": SIM_NODES,
            "live_nodes": LIVE_NODES,
            "round_budget": ROUND_BUDGET,
            "corrupt_fraction": 0.2,
            "sim_false_kills": sim["false_kills"],
            "sim_false_purges": sim["false_purges"],
            "sim_takeovers": sim["takeovers"],
            "wall_live_availability": live["wall_availability"],
            "wall_live_false_kills": live["false_kills"],
            "wall_live_false_purges": live["false_purges"],
            "wall_live_killed": live["killed"],
            "wall_live_takeovers": live["takeovers"],
            "wall_live_shielded": live["shielded_verdicts"],
            "wall_live_retries": live["retries"],
        },
        seed=SEED,
    )

    # the timed unit: one sim epoch at a CI-friendly size
    benchmark.pedantic(
        lambda: run_sim_soak(
            SoakConfig(nodes=64, epochs=1, lookups=32, seed=SEED)
        ),
        rounds=1,
        iterations=1,
    )

    # every corruption class heals within the round budget, both modes
    assert sim["converged"], sim["epochs"]
    assert live["converged"], live["epochs"]
    # the detector never killed a live node and the lease maintenance
    # never purged a live member's record
    assert sim["false_kills"] == 0 and sim["false_purges"] == 0
    assert live["false_kills"] == 0 and live["false_purges"] == 0
    # lookups kept landing while a third of the cluster died
    assert live["wall_availability"] > 0.0
    assert live["killed"] >= LIVE_NODES // 4
