"""Section 1 claim: Topologically-Aware CAN's layout imbalance.

Paper claim (digits restored): in a ~10k-node Topologically-Aware
CAN, ~10% of nodes can occupy 80-98% of the Cartesian space and some
nodes keep 20-30 neighbors.  Shape to reproduce: the
landmark-constrained layout concentrates the space on far fewer nodes
than a uniform CAN, and its neighbor-count tail is heavier.
"""

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import intro_tacan_imbalance


def bench_tacan_imbalance(benchmark):
    scale = current_scale()
    result = intro_tacan_imbalance.run(scale=scale, num_landmarks=5)
    rows = [
        {"layout": "topologically-aware CAN", **result["tacan"]},
        {"layout": "uniform CAN", **result["uniform"]},
    ]
    emit(
        "intro_tacan_imbalance",
        f"§1: zone-volume concentration, N={result['N']} ({scale.name})",
        format_table(rows),
        rows=rows,
        params={"scale": scale.name, "num_landmarks": 5, "N": result["N"]},
    )

    network = intro_tacan_imbalance.get_network(
        "tsk-large", "generated", scale.topo_scale, 0
    )
    benchmark(
        lambda: intro_tacan_imbalance.build_tacan(network, 64, num_landmarks=4)
    )

    assert (
        result["tacan"]["nodes_for_80pct_space"]
        < result["uniform"]["nodes_for_80pct_space"]
    )
    assert result["tacan"]["max_neighbors"] >= result["uniform"]["max_neighbors"] - 1
