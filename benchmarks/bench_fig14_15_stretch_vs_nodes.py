"""Figures 14-15: routing stretch vs overlay size, soft-state vs random.

Paper shape: the soft-state overlay beats random neighbor selection
at every size on both topologies (a 20-50% latency saving), with the
relative win typically larger on tsk-small.
"""

import pytest

from _common import emit
from repro.experiments import current_scale, format_table
from repro.experiments import fig14_15_stretch_nodes


@pytest.mark.parametrize(
    "figure,latency", [("fig14", "generated"), ("fig15", "manual")]
)
def bench_stretch_vs_nodes(benchmark, figure, latency):
    scale = current_scale()
    rows = fig14_15_stretch_nodes.run(latency, scale=scale)
    emit(
        f"{figure}_stretch_vs_nodes",
        f"Figure {figure[3:]}: stretch vs overlay size, {latency} latencies "
        f"({scale.name})",
        format_table(rows),
        rows=rows,
        params={
            "scale": scale.name,
            "latency": latency,
            "node_sweep": list(scale.node_sweep),
        },
    )

    from repro.experiments.fig10_13_stretch_rtts import build_overlay

    overlay = build_overlay(
        "tsk-large", latency, num_nodes=min(128, scale.overlay_nodes),
        topo_scale=scale.topo_scale,
    )
    benchmark(lambda: overlay.measure_stretch(samples=64))

    by = {(r["topology"], r["policy"], r["N"]): r["mean_stretch"] for r in rows}
    wins = sum(
        by[(topo, "softstate", n)] < by[(topo, "random", n)]
        for topo in ("tsk-large", "tsk-small")
        for n in scale.node_sweep
    )
    total = 2 * len(scale.node_sweep)
    assert wins >= total - 1  # soft-state wins essentially everywhere
