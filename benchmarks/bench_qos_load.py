"""§6 extension: trading proximity for forwarding headroom.

Paper sketch to quantify: publishing load statistics with the
proximity records and scoring candidates by RTT x utilization lowers
the utilization tail at a small stretch cost.
"""

import numpy as np

from _common import emit
from repro.experiments import SCALES, current_scale, format_table
from repro.experiments import qos_load


def bench_qos_load_tradeoff(benchmark):
    scale = current_scale()
    seeds = (0, 1, 2)
    all_rows = []
    for seed in seeds:
        for row in qos_load.run(scale=scale, seed=seed, weights=(0.0, 0.5, 2.0)):
            all_rows.append({"seed": seed, **row})
    emit(
        "qos_load_tradeoff",
        f"§6: load-aware vs proximity-only selection ({scale.name})",
        format_table(all_rows),
        rows=all_rows,
        params={
            "scale": scale.name,
            "seeds": list(seeds),
            "weights": [0.0, 0.5, 2.0],
        },
    )

    # the timed unit is one small end-to-end cycle; a single round --
    # re-running full builds many times would dominate the suite
    benchmark.pedantic(
        lambda: qos_load.run_weight(0.0, scale=SCALES["quick"], messages=96),
        rounds=1,
        iterations=1,
    )

    tail = {w: [] for w in (0.0, 2.0)}
    for row in all_rows:
        if row["load_weight"] in tail:
            tail[row["load_weight"]].append(row["p99_utilization"])
    assert np.mean(tail[2.0]) < np.mean(tail[0.0]) * 1.05
