"""The :class:`Network` facade.

Higher layers (overlay, proximity search, soft-state) interact with
the physical network exclusively through this class:

* ``rtt(u, v)`` -- a *measured* round-trip time.  Every call is
  accounted in :class:`MessageStats` under a caller-supplied category,
  because the paper's central trade-off is measurement cost versus
  proximity accuracy.
* ``latency(u, v)`` -- the oracle's one-way latency, used for metrics
  (stretch denominators, path accumulation) without being charged as
  traffic.
* ``sample_hosts`` -- pick physical nodes to host overlay nodes
  (stub/edge nodes by default, as overlay participants are end hosts).
* ``clock`` -- the shared event scheduler.
"""

from __future__ import annotations

import itertools
import weakref
from collections import Counter

import numpy as np

from repro.netsim.distance import DistanceOracle
from repro.netsim.events import EventScheduler
from repro.netsim.faults import FaultInjector, FaultPlan
from repro.netsim.latency import LatencyModel
from repro.netsim.transit_stub import Topology


class MessageStats:
    """Categorised message/probe counters.

    A thin wrapper over :class:`collections.Counter` with snapshot /
    delta helpers so experiments can report "messages spent in this
    phase".
    """

    def __init__(self):
        self._counts = Counter()

    def count(self, category: str, n: int = 1) -> None:
        """Record ``n`` messages of ``category``."""
        self._counts[category] += n

    def get(self, category: str) -> int:
        return self._counts.get(category, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def snapshot(self) -> dict:
        """Copy of all counters."""
        return dict(self._counts)

    def delta(self, before: dict) -> dict:
        """Difference between the current counters and ``before``."""
        out = {}
        for key, value in self._counts.items():
            diff = value - before.get(key, 0)
            if diff:
                out[key] = diff
        return out

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self):
        return f"MessageStats({dict(self._counts)!r})"


class Network:
    """Simulated physical network: topology + latency model + oracle."""

    #: live instances in creation order (weakly held) -- benchmarks
    #: snapshot every network's stats/clock/telemetry around a measured
    #: block without threading the network through each runner.
    _instances = weakref.WeakSet()
    _created = itertools.count()

    def __init__(
        self,
        topology: Topology,
        latency_model: LatencyModel,
        max_cached_rows: int = 4096,
    ):
        # late import: repro.core.reliability imports repro.netsim.faults,
        # so a module-level import here would be circular
        from repro.core.telemetry import Telemetry

        self.topology = topology
        self.latency_model = latency_model
        self.oracle = DistanceOracle.from_topology(
            topology, latency_model, max_cached_rows=max_cached_rows
        )
        self.stats = MessageStats()
        self.clock = EventScheduler()
        #: structured observability channel shared by every layer above
        self.telemetry = Telemetry(clock=self.clock)
        #: armed :class:`FaultInjector`, or None for the perfect network
        self.faults = None
        self.created_seq = next(Network._created)
        Network._instances.add(self)

    @classmethod
    def instances(cls) -> list:
        """Live networks, oldest first (deterministic aggregation order)."""
        return sorted(cls._instances, key=lambda net: net.created_seq)

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    # -- fault injection ---------------------------------------------------

    def arm_faults(self, plan=None, seed: int = 0) -> FaultInjector:
        """Install (and arm) a fault injector over this network.

        ``plan`` may be a :class:`FaultPlan`, an existing
        :class:`FaultInjector`, or None for an all-defaults plan.
        While armed, :meth:`rtt` may raise
        :class:`~repro.netsim.faults.ProbeTimeout` and
        :meth:`rtt_many` reports lost probes as ``NaN``.
        """
        if isinstance(plan, FaultInjector):
            injector = plan
            injector.network = self
        else:
            injector = FaultInjector(self, plan, seed=seed)
        injector.armed = True
        self.faults = injector
        return injector

    def disarm_faults(self) -> None:
        """Return to the perfect network (keeps accumulated fault stats)."""
        if self.faults is not None:
            self.faults.armed = False
        self.faults = None

    # -- measurement (charged) -------------------------------------------

    def rtt(self, u: int, v: int, category: str = "rtt_probe") -> float:
        """Measure the RTT between hosts ``u`` and ``v`` (charged).

        With faults armed the result is a
        :class:`~repro.netsim.faults.ProbeResult` (a ``float``
        subclass) or a raised
        :class:`~repro.netsim.faults.ProbeTimeout`.
        """
        self.stats.count(category)
        telemetry = self.telemetry
        if telemetry.tracing:
            telemetry.emit("probe", category=category, u=int(u), v=int(v))
        else:
            telemetry.bump("probe")
        if self.faults is not None:
            return self.faults.probe(u, v)
        return 2.0 * self.oracle.distance(u, v)

    def rtt_many(self, u: int, hosts, category: str = "rtt_probe") -> np.ndarray:
        """Measure RTTs from ``u`` to each host in ``hosts`` (charged).

        With faults armed, lost/timed-out probes come back as ``NaN``.
        """
        return self.rtt_many_detailed(u, hosts, category=category)[0]

    def rtt_many_detailed(
        self, u: int, hosts, category: str = "rtt_probe"
    ) -> tuple:
        """Like :meth:`rtt_many`, plus a boolean latency-spike mask.

        Returns ``(rtts, spiked)``: under an armed injector ``spiked``
        flags measurements inflated by a latency-spike fault, so
        callers filling gaps (see
        :func:`repro.core.reliability.measure_vector_reliably`) can
        avoid propagating a spiked outlier as their estimate.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        self.stats.count(category, len(hosts))
        telemetry = self.telemetry
        if telemetry.tracing:
            telemetry.emit("probe", n=len(hosts), category=category, u=int(u))
        else:
            telemetry.bump("probe", len(hosts))
        if self.faults is not None:
            return self.faults.probe_many_detailed(u, hosts)
        row = self.oracle.row(u)
        return 2.0 * row[hosts].astype(np.float64), np.zeros(len(hosts), dtype=bool)

    # -- oracle access (not charged; used for ground truth / metrics) ----

    def latency(self, u: int, v: int) -> float:
        """One-way latency (ms); free, for metric computation."""
        return self.oracle.distance(u, v)

    def latencies_from(self, u: int) -> np.ndarray:
        """One-way latency from ``u`` to every physical node; free."""
        return self.oracle.row(u)

    def path_latency(self, hosts) -> float:
        """Accumulated one-way latency along a host sequence; free.

        Each distinct source's distance row is fetched once, so a long
        path costs one cached-row lookup per unique hop rather than
        one oracle round-trip per edge.
        """
        total = 0.0
        rows: dict = {}
        for a, b in zip(hosts, hosts[1:]):
            if a == b:
                continue
            row = rows.get(a)
            if row is None:
                row = rows[a] = self.oracle.row(a)
            total += float(row[b])
        return total

    # -- host management ---------------------------------------------------

    def sample_hosts(
        self, n: int, rng: np.random.Generator, stub_only: bool = True
    ) -> np.ndarray:
        """Sample ``n`` distinct physical nodes to serve as overlay hosts."""
        pool = self.topology.stub_nodes() if stub_only else np.arange(self.num_nodes)
        if n > len(pool):
            raise ValueError(f"requested {n} hosts from a pool of {len(pool)}")
        return rng.choice(pool, size=n, replace=False)
