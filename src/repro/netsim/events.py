"""A minimal discrete-event scheduler.

Soft-state expiry, periodic map polling, publish/subscribe
notification and churn traces all need a shared notion of simulated
time.  The scheduler is deliberately tiny: a heap of ``(time, seq,
callback)`` entries and a clock.  Callbacks may schedule further
events; cancelled events are dropped lazily.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: object = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventScheduler:
    """Heap-based simulated clock."""

    def __init__(self):
        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0.0
        self._frozen = 0

    def schedule(self, delay: float, callback) -> EventHandle:
        """Run ``callback()`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback) -> EventHandle:
        """Run ``callback()`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def schedule_every(self, interval: float, callback) -> EventHandle:
        """Run ``callback()`` every ``interval`` units until cancelled.

        Returns the handle of the *first* firing; cancellation is
        checked before each repeat, so cancelling the returned handle
        stops the whole series.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        event = _Event(self.now + interval, next(self._seq), None)

        def fire():
            if event.cancelled:
                return
            callback()
            if not event.cancelled:
                event.time = self.now + interval
                event.seq = next(self._seq)
                heapq.heappush(self._heap, event)

        event.callback = fire
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def advance(self, duration: float) -> None:
        """Move the clock forward *without* executing queued callbacks.

        Used for in-line waits (retry backoff, probe timeouts) that
        happen inside an event callback, where re-entering
        :meth:`run_until` would drain unrelated events early.  Events
        the clock skips over still run at the next ``run_*`` call
        (their observed time never goes backwards).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if not self._frozen:
            self.now += duration

    @contextmanager
    def frozen(self):
        """Hold the clock still across in-line :meth:`advance` calls.

        :meth:`advance` models *one* actor's in-line wait.  A burst in
        which many nodes act concurrently (every survivor repairing
        after a confirmed crash, a whole detector round of parallel
        pings) must not stack each actor's private backoff serially
        onto the shared clock -- that would inflate simulated time by
        the number of actors and starve every other timer.  Inside
        this context ``advance()`` is a no-op on ``now`` (waits stay
        visible through the retry/telemetry accounting); the caller's
        own schedule bounds the burst's duration.
        """
        self._frozen += 1
        try:
            yield
        finally:
            self._frozen -= 1

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    def run_until(self, time: float) -> int:
        """Execute all events scheduled at or before ``time``.

        Advances the clock to ``time`` and returns the number of
        callbacks executed.
        """
        executed = 0
        while self._heap and self._heap[0].time <= time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            # max(): an in-callback advance() may already have moved the
            # clock past this event's scheduled time
            self.now = max(self.now, event.time)
            event.callback()
            executed += 1
        self.now = max(self.now, time)
        return executed

    def run_for(self, duration: float) -> int:
        """Execute events during the next ``duration`` time units."""
        return self.run_until(self.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = 0
        while self._heap and executed < max_events:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = max(self.now, event.time)
            event.callback()
            executed += 1
        if self._heap and executed >= max_events:
            raise RuntimeError("event budget exhausted; runaway schedule?")
        return executed
