"""Topology serialization.

Experiments are deterministic given (config, seed), but sharing an
exact topology file is still useful -- for cross-implementation
comparisons, for archiving the topology behind a published number, or
for feeding an externally generated graph (e.g. a real GT-ITM output
converted offline) into the simulator.

Format: a single ``.npz`` holding the arrays plus a small JSON header
with the config and seed.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.netsim.transit_stub import Topology, TransitStubConfig

FORMAT_VERSION = 1


def save_topology(topology: Topology, path) -> None:
    """Write ``topology`` to ``path`` (.npz)."""
    path = pathlib.Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "seed": topology.seed,
        "config": {
            field: getattr(topology.config, field)
            for field in TransitStubConfig.__dataclass_fields__
        },
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        edges=topology.edges,
        edge_class=topology.edge_class,
        node_kind=topology.node_kind,
        transit_domain=topology.transit_domain,
        stub_domain=topology.stub_domain,
        coords=topology.coords,
    )


def load_topology(path) -> Topology:
    """Read a topology written by :func:`save_topology`."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        version = header.get("format_version")
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise ValueError(
                f"unrecognised topology format_version {version!r} "
                f"(this build writes version {FORMAT_VERSION})"
            )
        if version > FORMAT_VERSION:
            raise ValueError(
                f"topology file declares format_version {version}, newer than "
                f"the newest supported version {FORMAT_VERSION}; upgrade repro "
                f"to read it"
            )
        config = TransitStubConfig(**header["config"])
        return Topology(
            num_nodes=len(data["node_kind"]),
            edges=data["edges"],
            edge_class=data["edge_class"],
            node_kind=data["node_kind"],
            transit_domain=data["transit_domain"],
            stub_domain=data["stub_domain"],
            coords=data["coords"],
            config=config,
            seed=header["seed"],
            name=header["name"],
        )
