"""Deterministic fault injection for the simulated network.

The seed :class:`~repro.netsim.network.Network` is perfect: every RTT
probe succeeds and every routed message arrives.  The paper's
resilience story ("as nodes join (depart) or network conditions
flux") needs an adversarial substrate, so this module wraps the
network with a :class:`FaultInjector` that -- driven by a seeded RNG
and the *simulated* clock, never wall-clock time -- injects:

* **probe loss** -- a measurement simply never answers
  (``fault_probe_lost``);
* **probe timeouts** -- a latency spike pushes the answer past the
  per-probe deadline (``fault_probe_timeout``);
* **per-link latency spikes** -- the probe succeeds but reports an
  inflated RTT (``fault_latency_spike``);
* **transit-domain partitions** -- scheduled windows during which a
  set of transit domains is severed from the rest of the topology
  (``fault_partition_drop``);
* **crash-stop node failures** -- hosts marked crashed answer nothing
  until revived (``fault_crash_drop``), plus scheduled crashes of
  random overlay members via :meth:`FaultInjector.schedule_crashes`.

Every injected fault is also accounted in the network's
:class:`~repro.netsim.network.MessageStats` under its own category,
so experiments can report exactly what the fault plan did.

While an injector is armed (see :meth:`Network.arm_faults`),
``Network.rtt`` returns a :class:`ProbeResult` -- a ``float``
subclass, so existing arithmetic keeps working -- or raises
:class:`ProbeTimeout`; ``Network.rtt_many`` returns ``NaN`` for lost
probes.  Determinism: two injectors built from the same plan and seed
observe identical fault sequences for identical call sequences.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

#: stats categories an injector may charge
FAULT_CATEGORIES = (
    "fault_probe_lost",
    "fault_probe_timeout",
    "fault_latency_spike",
    "fault_partition_drop",
    "fault_crash_drop",
    "fault_message_lost",
)


class ProbeTimeout(Exception):
    """A charged probe went unanswered (lost, partitioned, or too slow)."""

    def __init__(self, u: int, v: int, reason: str = "lost", waited: float = 0.0):
        super().__init__(f"probe {u}->{v} timed out ({reason})")
        self.u = u
        self.v = v
        self.reason = reason
        #: simulated ms the prober waited before giving up
        self.waited = waited


class ProbeResult(float):
    """A measured RTT plus fault metadata.

    A ``float`` subclass so every existing caller of ``Network.rtt``
    keeps working unchanged when faults are armed.
    """

    def __new__(cls, rtt: float, spiked: bool = False, attempts: int = 1):
        self = super().__new__(cls, rtt)
        self.spiked = spiked
        self.attempts = attempts
        return self

    @property
    def rtt(self) -> float:
        return float(self)

    def __repr__(self):
        return f"ProbeResult({float(self):.3f}, spiked={self.spiked})"


@dataclass(frozen=True)
class Partition:
    """A scheduled network split isolating some transit domains.

    During ``[start, end)`` (simulated ms) traffic between a host
    inside ``domains`` and a host outside them is dropped; traffic
    with both endpoints on the same side is unaffected.
    """

    start: float
    end: float
    domains: tuple

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("partition must end after it starts")
        object.__setattr__(self, "domains", tuple(int(d) for d in self.domains))

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def severs(self, domain_a: int, domain_b: int) -> bool:
        return (domain_a in self.domains) != (domain_b in self.domains)


@dataclass(frozen=True)
class FaultPlan:
    """Knobs describing which faults to inject and how often.

    All probabilities are per-probe / per-hop; ``partitions`` and
    ``crash_times`` are schedules over simulated time.
    """

    #: probability a charged RTT probe is silently lost
    probe_loss_rate: float = 0.0
    #: probability one overlay forwarding hop loses the message
    message_loss_rate: float = 0.0
    #: probability a probe's RTT is inflated by ``latency_spike_factor``
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 4.0
    #: per-probe deadline (ms); a (possibly spiked) RTT above it times out
    probe_timeout_ms: float = math.inf
    #: scheduled :class:`Partition` windows
    partitions: tuple = ()
    #: simulated times at which one random overlay member crash-stops
    #: (consumed by :meth:`FaultInjector.schedule_crashes`)
    crash_times: tuple = ()

    def __post_init__(self):
        for name in ("probe_loss_rate", "message_loss_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.latency_spike_factor < 1.0:
            raise ValueError("latency_spike_factor must be >= 1")
        if self.probe_timeout_ms <= 0:
            raise ValueError("probe_timeout_ms must be positive")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(
            self, "crash_times", tuple(float(t) for t in self.crash_times)
        )

    def with_loss(self, rate: float) -> "FaultPlan":
        """Convenience: same plan with probe *and* message loss ``rate``."""
        return replace(self, probe_loss_rate=rate, message_loss_rate=rate)


class FaultInjector:
    """Applies a :class:`FaultPlan` to one network, deterministically.

    The injector draws from its own ``numpy`` generator in call order;
    no wall-clock state is consulted, so a run is a pure function of
    (plan, seed, call sequence).
    """

    def __init__(self, network, plan: FaultPlan = None, seed: int = 0):
        self.network = network
        self.plan = plan if plan is not None else FaultPlan()
        self.rng = np.random.default_rng(seed)
        self.armed = False
        #: hosts whose processes crash-stopped (revived on host reuse)
        self.crashed_hosts: set = set()
        #: per-category injected-fault tally (mirrors the stats categories)
        self.injected = Counter()

    # -- host lifecycle ----------------------------------------------------

    def crash_host(self, host: int) -> None:
        """Mark ``host`` crash-stopped: all its traffic now times out."""
        self.crashed_hosts.add(int(host))

    def revive_host(self, host: int) -> None:
        """A new process started on ``host``; traffic flows again."""
        self.crashed_hosts.discard(int(host))

    def schedule_crashes(self, overlay, times=None) -> int:
        """Arm the plan's crash-stop schedule against ``overlay``.

        At each time one random member is removed *ungracefully* (its
        soft-state stays stale, its host stops answering).  Victims
        are drawn from the injector's RNG so the schedule is part of
        the deterministic fault sequence.  Returns the number of
        crashes scheduled.
        """
        times = self.plan.crash_times if times is None else times
        clock = self.network.clock

        def crash():
            members = sorted(overlay.node_ids)
            if len(members) <= 1:
                return
            victim = int(members[int(self.rng.integers(0, len(members)))])
            overlay.remove_node(victim, graceful=False)

        for time in times:
            clock.schedule_at(float(time), crash)
        return len(times)

    # -- partition visibility ----------------------------------------------

    def active_partitions(self, now: float = None) -> list:
        """Partitions currently severing traffic (at ``now``).

        Callers -- the failure detector, recovery, experiments -- use
        this to *react* to partition windows (e.g. hold a death verdict
        for a node cut off by an active partition) instead of blindly
        interpreting probe silence.
        """
        if now is None:
            now = self.network.clock.now
        return [p for p in self.plan.partitions if p.active(now)]

    def watch_partitions(self, callback) -> int:
        """Schedule ``callback(partition)`` at each partition's end.

        Fires on the network's simulated clock when the window closes
        (the moment traffic flows again), so recovery can run its
        partition-heal reconciliation exactly once per window instead
        of polling.  Windows already over are not watched.  Returns
        the number of windows armed.
        """
        clock = self.network.clock
        armed = 0
        for partition in self.plan.partitions:
            if partition.end <= clock.now:
                continue
            clock.schedule_at(
                partition.end, lambda p=partition: callback(p)
            )
            armed += 1
        return armed

    def severed(self, u: int, v: int, now: float = None) -> bool:
        """Would an active partition drop traffic between ``u`` and ``v``?"""
        domains = self.network.topology.transit_domain
        domain_u, domain_v = int(domains[u]), int(domains[v])
        return any(
            p.severs(domain_u, domain_v) for p in self.active_partitions(now)
        )

    # -- fault decisions ---------------------------------------------------

    def _inject(self, category: str) -> None:
        self.injected[category] += 1
        self.network.stats.count(category)
        self.network.telemetry.emit("fault", category=category)

    def _blocked(self, u: int, v: int):
        """Structural reason ``u``/``v`` cannot talk right now, or None."""
        if int(u) in self.crashed_hosts or int(v) in self.crashed_hosts:
            return "fault_crash_drop"
        if self.plan.partitions:
            domains = self.network.topology.transit_domain
            now = self.network.clock.now
            domain_u, domain_v = int(domains[u]), int(domains[v])
            for partition in self.plan.partitions:
                if partition.active(now) and partition.severs(domain_u, domain_v):
                    return "fault_partition_drop"
        return None

    def probe(self, u: int, v: int) -> ProbeResult:
        """One RTT probe through the fault plan (already charged).

        Raises :class:`ProbeTimeout` when the probe is lost, crosses a
        partition, targets a crashed host, or exceeds the deadline.
        """
        plan = self.plan
        blocked = self._blocked(u, v)
        if blocked is not None:
            self._inject(blocked)
            raise ProbeTimeout(u, v, reason=blocked, waited=plan.probe_timeout_ms)
        if plan.probe_loss_rate and self.rng.random() < plan.probe_loss_rate:
            self._inject("fault_probe_lost")
            raise ProbeTimeout(u, v, reason="lost", waited=plan.probe_timeout_ms)
        rtt = 2.0 * self.network.oracle.distance(u, v)
        spiked = False
        if plan.latency_spike_rate and self.rng.random() < plan.latency_spike_rate:
            rtt *= plan.latency_spike_factor
            spiked = True
            self._inject("fault_latency_spike")
        if rtt > plan.probe_timeout_ms:
            self._inject("fault_probe_timeout")
            raise ProbeTimeout(u, v, reason="timeout", waited=plan.probe_timeout_ms)
        return ProbeResult(rtt, spiked=spiked)

    def probe_many(self, u: int, hosts) -> np.ndarray:
        """Probe each host; lost probes surface as ``NaN`` entries."""
        return self.probe_many_detailed(u, hosts)[0]

    def probe_many_detailed(self, u: int, hosts) -> tuple:
        """Probe each host; returns ``(rtts, spiked)``.

        ``rtts`` holds ``NaN`` for lost probes; ``spiked`` flags
        answers inflated by a latency-spike fault.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        out = np.empty(len(hosts), dtype=np.float64)
        spiked = np.zeros(len(hosts), dtype=bool)
        for i, host in enumerate(hosts):
            try:
                result = self.probe(u, int(host))
                out[i] = result
                spiked[i] = result.spiked
            except ProbeTimeout:
                out[i] = np.nan
        return out, spiked

    def deliver(self, u: int, v: int) -> bool:
        """Would one overlay forwarding hop ``u -> v`` arrive?"""
        blocked = self._blocked(u, v)
        if blocked is not None:
            self._inject(blocked)
            return False
        if (
            self.plan.message_loss_rate
            and self.rng.random() < self.plan.message_loss_rate
        ):
            self._inject("fault_message_lost")
            return False
        return True

    # -- diagnostics -------------------------------------------------------

    def injected_total(self) -> int:
        return sum(self.injected.values())

    def __repr__(self):
        return (
            f"FaultInjector(armed={self.armed}, "
            f"crashed={len(self.crashed_hosts)}, injected={dict(self.injected)!r})"
        )
