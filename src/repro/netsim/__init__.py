"""Simulated physical network substrate.

This package replaces the paper's GT-ITM topologies and live RTT
measurements with an in-process equivalent:

* :mod:`repro.netsim.transit_stub` -- a seedable transit-stub topology
  generator with the same structural knobs GT-ITM exposes (transit
  domains, transit nodes per domain, stub domains per transit node,
  nodes per stub domain, extra cross links).
* :mod:`repro.netsim.latency` -- link latency models: planar
  distance-derived weights (GT-ITM's default behaviour), the paper's
  manual class-based latencies, and a noise wrapper that can violate
  the triangle inequality.
* :mod:`repro.netsim.distance` -- a cached shortest-path distance
  oracle built on scipy's sparse Dijkstra.
* :mod:`repro.netsim.network` -- the :class:`Network` facade used by
  every higher layer: RTT probing (with message accounting), host
  sampling and an event clock.
* :mod:`repro.netsim.events` -- a tiny discrete-event scheduler used
  for soft-state expiry, publish/subscribe and churn experiments.
* :mod:`repro.netsim.faults` -- deterministic fault injection (probe
  loss, timeouts, latency spikes, transit-domain partitions,
  crash-stop failures) armed via :meth:`Network.arm_faults`.
"""

from repro.netsim.distance import DistanceOracle
from repro.netsim.events import EventScheduler
from repro.netsim.faults import (
    FAULT_CATEGORIES,
    FaultInjector,
    FaultPlan,
    Partition,
    ProbeResult,
    ProbeTimeout,
)
from repro.netsim.latency import (
    GeneratedLatencyModel,
    LatencyModel,
    ManualLatencyModel,
    NoisyLatencyModel,
    latency_model_from_name,
)
from repro.netsim.network import MessageStats, Network
from repro.netsim.serialize import load_topology, save_topology
from repro.netsim.transit_stub import (
    LinkClass,
    NodeKind,
    Topology,
    TransitStubConfig,
    generate_transit_stub,
)

__all__ = [
    "DistanceOracle",
    "EventScheduler",
    "FAULT_CATEGORIES",
    "FaultInjector",
    "FaultPlan",
    "GeneratedLatencyModel",
    "LatencyModel",
    "LinkClass",
    "ManualLatencyModel",
    "MessageStats",
    "Network",
    "NodeKind",
    "NoisyLatencyModel",
    "Partition",
    "ProbeResult",
    "ProbeTimeout",
    "Topology",
    "TransitStubConfig",
    "generate_transit_stub",
    "latency_model_from_name",
    "load_topology",
    "save_topology",
]
