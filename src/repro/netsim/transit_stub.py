"""Transit-stub topology generation.

The paper evaluates on two GT-ITM transit-stub topologies of roughly
10,000 nodes each:

* ``tsk-large`` -- 8 transit domains, a large backbone, sparse stubs;
* ``tsk-small`` -- 2 transit domains, a small backbone, dense stubs.

GT-ITM is an external C program, so we re-implement the transit-stub
construction it performs:

1. Transit *domains* are scattered on a plane.  Within a domain the
   transit nodes form a connected random graph (random spanning tree
   plus extra edges).
2. Domains are interconnected by cross-transit links: a spanning tree
   over domains plus optional extra domain-to-domain links, each
   realised as a link between random transit nodes of the two domains.
3. Every transit node sponsors a number of *stub domains*.  A stub
   domain is a connected random graph of stub nodes; its gateway node
   links to the sponsoring transit node.
4. Optional extras mirror GT-ITM's knobs: multi-homed stubs (a second
   transit-stub link from a random stub node) and cross-stub links
   between random nodes of different stub domains.

Every node receives planar coordinates (domain centres scattered over
the plane, members jittered around them) so the distance-derived
latency model in :mod:`repro.netsim.latency` can mimic GT-ITM's
default latency assignment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class NodeKind(enum.IntEnum):
    """Role of a physical node in the transit-stub hierarchy."""

    TRANSIT = 0
    STUB = 1


class LinkClass(enum.IntEnum):
    """Classification of a physical link, used by latency models."""

    CROSS_TRANSIT = 0  # transit nodes in different transit domains
    INTRA_TRANSIT = 1  # transit nodes in the same transit domain
    TRANSIT_STUB = 2  # transit node <-> stub node
    INTRA_STUB = 3  # stub nodes in the same stub domain
    CROSS_STUB = 4  # stub nodes in different stub domains


@dataclass(frozen=True)
class TransitStubConfig:
    """Structural knobs of a transit-stub topology.

    The defaults reproduce the paper's ``tsk-large`` at full scale;
    use :meth:`tsk_large` / :meth:`tsk_small` for the named presets.
    """

    transit_domains: int = 8
    transit_nodes_per_domain: int = 10
    stubs_per_transit_node: int = 10
    nodes_per_stub: int = 12
    #: probability of an extra intra-transit edge beyond the spanning tree
    extra_transit_edge_prob: float = 0.4
    #: probability of an extra intra-stub edge beyond the spanning tree
    extra_stub_edge_prob: float = 0.2
    #: number of extra cross-transit (domain-to-domain) links beyond the tree
    extra_domain_links: int = 4
    #: fraction of stub domains that get a second transit attachment
    multihome_fraction: float = 0.0
    #: number of random stub-to-stub cross links
    cross_stub_links: int = 0

    @property
    def total_nodes(self) -> int:
        """Number of nodes the generated topology will contain."""
        per_transit_node = 1 + self.stubs_per_transit_node * self.nodes_per_stub
        return self.transit_domains * self.transit_nodes_per_domain * per_transit_node

    @classmethod
    def tsk_large(cls, scale: float = 1.0) -> "TransitStubConfig":
        """Large backbone, sparse edge network (~9.7k nodes at scale 1).

        ``scale`` < 1 shrinks the topology roughly proportionally while
        preserving its shape; used by the ``quick`` experiment preset.
        """
        return cls(
            transit_domains=max(2, round(8 * min(1.0, scale * 2))),
            transit_nodes_per_domain=max(3, round(10 * scale)),
            stubs_per_transit_node=max(2, round(10 * scale)),
            nodes_per_stub=max(3, round(12 * scale)),
        )

    @classmethod
    def tsk_small(cls, scale: float = 1.0) -> "TransitStubConfig":
        """Small backbone, dense edge network (~10k nodes at scale 1)."""
        return cls(
            transit_domains=2,
            transit_nodes_per_domain=max(3, round(10 * scale)),
            stubs_per_transit_node=max(2, round(10 * scale)),
            nodes_per_stub=max(5, round(50 * scale)),
        )


@dataclass
class Topology:
    """An undirected physical network with transit-stub annotations.

    Attributes
    ----------
    num_nodes:
        Total number of physical nodes.
    edges:
        ``(E, 2)`` int array of undirected edges, each listed once.
    edge_class:
        ``(E,)`` array of :class:`LinkClass` values.
    node_kind:
        ``(N,)`` array of :class:`NodeKind` values.
    transit_domain:
        ``(N,)`` transit-domain id of each node (for a stub node, the
        domain of its sponsoring transit node).
    stub_domain:
        ``(N,)`` global stub-domain id, ``-1`` for transit nodes.
    coords:
        ``(N, 2)`` planar coordinates used by the generated latency model.
    """

    num_nodes: int
    edges: np.ndarray
    edge_class: np.ndarray
    node_kind: np.ndarray
    transit_domain: np.ndarray
    stub_domain: np.ndarray
    coords: np.ndarray
    config: TransitStubConfig
    seed: int
    name: str = "transit-stub"
    _stub_nodes: np.ndarray = field(default=None, repr=False)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def stub_nodes(self) -> np.ndarray:
        """Ids of all stub (edge) nodes, the natural overlay hosts."""
        if self._stub_nodes is None:
            self._stub_nodes = np.flatnonzero(self.node_kind == NodeKind.STUB)
        return self._stub_nodes

    def transit_nodes(self) -> np.ndarray:
        """Ids of all transit (backbone) nodes."""
        return np.flatnonzero(self.node_kind == NodeKind.TRANSIT)

    def classify_edges(self) -> dict:
        """Histogram of edge counts per :class:`LinkClass`."""
        classes, counts = np.unique(self.edge_class, return_counts=True)
        return {LinkClass(c): int(n) for c, n in zip(classes, counts)}

    def degree(self) -> np.ndarray:
        """Per-node degree."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg


def _connected_random_graph(
    node_ids: list, extra_edge_prob: float, rng: np.random.Generator
) -> list:
    """Edges of a connected random graph over ``node_ids``.

    A random spanning tree (random attachment order) guarantees
    connectivity; each non-tree pair is then added independently with
    ``extra_edge_prob``.
    """
    n = len(node_ids)
    if n <= 1:
        return []
    order = list(node_ids)
    rng.shuffle(order)
    edges = []
    tree_pairs = set()
    for i in range(1, n):
        j = int(rng.integers(0, i))
        a, b = order[j], order[i]
        edges.append((a, b))
        tree_pairs.add((min(a, b), max(a, b)))
    if extra_edge_prob > 0 and n > 2:
        for i in range(n):
            for j in range(i + 1, n):
                a, b = node_ids[i], node_ids[j]
                if (min(a, b), max(a, b)) in tree_pairs:
                    continue
                if rng.random() < extra_edge_prob:
                    edges.append((a, b))
    return edges


def generate_transit_stub(
    config: TransitStubConfig, seed: int = 0, name: str = None
) -> Topology:
    """Generate a transit-stub :class:`Topology` from ``config``.

    The construction is fully deterministic for a given ``(config,
    seed)`` pair.  Node ids are assigned transit-domain by
    transit-domain: first the domain's transit nodes, then each transit
    node's stub domains in order.
    """
    rng = np.random.default_rng(seed)
    total = config.total_nodes
    node_kind = np.empty(total, dtype=np.int8)
    transit_domain = np.empty(total, dtype=np.int32)
    stub_domain = np.full(total, -1, dtype=np.int32)
    coords = np.zeros((total, 2), dtype=np.float64)

    edges: list = []
    edge_class: list = []

    def add_edges(pairs, cls: LinkClass) -> None:
        for a, b in pairs:
            edges.append((a, b))
            edge_class.append(int(cls))

    # --- place transit domains on the plane -----------------------------
    plane = 1000.0
    domain_centers = rng.uniform(0.12 * plane, 0.88 * plane, size=(config.transit_domains, 2))

    next_id = 0
    domain_transit_nodes: list = []
    stub_counter = 0
    gateway_of_stub: list = []  # (stub nodes list, sponsoring transit) per stub domain

    for dom in range(config.transit_domains):
        center = domain_centers[dom]
        t_ids = list(range(next_id, next_id + config.transit_nodes_per_domain))
        next_id += config.transit_nodes_per_domain
        domain_transit_nodes.append(t_ids)
        for t in t_ids:
            node_kind[t] = NodeKind.TRANSIT
            transit_domain[t] = dom
            coords[t] = center + rng.uniform(-50.0, 50.0, size=2)
        add_edges(
            _connected_random_graph(t_ids, config.extra_transit_edge_prob, rng),
            LinkClass.INTRA_TRANSIT,
        )

        # stub domains hanging off each transit node
        for t in t_ids:
            for _ in range(config.stubs_per_transit_node):
                s_ids = list(range(next_id, next_id + config.nodes_per_stub))
                next_id += config.nodes_per_stub
                stub_center = coords[t] + rng.uniform(-15.0, 15.0, size=2)
                for s in s_ids:
                    node_kind[s] = NodeKind.STUB
                    transit_domain[s] = dom
                    stub_domain[s] = stub_counter
                    coords[s] = stub_center + rng.uniform(-5.0, 5.0, size=2)
                add_edges(
                    _connected_random_graph(s_ids, config.extra_stub_edge_prob, rng),
                    LinkClass.INTRA_STUB,
                )
                gateway = s_ids[int(rng.integers(0, len(s_ids)))]
                add_edges([(t, gateway)], LinkClass.TRANSIT_STUB)
                gateway_of_stub.append((s_ids, t))
                stub_counter += 1

    # --- interconnect transit domains ------------------------------------
    if config.transit_domains > 1:
        dom_order = list(range(config.transit_domains))
        rng.shuffle(dom_order)
        linked = set()

        def link_domains(d1: int, d2: int) -> None:
            a = domain_transit_nodes[d1][int(rng.integers(0, len(domain_transit_nodes[d1])))]
            b = domain_transit_nodes[d2][int(rng.integers(0, len(domain_transit_nodes[d2])))]
            add_edges([(a, b)], LinkClass.CROSS_TRANSIT)
            linked.add((min(d1, d2), max(d1, d2)))

        for i in range(1, config.transit_domains):
            j = int(rng.integers(0, i))
            link_domains(dom_order[j], dom_order[i])
        attempts = 0
        added = 0
        while added < config.extra_domain_links and attempts < 50 * (config.extra_domain_links + 1):
            attempts += 1
            d1, d2 = rng.integers(0, config.transit_domains, size=2)
            d1, d2 = int(d1), int(d2)
            if d1 == d2 or (min(d1, d2), max(d1, d2)) in linked:
                continue
            link_domains(d1, d2)
            added += 1

    # --- optional extras: multi-homing and cross-stub links --------------
    if config.multihome_fraction > 0:
        all_transit = [t for ts in domain_transit_nodes for t in ts]
        for s_ids, home_transit in gateway_of_stub:
            if rng.random() < config.multihome_fraction:
                other = all_transit[int(rng.integers(0, len(all_transit)))]
                if other != home_transit:
                    host = s_ids[int(rng.integers(0, len(s_ids)))]
                    add_edges([(other, host)], LinkClass.TRANSIT_STUB)

    for _ in range(config.cross_stub_links):
        (s1, _t1), (s2, _t2) = (
            gateway_of_stub[int(rng.integers(0, len(gateway_of_stub)))],
            gateway_of_stub[int(rng.integers(0, len(gateway_of_stub)))],
        )
        if s1 is s2:
            continue
        a = s1[int(rng.integers(0, len(s1)))]
        b = s2[int(rng.integers(0, len(s2)))]
        add_edges([(a, b)], LinkClass.CROSS_STUB)

    edges_arr = np.asarray(edges, dtype=np.int64)
    # Deduplicate (spanning-tree + random extras can in principle collide
    # with multihome/cross-stub additions).
    key = edges_arr.min(axis=1) * total + edges_arr.max(axis=1)
    _, keep = np.unique(key, return_index=True)
    keep.sort()
    edges_arr = edges_arr[keep]
    class_arr = np.asarray(edge_class, dtype=np.int8)[keep]

    return Topology(
        num_nodes=total,
        edges=edges_arr,
        edge_class=class_arr,
        node_kind=node_kind,
        transit_domain=transit_domain,
        stub_domain=stub_domain,
        coords=coords,
        config=config,
        seed=seed,
        name=name or "transit-stub",
    )
