"""Cached shortest-path distance oracle.

Every "RTT measurement" in the simulation bottoms out here: the
latency between two physical nodes is the weighted shortest-path
distance over the topology.  The oracle keeps an LRU cache of
single-source distance rows and supports bulk multi-source queries
(used to precompute the overlay-host distance matrix) through scipy's
C Dijkstra implementation.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.netsim.latency import LatencyModel
from repro.netsim.transit_stub import Topology


class DistanceOracle:
    """Shortest-path distances over a weighted undirected graph.

    Parameters
    ----------
    graph:
        ``(N, N)`` scipy CSR adjacency matrix with symmetric weights.
    max_cached_rows:
        Maximum number of single-source rows retained (LRU).
    """

    def __init__(self, graph: csr_matrix, max_cached_rows: int = 4096):
        self.graph = graph
        self.num_nodes = graph.shape[0]
        self.max_cached_rows = max_cached_rows
        self._rows: OrderedDict = OrderedDict()

    @classmethod
    def from_topology(
        cls, topology: Topology, latency_model: LatencyModel, **kwargs
    ) -> "DistanceOracle":
        """Build an oracle from a topology and a latency model."""
        w = latency_model.weights(topology)
        u, v = topology.edges[:, 0], topology.edges[:, 1]
        n = topology.num_nodes
        graph = csr_matrix(
            (np.concatenate([w, w]), (np.concatenate([u, v]), np.concatenate([v, u]))),
            shape=(n, n),
        )
        return cls(graph, **kwargs)

    def is_connected(self) -> bool:
        """True if the underlying graph has a single component."""
        n_components, _ = connected_components(self.graph, directed=False)
        return n_components == 1

    def row(self, source: int) -> np.ndarray:
        """Distances from ``source`` to every node (float32, read-only)."""
        source = int(source)
        cached = self._rows.get(source)
        if cached is not None:
            self._rows.move_to_end(source)
            return cached
        dist = dijkstra(self.graph, directed=False, indices=source)
        dist = dist.astype(np.float32)
        dist.flags.writeable = False
        self._rows[source] = dist
        if len(self._rows) > self.max_cached_rows:
            self._rows.popitem(last=False)
        return dist

    def rows(self, sources) -> np.ndarray:
        """Distances from each of ``sources`` to every node.

        Bulk variant of :meth:`row` that shares the LRU row cache both
        ways: rows already cached are reused (Dijkstra runs only for
        the misses) and freshly computed rows are inserted, so later
        :meth:`row`/:meth:`distance` calls for the same sources are
        cache hits.  The returned matrix is a private writable copy.
        """
        sources = np.asarray(sources, dtype=np.int64)
        unique = []
        seen = set()
        for s in sources:
            s = int(s)
            if s not in seen:
                seen.add(s)
                unique.append(s)
        have: dict = {}
        missing = []
        for s in unique:
            cached = self._rows.get(s)
            if cached is not None:
                self._rows.move_to_end(s)
                have[s] = cached
            else:
                missing.append(s)
        if missing:
            dist = dijkstra(
                self.graph, directed=False, indices=np.asarray(missing, dtype=np.int64)
            )
            dist = np.atleast_2d(dist).astype(np.float32)
            for s, fresh in zip(missing, dist):
                fresh = fresh.copy()  # detach from the bulk matrix
                fresh.flags.writeable = False
                have[s] = fresh
                self._rows[s] = fresh
                if len(self._rows) > self.max_cached_rows:
                    self._rows.popitem(last=False)
        return np.vstack([have[int(s)] for s in sources])

    def distance(self, u: int, v: int) -> float:
        """One-way latency (ms) between physical nodes ``u`` and ``v``."""
        if u == v:
            return 0.0
        cached = self._rows.get(u)
        if cached is not None:
            self._rows.move_to_end(u)
            return float(cached[v])
        return float(self.row(u)[v])

    def pairwise(self, hosts) -> np.ndarray:
        """Dense ``(H, H)`` distance matrix among ``hosts``."""
        hosts = np.asarray(hosts, dtype=np.int64)
        return self.rows(hosts)[:, hosts]

    def cache_info(self) -> dict:
        """Diagnostic view of the row cache."""
        return {"rows": len(self._rows), "capacity": self.max_cached_rows}
