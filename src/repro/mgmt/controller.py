"""The controller daemon: own a running cluster, serve the management API.

Modeled on the ipop-project controller split (BaseTopologyManager's
control loop + OverlayVisualizer's periodic topology/stats push +
Watchdog's per-node health): a :class:`Controller` attaches to a
running :class:`~repro.runtime.cluster.Cluster` or
:class:`~repro.runtime.shard.ShardedCluster`, runs a refresh loop on
the same event loop, and serves:

* ``GET /topology`` -- zones, members, expressway links and shard
  assignment as versioned JSON
  (:func:`~repro.mgmt.snapshots.topology_snapshot`);
* ``GET /stats`` -- aggregated telemetry/transport/overload counters
  (:func:`~repro.mgmt.snapshots.stats_snapshot`);
* ``GET /metrics`` -- the same numbers as Prometheus text exposition
  (:func:`~repro.mgmt.prometheus.render_prometheus`);
* ``GET /health`` -- per-node SWIM verdicts, breaker states and the
  stack-wide invariant check, with the HTTP status mapped from the
  overall verdict (200 healthy, 503 degraded, 500 unhealthy);
* ``GET /`` -- the self-contained live zone-map view
  (:mod:`repro.mgmt.viz`).

``/topology`` and ``/stats`` are cached for one refresh period (the
refresh loop re-warms them); ``/health`` is always computed fresh, so
a probe observes a crash on the very next scrape.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.mgmt.prometheus import render_prometheus
from repro.mgmt.server import HttpServer, Response
from repro.mgmt.snapshots import (
    HEALTH_STATUS_CODES,
    health_snapshot,
    stats_snapshot,
    topology_snapshot,
)
from repro.mgmt.viz import render_zone_map_html


@dataclass
class ControllerConfig:
    """Knobs of the management daemon."""

    #: listen interface (keep it loopback unless you mean it)
    host: str = "127.0.0.1"
    #: listen port; 0 picks a free one (read it back off ``.port``)
    port: int = 0
    #: refresh-loop period and the /topology + /stats cache lifetime,
    #: wall seconds
    refresh_s: float = 0.5
    #: run the (O(N) and worse) stack-wide invariant check on /health;
    #: disable on very large clusters where the scrape budget matters
    check_invariants: bool = True
    #: page title + poll period of the served zone-map view
    title: str = "repro overlay — live zone map"
    viz_refresh_ms: int = 1000

    def __post_init__(self):
        if self.refresh_s <= 0:
            raise ValueError("refresh_s must be positive")
        if self.viz_refresh_ms < 50:
            raise ValueError("viz_refresh_ms must be >= 50")


class Controller:
    """HTTP management plane over one running cluster harness."""

    def __init__(self, cluster, config: ControllerConfig = None):
        self.cluster = cluster
        self.config = config if config is not None else ControllerConfig()
        self.server = HttpServer(
            {
                "/": self._serve_index,
                "/topology": self._serve_topology,
                "/stats": self._serve_stats,
                "/metrics": self._serve_metrics,
                "/health": self._serve_health,
            },
            host=self.config.host,
            port=self.config.port,
        )
        #: refresh-loop passes completed so far
        self.refreshes = 0
        self._cache: dict = {}
        self._task = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound listen port (after :meth:`start`)."""
        return self.server.port

    @property
    def url(self) -> str:
        """Base URL of the running daemon."""
        return self.server.url

    async def start(self) -> "Controller":
        """Bind the listener and arm the refresh loop (idempotent)."""
        await self.server.start()
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await self.server.close()

    async def __aenter__(self) -> "Controller":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _run(self) -> None:
        """The control loop: keep the served snapshots warm."""
        while True:
            try:
                await self.topology()
                await self.stats()
                self.refreshes += 1
                self.cluster.network.telemetry.gauge(
                    "mgmt_refreshes", self.refreshes
                )
            except Exception:
                # a torn mid-churn read must not kill the daemon; the
                # next pass (or an on-demand request) recomputes
                pass
            await asyncio.sleep(self.config.refresh_s)

    # -- snapshot access (cached) ------------------------------------------

    def _cached(self, key: str):
        entry = self._cache.get(key)
        if entry is None:
            return None
        stamp, value = entry
        if time.monotonic() - stamp > self.config.refresh_s:
            return None
        return value

    def _store(self, key: str, value):
        self._cache[key] = (time.monotonic(), value)
        return value

    async def topology(self) -> dict:
        """The current ``/topology`` document (refresh-period cache)."""
        cached = self._cached("topology")
        if cached is None:
            cached = self._store("topology", topology_snapshot(self.cluster))
        return cached

    async def stats(self) -> dict:
        """The current ``/stats`` document (refresh-period cache)."""
        cached = self._cached("stats")
        if cached is None:
            cached = self._store("stats", await stats_snapshot(self.cluster))
        return cached

    async def health(self) -> dict:
        """The current ``/health`` document (never cached)."""
        return health_snapshot(
            self.cluster, run_invariants=self.config.check_invariants
        )

    # -- route handlers ----------------------------------------------------

    def _bump(self, endpoint: str) -> None:
        self.cluster.network.telemetry.bump(f"mgmt_http_{endpoint}")

    async def _serve_index(self, _request) -> Response:
        self._bump("index")
        return Response.html(
            render_zone_map_html(
                title=self.config.title, refresh_ms=self.config.viz_refresh_ms
            )
        )

    async def _serve_topology(self, _request) -> Response:
        self._bump("topology")
        return Response.json(await self.topology())

    async def _serve_stats(self, _request) -> Response:
        self._bump("stats")
        return Response.json(await self.stats())

    async def _serve_metrics(self, _request) -> Response:
        self._bump("metrics")
        stats = await self.stats()
        health = await self.health()
        return Response.text(render_prometheus(stats, health))

    async def _serve_health(self, _request) -> Response:
        self._bump("health")
        health = await self.health()
        return Response.json(
            health, status=HEALTH_STATUS_CODES[health["status"]]
        )
