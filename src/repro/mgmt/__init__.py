"""Management plane: controller daemon, HTTP stats/health API, live viz.

The operational surface of the overlay (DESIGN.md §14).  A
:class:`~repro.mgmt.controller.Controller` attaches to a running
:class:`~repro.runtime.cluster.Cluster` or
:class:`~repro.runtime.shard.ShardedCluster` and serves, over a
stdlib asyncio HTTP server on the same event loop:

* ``/topology`` -- the CAN tessellation, expressway links and shard
  assignment as versioned, deterministic JSON;
* ``/stats`` -- aggregated telemetry / transport / overload counters;
* ``/metrics`` -- the same numbers as Prometheus text exposition;
* ``/health`` -- per-node SWIM verdicts, circuit-breaker states and
  the stack-wide invariant check, status-coded 200/503/500 for
  healthy/degraded/unhealthy;
* ``/`` -- a self-contained live zone-map view of the tessellation
  with per-zone load shading and expressway chords.

Boot one from the CLI with ``repro controller`` (or add
``--status-port`` to ``repro cluster``); gate it in CI with
``make mgmt-smoke``.
"""

from repro.mgmt.controller import Controller, ControllerConfig
from repro.mgmt.prometheus import (
    MetricFamily,
    escape_label_value,
    parse_exposition,
    render_exposition,
    render_prometheus,
    stats_families,
)
from repro.mgmt.server import HttpServer, Request, Response, http_get
from repro.mgmt.snapshots import (
    HEALTH_STATUS_CODES,
    health_snapshot,
    stats_snapshot,
    topology_snapshot,
)
from repro.mgmt.viz import render_zone_map_html

__all__ = [
    "Controller",
    "ControllerConfig",
    "HEALTH_STATUS_CODES",
    "HttpServer",
    "MetricFamily",
    "Request",
    "Response",
    "escape_label_value",
    "health_snapshot",
    "http_get",
    "parse_exposition",
    "render_exposition",
    "render_prometheus",
    "render_zone_map_html",
    "stats_families",
    "stats_snapshot",
    "topology_snapshot",
]
