"""Management-plane snapshots: topology, stats and health as plain dicts.

Everything the HTTP API serves is computed here, over the surface the
two cluster harnesses share: the single-process
:class:`~repro.runtime.cluster.Cluster` and the multi-process
:class:`~repro.runtime.shard.ShardedCluster` both expose ``config``,
``network``, ``overlay``, ``routing``, ``crashed`` and an async
``counters()`` aggregate, and differ only in what is optional
(``actors`` and ``recovery`` exist in-process, ``assignment`` exists
sharded) -- the builders duck-type those differences away so one
controller serves both.

Every snapshot is schema-versioned, JSON-serialisable and emitted
with sorted keys/members, so two identically-seeded clusters produce
byte-identical ``/topology`` documents (the golden-JSON property the
endpoint tests pin).
"""

from __future__ import annotations

import inspect

from repro.core.recovery import check_invariants, detector_verdicts

#: bump when a serving change breaks consumers of the JSON documents
TOPOLOGY_SCHEMA_VERSION = 1
STATS_SCHEMA_VERSION = 1
HEALTH_SCHEMA_VERSION = 1

#: health verdict -> HTTP status code served by the controller
HEALTH_STATUS_CODES = {"healthy": 200, "degraded": 503, "unhealthy": 500}


async def _resolve(value):
    """Await ``value`` when it is awaitable (sharded RPC aggregates)."""
    if inspect.isawaitable(value):
        return await value
    return value


def _sorted_numbers(mapping) -> dict:
    """A sorted-key copy with plain ``int``/``float`` values."""
    out = {}
    for key in sorted(mapping):
        value = mapping[key]
        out[str(key)] = float(value) if isinstance(value, float) else int(value)
    return out


# -- /topology ---------------------------------------------------------------


def topology_snapshot(cluster) -> dict:
    """The zones, members, expressway links and shard assignment.

    A versioned, deterministic JSON document of the CAN tessellation:
    every member with its physical placement (host, transit domain,
    owning shard), its zone boxes, CAN neighbors and published
    load/capacity; every expressway table entry as a ``src -> dst``
    link tagged with its ``(level, cell)``; plus the crash ledger of
    corpses the overlay still lists.  Pure parent-side reads -- on a
    sharded cluster this renders the parent's replica, which is
    bit-identical to the workers' by construction.
    """
    config = cluster.config
    can = cluster.overlay.ecan.can
    nodes = can.nodes
    domains = cluster.network.topology.transit_domain
    registry = cluster.overlay.store.registry
    assignment = getattr(cluster, "assignment", None) or {}

    members = []
    for node_id in sorted(nodes):
        node = nodes[node_id]
        record = registry.get(node_id)
        host = int(node.host)
        members.append(
            {
                "id": int(node_id),
                "host": host,
                "domain": int(domains[host]),
                "shard": int(assignment.get(node_id, 0)),
                "zones": [
                    {
                        "lo": [float(x) for x in zone.lo],
                        "hi": [float(x) for x in zone.hi],
                        "depth": int(zone.depth),
                    }
                    for zone in node.zones
                ],
                "neighbors": sorted(int(n) for n in node.neighbors),
                "load": float(record.load) if record is not None else 0.0,
                "capacity": float(record.capacity) if record is not None else 1.0,
            }
        )

    expressways = []
    tables = cluster.overlay.ecan._tables
    for src in sorted(tables):
        for level in sorted(tables[src]):
            row = tables[src][level]
            for cell in sorted(row):
                expressways.append(
                    {
                        "src": int(src),
                        "level": int(level),
                        "cell": [int(c) for c in cell],
                        "dst": int(row[cell]),
                    }
                )

    shard_count = int(getattr(config, "shards", 1) or 1)
    by_shard = [0] * shard_count
    for member in members:
        by_shard[member["shard"]] += 1

    return {
        "schema_version": TOPOLOGY_SCHEMA_VERSION,
        "zone_version": int(can.zone_version),
        "dims": int(can.dims),
        "transport": config.transport,
        "members": members,
        "expressways": expressways,
        "crashed": [
            {"id": int(node_id), "host": int(host)}
            for node_id, host in sorted(cluster.crashed.items())
        ],
        "shards": {"count": shard_count, "members_per_shard": by_shard},
        "volume": float(can.total_volume()),
    }


# -- /stats ------------------------------------------------------------------


async def stats_snapshot(cluster) -> dict:
    """Aggregated telemetry counters, transport and overload accounting.

    Wraps the harness's ``counters()`` aggregate (summed across shard
    replicas on a :class:`~repro.runtime.shard.ShardedCluster`) with
    the parent telemetry's gauges and phase timers and the retry
    accounting, every section sorted for deterministic export -- the
    same document :func:`repro.mgmt.prometheus.render_prometheus`
    renders as text exposition.
    """
    counters = await _resolve(cluster.counters())
    telemetry = cluster.network.telemetry.snapshot()
    retry = getattr(cluster, "retry_counters", None)
    snapshot = {
        "schema_version": STATS_SCHEMA_VERSION,
        "shards": int(getattr(cluster.config, "shards", 1) or 1),
        "transport": cluster.config.transport,
        "events": _sorted_numbers(counters.get("events", {})),
        "counters": _sorted_numbers(counters.get("metrics", {})),
        "gauges": _sorted_numbers(telemetry["gauges"]),
        "phases": {
            name: {
                "sim_ms": float(acc["sim_ms"]),
                "wall_s": float(acc["wall_s"]),
                "entries": int(acc["entries"]),
            }
            for name, acc in telemetry["phases"].items()
        },
        "transport_counters": _sorted_numbers(counters.get("transport", {})),
        "overload": _sorted_numbers(counters.get("overload", {})),
        "retries": retry() if callable(retry) else {"retries": 0, "backoff_ms": 0.0},
    }
    per_shard = counters.get("per_shard")
    if per_shard is not None:
        snapshot["per_shard"] = [
            {
                section: _sorted_numbers(values)
                for section, values in shard.items()
            }
            for shard in per_shard
        ]
    return snapshot


# -- /health -----------------------------------------------------------------


def _breaker_summary(cluster, members) -> dict:
    """Circuit-breaker states toward *current members*, across actors.

    Breakers toward departed peers are ignored: a breaker opened
    against a node the recovery stack has since removed is stale
    bookkeeping, not an active degradation.  On a sharded cluster the
    parent holds no actors; the aggregated ``breakers_open_now``
    overload counter stands in (already filtered per worker).
    """
    actors = getattr(cluster, "actors", None)
    summary = {"closed": 0, "open": 0, "half_open": 0}
    if actors is None:
        return summary
    live = set(members)
    for actor in actors.values():
        for peer, breaker in actor._breakers.items():
            if peer not in live:
                continue
            if breaker.state == breaker.CLOSED:
                summary["closed"] += 1
            elif breaker.state == breaker.OPEN:
                summary["open"] += 1
            else:
                summary["half_open"] += 1
    return summary


def _recovery_section(cluster) -> dict:
    """The failure detector's view, or why there is none.

    ``state`` is ``"active"`` when a detector loop is armed,
    ``"unavailable (sharded)"`` on a multi-process cluster (where
    :meth:`~repro.runtime.shard.ShardedCluster.enable_recovery` raises
    a typed ``NotSupportedError`` -- surfaced here instead of as a
    500), and ``"disabled"`` otherwise.
    """
    recovery = getattr(cluster, "recovery", None)
    if recovery is not None:
        return {
            "state": "active",
            "rounds": int(recovery.rounds),
            "suspected": {
                str(node): int(rounds)
                for node, rounds in sorted(recovery.suspected.items())
            },
            "confirmed_dead": [int(n) for n in recovery.confirmed_dead],
            "false_kills": int(recovery.false_kills),
            "refutations": int(recovery.refutations),
            "shielded_verdicts": int(recovery.shielded_verdicts),
        }
    state = (
        "unavailable (sharded)"
        if int(getattr(cluster.config, "shards", 1) or 1) > 1
        else "disabled"
    )
    return {
        "state": state,
        "rounds": 0,
        "suspected": {},
        "confirmed_dead": [],
        "false_kills": 0,
        "refutations": 0,
        "shielded_verdicts": 0,
    }


def health_snapshot(cluster, run_invariants: bool = True) -> dict:
    """Per-node SWIM verdicts, breaker states and the invariant check.

    The overall ``status`` is three-valued:

    * ``healthy`` -- every member answers for itself (live actor, no
      suspicion), no active partition, no open breaker, and
      :func:`~repro.core.recovery.check_invariants` holds;
    * ``degraded`` -- a *known, in-progress* disturbance: a member
      whose process is gone but whose zones are not yet repaired, a
      pending suspicion, an active partition window, or an open
      circuit breaker.  Invariants may transiently fail here (a corpse
      still holds its zone) -- that is the repair pipeline working,
      not a lie in the state;
    * ``unhealthy`` -- no live member at all, or the invariant check
      fails with *no* disturbance that explains it (silent
      corruption: the legitimacy detector of the self-stabilization
      story).
    """
    can = cluster.overlay.ecan.can
    members = sorted(int(n) for n in can.nodes)
    recovery = getattr(cluster, "recovery", None)
    actors = getattr(cluster, "actors", None)
    assignment = getattr(cluster, "assignment", None)
    verdicts = detector_verdicts(recovery, members)
    for node_id in members:
        if verdicts[node_id] != "alive":
            continue
        if actors is not None:
            if node_id not in actors:
                verdicts[node_id] = "down"
        elif assignment is not None and node_id not in assignment:
            verdicts[node_id] = "down"

    domains = cluster.network.topology.transit_domain
    nodes = [
        {
            "id": node_id,
            "host": int(can.nodes[node_id].host),
            "domain": int(domains[int(can.nodes[node_id].host)]),
            "shard": int((assignment or {}).get(node_id, 0)),
            "verdict": verdicts[node_id],
        }
        for node_id in members
    ]

    faults = cluster.network.faults
    partitions = (
        len(faults.active_partitions()) if faults is not None and faults.armed else 0
    )
    breakers = _breaker_summary(cluster, members)
    live = sum(1 for node_id in members if verdicts[node_id] == "alive")
    disturbed = (
        live < len(members)
        or bool(getattr(recovery, "suspected", None))
        or partitions > 0
        or breakers["open"] > 0
        or breakers["half_open"] > 0
    )

    invariants = {"ok": None, "checked": run_invariants}
    if run_invariants:
        try:
            summary = check_invariants(cluster.overlay, detector=recovery)
        except AssertionError as exc:
            invariants = {"ok": False, "checked": True, "error": str(exc)}
        except Exception as exc:  # torn mid-repair state must not 500
            invariants = {"ok": False, "checked": True, "error": repr(exc)}
        else:
            invariants = {"ok": True, "checked": True, **summary}

    if live == 0:
        status = "unhealthy"
    elif disturbed:
        status = "degraded"
    elif invariants["ok"] is False:
        status = "unhealthy"
    else:
        status = "healthy"

    return {
        "schema_version": HEALTH_SCHEMA_VERSION,
        "status": status,
        "members": len(members),
        "live": live,
        "nodes": nodes,
        "recovery": _recovery_section(cluster),
        "breakers": breakers,
        "partitions_active": partitions,
        "crashed_unrepaired": sorted(
            int(n) for n in cluster.crashed if n in can.nodes
        ),
        "invariants": invariants,
    }
