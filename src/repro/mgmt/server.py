"""A tiny asyncio HTTP/1.1 server for the management API (stdlib only).

The container bakes in no aiohttp, so the controller serves its
endpoints over a deliberately small HTTP implementation on the same
event loop the cluster runs on: ``asyncio.start_server``, a strict
request-line + header parse with hard size limits, GET/HEAD only,
``Connection: close`` semantics (every scrape is one short-lived
connection -- exactly how Prometheus and the zone-map view consume
it).  Handler exceptions become a 500 with a JSON body instead of a
torn connection.

The module also ships :func:`http_get`, the matching minimal client,
so the endpoint tests and ``scripts/mgmt_smoke.py`` exercise the real
socket path without pulling in an HTTP library.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: request-line / header-block size guards (bytes)
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request (the parts handlers may care about)."""

    method: str
    path: str
    query: str = ""
    headers: dict = field(default_factory=dict)


@dataclass
class Response:
    """What a route handler returns; rendered by the server."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""

    @classmethod
    def json(cls, data, status: int = 200) -> "Response":
        """A canonical JSON response (sorted keys, compact separators)."""
        text = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return cls(status=status, body=text.encode("utf-8"))

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; version=0.0.4; charset=utf-8"):
        """A plain-text response (the default content type is the
        Prometheus exposition media type)."""
        return cls(status=status, content_type=content_type,
                   body=text.encode("utf-8"))

    @classmethod
    def html(cls, text: str, status: int = 200) -> "Response":
        """An HTML page response."""
        return cls(status=status, content_type="text/html; charset=utf-8",
                   body=text.encode("utf-8"))


class HttpServer:
    """Route table + listener; handlers are ``async fn(Request) -> Response``."""

    def __init__(self, routes: dict, host: str = "127.0.0.1", port: int = 0):
        self.routes = dict(routes)
        self.host = host
        self.requested_port = port
        self.port = None
        self._server = None
        #: request/response accounting, surfaced by the controller
        self.requests = 0
        self.errors = 0

    async def start(self) -> None:
        """Bind and start serving (port 0 picks a free one)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._serve, self.host, self.requested_port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop listening and drop in-flight connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        """Base URL of the running listener."""
        return f"http://{self.host}:{self.port}"

    async def _read_request(self, reader) -> Request:
        line = await reader.readline()
        if not line or len(line) > MAX_REQUEST_LINE:
            raise ValueError("missing or oversized request line")
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line {line!r}")
        method, target, _version = parts
        path, _, query = target.partition("?")
        headers = {}
        total = 0
        while True:
            header = await reader.readline()
            total += len(header)
            if total > MAX_HEADER_BYTES:
                raise ValueError("oversized header block")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return Request(method=method.upper(), path=path, query=query,
                       headers=headers)

    async def _respond(self, request: Request) -> Response:
        if request.method not in ("GET", "HEAD"):
            return Response.json(
                {"error": f"method {request.method} not allowed"}, status=405
            )
        handler = self.routes.get(request.path)
        if handler is None:
            return Response.json(
                {"error": f"no such endpoint {request.path}",
                 "endpoints": sorted(self.routes)},
                status=404,
            )
        try:
            return await handler(request)
        except Exception as exc:
            self.errors += 1
            return Response.json(
                {"error": repr(exc), "endpoint": request.path}, status=500
            )

    async def _serve(self, reader, writer) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except (ValueError, UnicodeDecodeError) as exc:
                request = None
                response = Response.json({"error": str(exc)}, status=400)
            else:
                self.requests += 1
                response = await self._respond(request)
            reason = _REASONS.get(response.status, "Unknown")
            head = (
                f"HTTP/1.1 {response.status} {reason}\r\n"
                f"Content-Type: {response.content_type}\r\n"
                f"Content-Length: {len(response.body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head)
            if request is None or request.method != "HEAD":
                writer.write(response.body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


async def http_get(host: str, port: int, path: str, timeout: float = 10.0):
    """Minimal HTTP GET: returns ``(status, headers, body_bytes)``.

    A real-socket client for tests and smoke scripts; speaks exactly
    the ``Connection: close`` dialect the server serves, so the body
    is simply everything until EOF.
    """

    async def fetch():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, body

    return await asyncio.wait_for(fetch(), timeout)
