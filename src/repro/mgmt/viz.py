"""The live topology view: one self-contained HTML page.

Served at ``/`` by the controller: a D3-style data-joined SVG
rendering of the CAN tessellation, with no external assets (the
container has no CDN access, so the whole view -- markup, styles and
script -- is inlined).  The script polls ``/topology`` and ``/health``
on a timer and redraws:

* every member's primary zone as a rectangle in the unit square,
  shaded by its published load relative to the current maximum (the
  paper's per-zone load story made visible);
* expressway links as translucent chords between zone centers, drawn
  once per (src, dst) pair;
* per-node health from the SWIM verdicts: suspected zones pulse
  amber, down/confirmed-dead zones turn red until takeover removes
  them;
* a status strip with member counts, shard layout, overall health and
  the zone version, so an operator watching a churn soak sees joins,
  crashes and takeovers as they land.

Only 2-D tessellations draw (the default); higher-dimensional
overlays get the status strip and a member table instead.
"""

from __future__ import annotations

#: default poll interval of the served page, milliseconds
DEFAULT_REFRESH_MS = 1000

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 0; padding: 16px;
         background: #10141a; color: #d7dde6; }
  h1 { font-size: 16px; margin: 0 0 4px; font-weight: 600; }
  #strip { margin: 6px 0 12px; color: #8b97a6; }
  #strip b { color: #d7dde6; font-weight: 600; }
  .chip { display: inline-block; margin-right: 14px; }
  .healthy { color: #4cc38a; } .degraded { color: #e7b549; }
  .unhealthy { color: #e5534b; }
  #map { background: #161b23; border: 1px solid #232a35; border-radius: 6px; }
  #legend { margin-top: 8px; color: #8b97a6; font-size: 12px; }
  .swatch { display: inline-block; width: 10px; height: 10px;
            border-radius: 2px; margin: 0 4px 0 12px; vertical-align: -1px; }
  table { border-collapse: collapse; margin-top: 12px; }
  td, th { padding: 2px 10px; border-bottom: 1px solid #232a35; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="strip">loading&hellip;</div>
<svg id="map" width="760" height="760" viewBox="0 0 760 760"></svg>
<div id="legend">
  zone shade = published load (light &rarr; dark)
  <span class="swatch" style="background:#2b5f8f"></span>low
  <span class="swatch" style="background:#9ecbff"></span>high
  <span class="swatch" style="background:#e7b549"></span>suspected
  <span class="swatch" style="background:#e5534b"></span>down
  &mdash; chords are expressway links
</div>
<div id="fallback"></div>
<script>
"use strict";
const SIZE = 760, REFRESH_MS = __REFRESH_MS__;
const svg = document.getElementById("map");
const strip = document.getElementById("strip");
const fallback = document.getElementById("fallback");

function el(name, attrs) {
  const node = document.createElementNS("http://www.w3.org/2000/svg", name);
  for (const key in attrs) node.setAttribute(key, attrs[key]);
  return node;
}

function loadShade(t) {
  // interpolate #2b5f8f -> #9ecbff by load fraction t
  const mix = (a, b) => Math.round(a + (b - a) * t);
  return `rgb(${mix(43, 158)},${mix(95, 203)},${mix(143, 255)})`;
}

function center(zone) {
  return [ (zone.lo[0] + zone.hi[0]) / 2 * SIZE,
           (zone.lo[1] + zone.hi[1]) / 2 * SIZE ];
}

function drawStrip(topo, health) {
  const status = health ? health.status : "unknown";
  const shards = topo.shards.members_per_shard.join("/");
  strip.innerHTML =
    `<span class="chip">status <b class="${status}">${status}</b></span>` +
    `<span class="chip">members <b>${topo.members.length}</b>` +
    (health ? ` (live <b>${health.live}</b>)` : "") + `</span>` +
    `<span class="chip">shards <b>${topo.shards.count}</b> [${shards}]</span>` +
    `<span class="chip">expressways <b>${topo.expressways.length}</b></span>` +
    `<span class="chip">zone version <b>${topo.zone_version}</b></span>` +
    (health && health.partitions_active
       ? `<span class="chip degraded">partitions <b>${health.partitions_active}</b></span>`
       : "");
}

function drawMap(topo, health) {
  const verdicts = {};
  if (health) for (const node of health.nodes) verdicts[node.id] = node.verdict;
  const maxLoad = Math.max(1e-9, ...topo.members.map(m => m.load));
  svg.textContent = "";
  const centers = {};
  for (const member of topo.members) {
    const zone = member.zones[0];
    centers[member.id] = center(zone);
    const verdict = verdicts[member.id] || "alive";
    let fill = loadShade(member.load / maxLoad);
    if (verdict === "suspected") fill = "#e7b549";
    else if (verdict !== "alive") fill = "#e5534b";
    const rect = el("rect", {
      x: zone.lo[0] * SIZE, y: zone.lo[1] * SIZE,
      width: (zone.hi[0] - zone.lo[0]) * SIZE,
      height: (zone.hi[1] - zone.lo[1]) * SIZE,
      fill: fill, "fill-opacity": 0.85,
      stroke: "#10141a", "stroke-width": 1,
    });
    const title = el("title", {});
    title.textContent = `node ${member.id} host ${member.host} ` +
      `domain ${member.domain} shard ${member.shard} ` +
      `load ${member.load.toFixed(3)} (${verdict})`;
    rect.appendChild(title);
    svg.appendChild(rect);
  }
  const seen = new Set();
  for (const link of topo.expressways) {
    const key = link.src < link.dst ? link.src + ":" + link.dst
                                    : link.dst + ":" + link.src;
    if (seen.has(key)) continue;
    seen.add(key);
    const a = centers[link.src], b = centers[link.dst];
    if (!a || !b) continue;
    svg.appendChild(el("line", {
      x1: a[0], y1: a[1], x2: b[0], y2: b[1],
      stroke: "#8b97a6", "stroke-opacity": 0.35, "stroke-width": 1,
    }));
  }
}

function drawTable(topo) {
  const rows = topo.members.map(m =>
    `<tr><td>${m.id}</td><td>${m.host}</td><td>${m.domain}</td>` +
    `<td>${m.shard}</td><td>${m.load.toFixed(3)}</td></tr>`).join("");
  fallback.innerHTML =
    `<p>${topo.dims}-dimensional tessellation: rendering the member table.</p>` +
    `<table><tr><th>node</th><th>host</th><th>domain</th><th>shard</th>` +
    `<th>load</th></tr>${rows}</table>`;
}

async function refresh() {
  try {
    const topo = await (await fetch("/topology")).json();
    let health = null;
    try { health = await (await fetch("/health")).json(); } catch (e) {}
    drawStrip(topo, health);
    if (topo.dims === 2) { fallback.textContent = ""; drawMap(topo, health); }
    else { svg.textContent = ""; drawTable(topo); }
  } catch (err) {
    strip.innerHTML = `<span class="unhealthy">controller unreachable: ${err}</span>`;
  }
}
refresh();
setInterval(refresh, REFRESH_MS);
</script>
</body>
</html>
"""


def render_zone_map_html(
    title: str = "repro overlay — live zone map",
    refresh_ms: int = DEFAULT_REFRESH_MS,
) -> str:
    """The complete page served at ``/`` (no external assets)."""
    return _PAGE.replace("__TITLE__", title).replace(
        "__REFRESH_MS__", str(int(refresh_ms))
    )
