"""Prometheus text exposition (format 0.0.4): renderer and mini-parser.

The renderer turns the management plane's ``/stats`` and ``/health``
snapshots into the plain-text format every Prometheus scraper speaks:
one ``# HELP`` and ``# TYPE`` line per metric family followed by its
samples, label values escaped per the spec (backslash, double-quote
and newline).  Families and samples are emitted sorted, so a scrape
of an idle cluster is byte-deterministic.

The parser is the validation half: it re-reads an exposition
strictly -- families must be declared before their samples, types
must be known, label syntax and float values must parse, duplicate
samples are rejected -- and returns the samples grouped by family.
The endpoint tests and ``scripts/mgmt_smoke.py`` run every ``/metrics``
response through it, so a malformed exposition can not ship silently.
"""

from __future__ import annotations

import math
import re

#: metric and label names must match the Prometheus data model
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _unescape_label_value(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_value(value) -> str:
    """Render a sample value: integers stay integral, floats use repr."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class MetricFamily:
    """One named metric with its type, help text and samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unsupported metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        #: list of ``(labels_dict, value)``
        self.samples: list = []

    def add(self, labels: dict, value) -> "MetricFamily":
        """Append one sample (labels may be empty)."""
        for label in labels:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.samples.append((dict(labels), value))
        return self

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, value in sorted(
            self.samples, key=lambda sample: sorted(sample[0].items())
        ):
            if labels:
                body = ",".join(
                    f'{name}="{escape_label_value(labels[name])}"'
                    for name in sorted(labels)
                )
                lines.append(f"{self.name}{{{body}}} {format_value(value)}")
            else:
                lines.append(f"{self.name} {format_value(value)}")
        return "\n".join(lines)


#: numeric encoding of the /health status served as a gauge
HEALTH_STATUS_VALUES = {"healthy": 0, "degraded": 1, "unhealthy": 2}


def stats_families(stats: dict, health: dict = None) -> list:
    """Build the metric families for a ``/stats`` (+ ``/health``) snapshot."""
    families = []

    events = MetricFamily(
        "repro_events_total",
        "counter",
        "Structured telemetry event occurrences by kind.",
    )
    for name, value in stats.get("events", {}).items():
        events.add({"event": name}, value)
    families.append(events)

    counters = MetricFamily(
        "repro_counters_total",
        "counter",
        "Monotonic telemetry counters (milliseconds, totals) by name.",
    )
    for name, value in stats.get("counters", {}).items():
        counters.add({"name": name}, value)
    families.append(counters)

    gauges = MetricFamily(
        "repro_gauge", "gauge", "Last-written telemetry gauges by name."
    )
    for name, value in stats.get("gauges", {}).items():
        gauges.add({"name": name}, value)
    families.append(gauges)

    phase_wall = MetricFamily(
        "repro_phase_wall_seconds_total",
        "counter",
        "Wall seconds accumulated per instrumented phase.",
    )
    phase_entries = MetricFamily(
        "repro_phase_entries_total",
        "counter",
        "Times each instrumented phase was entered.",
    )
    for name, acc in sorted(stats.get("phases", {}).items()):
        phase_wall.add({"phase": name}, acc.get("wall_s", 0.0))
        phase_entries.add({"phase": name}, acc.get("entries", 0))
    families.extend((phase_wall, phase_entries))

    transport = MetricFamily(
        "repro_transport_frames_total",
        "counter",
        "Wire frames by transport accounting category.",
    )
    for name, value in stats.get("transport_counters", {}).items():
        transport.add({"category": name}, value)
    families.append(transport)

    overload = MetricFamily(
        "repro_overload_total",
        "counter",
        "Overload-protection accounting (sheds, BUSY replies, breaker trips).",
    )
    breakers_open = MetricFamily(
        "repro_breakers_open",
        "gauge",
        "Circuit breakers currently not closed, cluster-wide.",
    )
    for name, value in stats.get("overload", {}).items():
        if name == "breakers_open_now":
            breakers_open.add({}, value)
        else:
            overload.add({"kind": name}, value)
    families.extend((overload, breakers_open))

    retries = stats.get("retries", {})
    retry_family = MetricFamily(
        "repro_request_retries_total",
        "counter",
        "Request resends charged to the cluster-wide retry policy.",
    )
    retry_family.add({}, retries.get("retries", 0))
    families.append(retry_family)

    shards = MetricFamily(
        "repro_shards", "gauge", "Worker processes the membership is sharded across."
    )
    shards.add({}, stats.get("shards", 1))
    families.append(shards)

    if health is not None:
        status = MetricFamily(
            "repro_health_status",
            "gauge",
            "Cluster health: 0 healthy, 1 degraded, 2 unhealthy.",
        )
        status.add({}, HEALTH_STATUS_VALUES.get(health.get("status"), 2))
        members = MetricFamily(
            "repro_members", "gauge", "Members the overlay currently lists."
        )
        members.add({}, health.get("members", 0))
        live = MetricFamily(
            "repro_members_live", "gauge", "Members whose verdict is alive."
        )
        live.add({}, health.get("live", 0))
        suspected = MetricFamily(
            "repro_members_suspected",
            "gauge",
            "Members under active SWIM suspicion.",
        )
        suspected.add({}, len(health.get("recovery", {}).get("suspected", {})))
        partitions = MetricFamily(
            "repro_partitions_active", "gauge", "Active partition windows."
        )
        partitions.add({}, health.get("partitions_active", 0))
        families.extend((status, members, live, suspected, partitions))

    return families


def render_exposition(families) -> str:
    """Join rendered families into one exposition document."""
    return "\n".join(family.render() for family in families) + "\n"


def render_prometheus(stats: dict, health: dict = None) -> str:
    """``/stats`` (+ optional ``/health``) as Prometheus text exposition."""
    return render_exposition(stats_families(stats, health))


def parse_exposition(text: str) -> dict:
    """Strictly parse an exposition; raises ``ValueError`` on any flaw.

    Returns ``{family: {"type", "help", "samples": [(labels, value)]}}``.
    Enforces: ``# TYPE`` before samples, known types, valid metric and
    label syntax, parseable float values, no duplicate (name, labels)
    sample and no sample outside a declared family.
    """
    families: dict = {}
    seen: set = set()
    current = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: malformed HELP line {line!r}")
            families.setdefault(
                parts[0], {"type": None, "help": None, "samples": []}
            )["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2 or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})[
                "type"
            ] = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        family = families.get(name)
        if family is None or family["type"] is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} precedes its # TYPE declaration"
            )
        if current != name:
            raise ValueError(
                f"line {lineno}: sample {name!r} outside its family block"
            )
        labels = {}
        body = match.group("labels")
        if body is not None:
            consumed = 0
            for found in _LABEL_RE.finditer(body):
                labels[found.group("name")] = _unescape_label_value(
                    found.group("value")
                )
                consumed = found.end()
                if consumed < len(body) and body[consumed] == ",":
                    consumed += 1
            if consumed != len(body):
                raise ValueError(f"line {lineno}: malformed labels {{{body}}}")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: unparseable value {value_text!r}"
            ) from exc
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        seen.add(key)
        family["samples"].append((labels, value))
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
    return families
