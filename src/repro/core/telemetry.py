"""Observability: counters, gauges, phase timers and trace events.

Every :class:`~repro.netsim.network.Network` owns one
:class:`Telemetry` instance (``network.telemetry``) through which the
instrumented layers report what they are doing:

* **counters** -- monotonically increasing totals (e.g. backoff
  milliseconds charged by retry policies);
* **gauges** -- last-written values (e.g. live overlay size);
* **event counts** -- one counter per structured event kind.  The
  layers emit ``probe`` (netsim), ``hop`` / ``retry`` (eCAN routing
  and every :class:`~repro.core.reliability.RetryPolicy` backoff),
  ``purge`` (soft-state maintenance), ``publish`` (soft-state store),
  ``fault`` (the injector) and ``degraded`` (hybrid search fallback);
* **phase timers** -- :meth:`Telemetry.phase` context managers that
  accumulate *simulated* milliseconds (from the event scheduler, so
  resilience numbers stay deterministic) alongside wall seconds;
* **trace events** -- when :attr:`Telemetry.tracing` is enabled, each
  emit also appends a full :class:`TraceEvent` (kind, sim time,
  fields) to a bounded buffer for post-hoc inspection.

Everything is JSON-serialisable (:meth:`Telemetry.snapshot` /
:meth:`Telemetry.to_json` / :meth:`Telemetry.from_json`), and
:func:`diff_snapshots` subtracts two snapshots so benchmarks can
charge exactly one measured block.  All deterministic fields survive a
JSON round trip byte-identically; wall-clock parts live under keys
prefixed ``wall`` so perf records can be compared modulo wall time.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One structured occurrence: kind, simulated time, free-form fields."""

    kind: str
    time: float
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "time": self.time, "fields": dict(self.fields)}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            kind=data["kind"],
            time=float(data["time"]),
            fields=dict(data.get("fields", {})),
        )


class Telemetry:
    """Sim-clock-aware counters, gauges, phase timers and trace events.

    ``clock`` is any object with a ``now`` attribute (the network's
    :class:`~repro.netsim.events.EventScheduler`); without one, event
    and phase times fall back to 0 so the class stays usable in unit
    tests and offline analysis.
    """

    def __init__(self, clock=None, trace_limit: int = 10_000, tracing: bool = False):
        self.clock = clock
        self.trace_limit = trace_limit
        #: record full TraceEvents (bounded by ``trace_limit``)?  Event
        #: *counts* are always kept; tracing is opt-in to keep the
        #: probe/hop hot paths cheap.
        self.tracing = tracing
        self.counters = Counter()
        self.gauges: dict = {}
        self.event_counts = Counter()
        self.events: list = []
        self.dropped_events = 0
        self.phases: dict = {}

    # -- primitive instruments ---------------------------------------------

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (floats allowed, e.g. milliseconds)."""
        self.counters[name] += n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def bump(self, kind: str, n: int = 1) -> None:
        """Count ``n`` occurrences of event ``kind``; never traces.

        The counter-only fast path for per-probe/per-hop call sites:
        equivalent to :meth:`emit` with no fields when tracing is off,
        and cheaper because no keyword dict is built.
        """
        self.event_counts[kind] += n

    def emit(self, kind: str, n: int = 1, **fields) -> None:
        """Record ``n`` occurrences of event ``kind``.

        With :attr:`tracing` enabled one full :class:`TraceEvent` is
        appended (regardless of ``n``) until the buffer is full;
        overflow is tallied in :attr:`dropped_events`.
        """
        self.event_counts[kind] += n
        if self.tracing:
            if len(self.events) < self.trace_limit:
                self.events.append(TraceEvent(kind, self._now(), fields))
            else:
                self.dropped_events += 1

    # -- phase timers ------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Time a phase in simulated ms *and* wall seconds.

        Re-entering the same name accumulates; distinct names nest
        freely.  The simulated duration is whatever the clock advanced
        during the block -- event-scheduler runs, retry backoff and
        probe waits all land in the enclosing phase.
        """
        sim_start = self._now()
        wall_start = time.perf_counter()
        try:
            yield self
        finally:
            acc = self.phases.setdefault(
                name, {"sim_ms": 0.0, "entries": 0, "wall_s": 0.0}
            )
            acc["sim_ms"] += self._now() - sim_start
            acc["wall_s"] += time.perf_counter() - wall_start
            acc["entries"] += 1

    # -- serialisation -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable copy of everything recorded so far.

        Key order is *stable*: counters, gauges, event counts and
        phase accumulators are emitted sorted by name rather than in
        insertion order, so two runs that record the same values in a
        different order produce byte-identical exports -- the property
        the Prometheus ``/metrics`` exposition and the bench JSON
        trajectory rely on.
        """
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "events": {
                name: self.event_counts[name] for name in sorted(self.event_counts)
            },
            "phases": {
                name: dict(self.phases[name]) for name in sorted(self.phases)
            },
            "trace": [event.to_dict() for event in self.events],
            "dropped_events": self.dropped_events,
        }

    def to_json(self, indent: int = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str, clock=None) -> "Telemetry":
        """Rebuild a :class:`Telemetry` from :meth:`to_json` output."""
        data = json.loads(text)
        telemetry = cls(clock=clock)
        telemetry.counters.update(data.get("counters", {}))
        telemetry.gauges.update(data.get("gauges", {}))
        telemetry.event_counts.update(data.get("events", {}))
        telemetry.events = [
            TraceEvent.from_dict(event) for event in data.get("trace", ())
        ]
        telemetry.dropped_events = int(data.get("dropped_events", 0))
        telemetry.phases = {
            name: dict(acc) for name, acc in data.get("phases", {}).items()
        }
        return telemetry

    def __repr__(self):
        return (
            f"Telemetry(events={dict(self.event_counts)!r}, "
            f"phases={sorted(self.phases)})"
        )


def diff_snapshots(after: dict, before: dict = None) -> dict:
    """What happened between two :meth:`Telemetry.snapshot` calls.

    Counters, event counts and phase accumulators are subtracted
    (zero-delta entries dropped); gauges take the ``after`` value; the
    trace buffer is not diffed (slice it by time instead).
    """
    before = before or {}

    def sub_counts(key):
        out = {}
        earlier = before.get(key, {})
        for name, value in after.get(key, {}).items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    phases = {}
    earlier_phases = before.get("phases", {})
    for name, acc in after.get("phases", {}).items():
        base = earlier_phases.get(name, {})
        delta = {
            part: acc.get(part, 0) - base.get(part, 0)
            for part in ("sim_ms", "entries", "wall_s")
        }
        if delta["entries"] or delta["sim_ms"] or delta["wall_s"]:
            phases[name] = delta
    return {
        "counters": sub_counts("counters"),
        "gauges": dict(after.get("gauges", {})),
        "events": sub_counts("events"),
        "phases": phases,
    }
