"""Self-healing recovery: detect, take over, re-replicate, reconcile.

The paper's maintenance story (§5.2) assumes the overlay converges
back to a consistent state after departures, but graceful leaves are
the easy half: a *crash* leaves orphaned zones, vanished map shards
and diverged stores.  This module closes the loop with four pieces,
all driven by the simulated clock through the fault-injectable probe
path (so every recovery action has a message bill and a latency):

* :class:`FailureDetector` -- SWIM-style: each protocol period every
  live member direct-pings one rotating peer; on silence it issues
  indirect ping-reqs through ``witnesses`` other members; only when
  every path stays silent does the target become *suspected*, and
  only after ``suspicion_periods`` further all-silent rounds is it
  confirmed dead.  Any answered probe refutes the suspicion, so probe
  loss alone never kills a live node.  Death verdicts are additionally
  held while an active transit partition severs the prober from the
  target (:meth:`FaultInjector.active_partitions` makes the window
  visible), so partitioned-but-alive nodes survive to be reconciled.
* :class:`RecoveryManager` -- on a confirmed death it drives the CAN
  takeover for the corpse's zones (``crash_takeover``), eagerly
  invalidates every expressway entry pointing at it
  (``eager_invalidate``), purges its soft-state records, re-hosts map
  copies from surviving replicas (``softstate_rehost``) and drops its
  subscriptions.  On a partition heal it runs an anti-entropy
  reconciliation: missed pub/sub notifications resync, suspects are
  re-probed (falsely-suspected nodes are un-suspected), records lost
  with crashed hosts are re-published by their subjects, and records
  naming dead hosts are purged.
* :func:`check_invariants` -- the stack-wide convergence check run
  after every chaos scenario: full tessellation coverage, neighbor
  symmetry, no map copy hosted on a dead node, no record or table
  entry naming a dead member.

Every action is charged to :class:`~repro.netsim.network.MessageStats`
and traced through telemetry, so recovery's cost shows up in the
BENCH trajectory next to the traffic it protects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: stats categories the recovery stack may charge
RECOVERY_CATEGORIES = (
    "fd_ping",
    "fd_ping_req",
    "crash_takeover",
    "takeover_fallback",
    "eager_invalidate",
    "softstate_rehost",
    "recovery_republish",
    "recovery_reconcile",
)


@dataclass(frozen=True)
class DetectorParams:
    """Knobs of the SWIM-style failure detector.

    With probe loss rate ``L`` the probability that one round of a
    live node stays silent is ``L ** (ping_attempts + witnesses)``;
    a false death verdict needs ``suspicion_periods + 1`` consecutive
    such rounds, so the defaults push the false-kill probability to
    ``L**15`` -- effectively zero for any plausible loss rate.
    """

    #: protocol period (simulated ms) between detector rounds
    period: float = 500.0
    #: direct-ping attempts per round (retried with backoff)
    ping_attempts: int = 2
    #: indirect ping-req witnesses consulted when the direct ping is silent
    witnesses: int = 3
    #: additional all-silent rounds before a suspect is confirmed dead
    suspicion_periods: int = 2

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.ping_attempts < 1:
            raise ValueError("ping_attempts must be >= 1")
        if self.witnesses < 0:
            raise ValueError("witnesses must be non-negative")
        if self.suspicion_periods < 0:
            raise ValueError("suspicion_periods must be non-negative")


class FailureDetector:
    """Clock-driven SWIM-style failure detection over the overlay.

    Probers rotate deterministically: in round ``r`` the ``i``-th
    member (sorted) pings member ``i + 1 + (r mod (n-1))`` -- a
    fixed-point-free permutation, so every member is probed exactly
    once per round and a corpse accumulates suspicion at a bounded
    rate.  Crashed members run no protocol (their ping slot is
    skipped), but they stay *probed* until confirmed.
    """

    def __init__(self, overlay, params: DetectorParams = None, seed: int = 0xFD):
        self.overlay = overlay
        self.network = overlay.network
        self.params = params if params is not None else DetectorParams()
        self.rng = np.random.default_rng(seed)
        #: node_id -> consecutive all-silent rounds observed
        self.suspected: dict = {}
        #: confirmed-dead node ids, in confirmation order
        self.confirmed_dead: list = []
        #: death verdicts rendered against nodes that were in fact
        #: alive (the simulator knows ground truth); must stay 0 under
        #: probe loss alone
        self.false_kills = 0
        #: suspicions cleared by a later answered probe
        self.refutations = 0
        #: verdicts deferred because a partition shielded the target
        self.shielded_verdicts = 0
        self.rounds = 0
        #: callbacks invoked as ``fn(node_id)`` on a confirmed death
        self.on_death: list = []
        self._timer = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic detector round on the simulated clock."""
        if self._timer is None:
            self._timer = self.network.clock.schedule_every(
                self.params.period, self.tick
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- probing -----------------------------------------------------------

    @property
    def _telemetry(self):
        return getattr(self.network, "telemetry", None)

    def _crashed_hosts(self) -> set:
        faults = self.network.faults
        return faults.crashed_hosts if faults is not None else set()

    def _ping(self, src_host: int, dst_host: int, attempts: int, category: str) -> bool:
        """Charged liveness ping(s) through the fault path.

        Attempts are *not* backed off on the shared simulated clock:
        all probers of a round act concurrently in a real deployment,
        and SWIM bounds the whole round by the protocol period, so
        serializing per-probe waits onto the global clock would stall
        every other timer for the duration of the round.
        """
        from repro.netsim.faults import ProbeTimeout

        for _ in range(max(1, attempts)):
            try:
                self.network.rtt(src_host, dst_host, category=category)
                return True
            except ProbeTimeout:
                continue
        return False

    def _probe_target(self, prober: int, target: int, members: list) -> bool:
        """Direct ping, then indirect ping-reqs; True when any answered."""
        nodes = self.overlay.ecan.can.nodes
        prober_host = nodes[prober].host
        target_host = nodes[target].host
        if self._ping(
            prober_host, target_host, self.params.ping_attempts, "fd_ping"
        ):
            return True
        # indirect: ask k witnesses to probe the target on our behalf.
        # The prober picks witnesses from its *view* of the membership
        # (which may include undetected corpses -- their ping-req then
        # goes unanswered, exactly as in a real deployment).
        pool = [
            m
            for m in members
            if m != prober and m != target and m not in self.suspected
        ]
        k = min(self.params.witnesses, len(pool))
        if k:
            picks = self.rng.choice(len(pool), size=k, replace=False)
            for index in picks:
                witness_host = nodes[pool[int(index)]].host
                if self._ping(witness_host, target_host, 1, "fd_ping_req"):
                    return True
        return False

    def _shielded(self, prober_host: int, target_host: int) -> bool:
        """Is the silence explainable by an active transit partition?

        Two cases hold a verdict: the partition severs prober from
        target (the direct path is down), or the target's domain is
        *inside* the partitioned set -- then most witnesses sit on the
        far side and their ping-reqs are blocked, so even a same-side
        prober's silence proves nothing.
        """
        faults = self.network.faults
        if faults is None:
            return False
        domains = self.network.topology.transit_domain
        prober_domain = int(domains[prober_host])
        target_domain = int(domains[target_host])
        return any(
            target_domain in p.domains or p.severs(prober_domain, target_domain)
            for p in faults.active_partitions()
        )

    # -- rounds ------------------------------------------------------------

    def tick(self) -> list:
        """One detector round; returns nodes confirmed dead this round.

        The whole round -- pings, ping-reqs, and any repairs triggered
        by a confirmed death -- runs with the clock frozen: its actors
        (every live prober, every survivor absorbing a zone) operate
        concurrently, and the protocol ``period`` is what bounds the
        round's duration, not the sum of their private retry waits.
        """
        telemetry = self._telemetry
        with self.network.clock.frozen():
            if telemetry is None:
                return self._tick()
            with telemetry.phase("failure_detection"):
                return self._tick()

    def _tick(self) -> list:
        nodes = self.overlay.ecan.can.nodes
        members = sorted(nodes)
        n = len(members)
        self.rounds += 1
        if n < 2:
            return []
        crashed = self._crashed_hosts()
        shift = 1 + (self.rounds - 1) % (n - 1)
        answered: set = set()
        silent: dict = {}
        for i, prober in enumerate(members):
            if nodes[prober].host in crashed:
                continue  # a dead process runs no protocol
            target = members[(i + shift) % n]
            if prober == target:
                continue
            if self._probe_target(prober, target, members):
                answered.add(target)
            else:
                silent[target] = prober

        for target in answered:
            if target in self.suspected:
                del self.suspected[target]
                self.refutations += 1
                if self._telemetry is not None:
                    self._telemetry.emit("fd_refute", node_id=target)

        confirmed = []
        for target, prober in silent.items():
            if target in answered:
                continue
            count = self.suspected.get(target, 0) + 1
            self.suspected[target] = count
            if count <= self.params.suspicion_periods:
                continue
            if self._shielded(nodes[prober].host, nodes[target].host):
                # hold the verdict: an active partition explains the
                # silence; reconciliation re-probes after the heal
                self.shielded_verdicts += 1
                continue
            confirmed.append(target)

        for target in confirmed:
            self._confirm(target)
        return confirmed

    def _confirm(self, node_id: int) -> None:
        self.suspected.pop(node_id, None)
        self.confirmed_dead.append(node_id)
        node = self.overlay.ecan.can.nodes.get(node_id)
        genuinely_dead = node is None or node.host in self._crashed_hosts()
        if not genuinely_dead:
            self.false_kills += 1
        if self._telemetry is not None:
            self._telemetry.emit(
                "fd_confirm_death", node_id=node_id, false_positive=not genuinely_dead
            )
        for callback in list(self.on_death):
            callback(node_id)

    # -- reconciliation support --------------------------------------------

    def reprobe_suspects(self) -> int:
        """Direct-ping every suspect from up to ``witnesses`` + 1 live
        probers; any answer un-suspects (partition-heal refutation).
        Returns the number of suspicions cleared."""
        nodes = self.overlay.ecan.can.nodes
        crashed = self._crashed_hosts()
        probers = [
            m
            for m in sorted(nodes)
            if m not in self.suspected and nodes[m].host not in crashed
        ]
        cleared = 0
        for target in list(self.suspected):
            target_node = nodes.get(target)
            if target_node is None:
                del self.suspected[target]
                continue
            for prober in probers[: self.params.witnesses + 1]:
                if self._ping(
                    nodes[prober].host, target_node.host, 1, "fd_ping"
                ):
                    del self.suspected[target]
                    self.refutations += 1
                    cleared += 1
                    break
        return cleared


class RecoveryManager:
    """Turns death verdicts and partition heals into repairs."""

    def __init__(self, overlay, detector: FailureDetector):
        self.overlay = overlay
        self.detector = detector
        self.network = overlay.network
        #: corpses repaired (takeover completed)
        self.takeovers = 0
        #: expressway entries eagerly invalidated
        self.invalidated = 0
        #: map copies re-hosted from surviving replicas
        self.rehosted = 0
        #: records re-published for subjects after total copy loss
        self.republished = 0
        #: reconciliation passes run (partition heals)
        self.reconciliations = 0
        #: table entries, map records and index attributions repaired
        #: by self-stabilization scrub passes
        self.scrubbed = 0
        detector.on_death.append(self.handle_death)

    @property
    def _telemetry(self):
        return getattr(self.network, "telemetry", None)

    def watch_partitions(self) -> int:
        """Arm partition-heal reconciliation on every scheduled window."""
        faults = self.network.faults
        if faults is None:
            return 0
        return faults.watch_partitions(self.reconcile)

    # -- crash takeover ----------------------------------------------------

    def handle_death(self, node_id: int) -> None:
        """Confirmed death: absorb zones, invalidate, purge, re-host."""
        overlay = self.overlay
        node = overlay.ecan.can.nodes.get(node_id)
        if node is None:
            return  # already departed (verdict raced a graceful leave)
        telemetry = self._telemetry

        def repair():
            # other current suspects are likely corpses too: never hand
            # the zones to one of them
            dead = set(self.detector.suspected) | {node_id}
            overlay.ecan.takeover_dead(node_id, dead=dead)
            self.takeovers += 1
            self.invalidated += overlay.ecan.invalidate_member(node_id)
            overlay.pubsub.unsubscribe_all(node_id)
            overlay.store.purge_record(node_id, charge=True)
            self.rehosted += overlay.store.rehost_from_replicas(node_id)
            overlay._used_hosts.discard(node.host)
            overlay._adaptive.discard(node_id)
            if telemetry is not None:
                telemetry.emit("recovery_takeover", node_id=node_id)

        if telemetry is None:
            repair()
        else:
            with telemetry.phase("recovery"):
                repair()

    # -- partition-heal reconciliation -------------------------------------

    def republish_lost(self) -> int:
        """Subjects of crash-lost records re-publish (charged as publish
        + ``recovery_republish`` bookkeeping).  Returns records restored.

        Gated on the store's crash-loss ledger so a record purged by
        lease expiry stays gone until its subject refreshes it.
        """
        overlay = self.overlay
        store = overlay.store
        members = overlay.ecan.can.nodes
        restored = 0
        for node_id in sorted({n for _, n in store.lost_records}):
            if node_id not in members:
                continue
            if store.missing_regions(node_id):
                store.publish(node_id)
                self.network.stats.count("recovery_republish")
                restored += 1
        store.lost_records = [
            (region, n)
            for region, n in store.lost_records
            if n in members and store.missing_regions(n)
        ]
        self.republished += restored
        return restored

    def purge_dead_references(self) -> int:
        """Purge map records whose subject is no longer a member."""
        overlay = self.overlay
        members = overlay.ecan.can.nodes
        stale = {
            node_id
            for bucket in overlay.store.maps.values()
            for node_id in bucket
            if node_id not in members
        }
        removed = 0
        for node_id in sorted(stale):
            removed += overlay.store.purge_record(node_id, charge=True)
        return removed

    def reconcile(self, partition=None) -> dict:
        """Anti-entropy after a partition heals (or on demand).

        Generalizes the pub/sub anti-entropy round: missed
        notifications resync, suspects are re-probed and the live ones
        un-suspected, lost records are re-published by their subjects,
        and records naming dead members are purged.
        """
        telemetry = self._telemetry
        self.network.stats.count("recovery_reconcile")
        self.reconciliations += 1

        def run():
            resynced = self.overlay.pubsub.resync_once()
            unsuspected = self.detector.reprobe_suspects()
            republished = self.republish_lost()
            purged = self.purge_dead_references()
            return {
                "resynced": resynced,
                "unsuspected": unsuspected,
                "republished": republished,
                "purged": purged,
            }

        with self.network.clock.frozen():
            if telemetry is None:
                summary = run()
            else:
                with telemetry.phase("reconcile"):
                    summary = run()
        if telemetry is not None:
            telemetry.emit("reconcile", **summary)
        return summary

    # -- self-stabilization scrubs ------------------------------------------

    def scrub_tables(self) -> int:
        """Validate every expressway entry; re-select the broken ones.

        The eager sweep behind the self-stabilization claim: an
        adversarially scrambled entry -- pointing at a node that is not
        a member, or at a member whose zones no longer overlap the
        cell -- is caught and re-selected here rather than when a route
        trips over it.  Re-selection is charged through the usual
        neighbor-selection path; a cell with no eligible member left is
        dropped from the row so :func:`check_invariants` never sees a
        ghost.  Returns the number of entries repaired.
        """
        ecan = self.overlay.ecan
        members = ecan.can.nodes
        repaired = 0
        for node_id in sorted(ecan._tables):
            if node_id not in members:
                continue
            table = ecan._tables[node_id]
            for level in sorted(table):
                row = table[level]
                for cell in sorted(row):
                    entry = row[cell]
                    if entry in members and ecan._entry_valid_uncached(
                        entry, level, cell
                    ):
                        continue
                    if ecan.refresh_entry(node_id, level, cell) is None:
                        row.pop(cell, None)
                    repaired += 1
        return repaired

    def scrub_store(self) -> int:
        """Re-place map records that drifted off their computed position.

        A stored copy whose position or replica set no longer equals
        the pure placement function ``position_of(record, region)`` is
        stale -- whether through tampering or a missed migration.  Live
        subjects re-publish (restoring position, replicas and the owner
        index in one charged pass); records of departed subjects are
        purged.  Returns the number of subjects repaired.
        """
        store = self.overlay.store
        members = self.overlay.ecan.can.nodes
        stale = set()
        for region, bucket in store.maps.items():
            for node_id, stored in bucket.items():
                if stored.position != store.position_of(stored.record, region):
                    stale.add(node_id)
                elif stored.replicas != store.replica_positions(
                    stored.record, region
                ):
                    stale.add(node_id)
        for node_id in sorted(stale):
            if node_id in store.registry and node_id in members:
                store.publish(node_id)
            else:
                store.purge_record(node_id, charge=True)
        return len(stale)

    def scrub(self) -> dict:
        """One full anti-entropy scrub pass: tables, records, index.

        The periodic self-stabilization sweep the churn-soak harness
        drives between legitimacy checks; cheap when the state is
        already legitimate (pure validation, no writes).  Returns the
        per-structure repair counts.
        """
        telemetry = self._telemetry

        def run():
            tables = self.scrub_tables()
            records = self.scrub_store()
            index = self.overlay.store.rebuild_owner_index()
            return {"tables": tables, "records": records, "index": index}

        with self.network.clock.frozen():
            if telemetry is None:
                summary = run()
            else:
                with telemetry.phase("scrub"):
                    summary = run()
        self.scrubbed += sum(summary.values())
        if telemetry is not None and any(summary.values()):
            telemetry.emit("scrub_repairs", **summary)
        return summary


def check_invariants(overlay, detector: FailureDetector = None) -> dict:
    """Stack-wide structural invariants after a chaos scenario.

    Raises ``AssertionError`` on the first violation; returns a small
    summary dict when everything holds:

    * the CAN tessellation covers the space exactly once and neighbor
      links are symmetric and adjacent (``Can.check_invariants``);
    * the store's incremental position->owner index agrees with a
      brute-force re-resolution (``SoftStateStore.check_owner_index``);
    * no member runs on a crashed host;
    * every map record belongs to a live member, sits at its correct
      :func:`~repro.softstate.maps.map_position`, and every copy is
      hosted by a live member on a live host;
    * the identity registry and expressway tables reference only live
      members;
    * no pub/sub subscription belongs to a departed node;
    * nothing the detector confirmed dead is still a member.
    """
    can = overlay.ecan.can
    can.check_invariants()
    members = can.nodes
    faults = overlay.network.faults
    crashed = faults.crashed_hosts if faults is not None else set()

    for node_id, node in members.items():
        assert node.host not in crashed, (
            f"member {node_id} runs on crashed host {node.host}"
        )

    store = overlay.store
    entries = 0
    for region, bucket in store.maps.items():
        for node_id, stored in bucket.items():
            entries += 1
            assert node_id in members, (
                f"map of {region} still holds a record for dead node {node_id}"
            )
            assert stored.record.host not in crashed, (
                f"record of {node_id} names crashed host {stored.record.host}"
            )
            assert stored.position == store.position_of(stored.record, region), (
                f"record of {node_id} sits at a stale position in {region}"
            )
            for position in (stored.position, *stored.replicas):
                owner = can.owner_of_point(position)
                assert owner in members, (
                    f"copy of {node_id}'s record is hosted by dead node {owner}"
                )
                assert members[owner].host not in crashed, (
                    f"copy of {node_id}'s record sits on a crashed host"
                )

    # the incremental position->owner index must agree with a brute-force
    # re-resolution over the live tessellation (checked after the map
    # record assertions so a tampered map fails with the specific message)
    store.check_owner_index()

    for node_id in store.registry:
        assert node_id in members, f"registry holds dead identity {node_id}"

    for node_id, table in overlay.ecan._tables.items():
        assert node_id in members, f"expressway table of dead node {node_id}"
        for row in table.values():
            for entry in row.values():
                assert entry in members, (
                    f"expressway entry of {node_id} points at dead node {entry}"
                )

    for sub in overlay.pubsub._by_id.values():
        assert sub.subscriber in members, (
            f"subscription {sub.sub_id} of departed node {sub.subscriber}"
        )

    if detector is not None:
        for node_id in detector.confirmed_dead:
            assert node_id not in members, (
                f"confirmed-dead node {node_id} is still a member"
            )

    return {
        "nodes": len(members),
        "map_entries": entries,
        "volume": can.total_volume(),
        "suspected": 0 if detector is None else len(detector.suspected),
    }


def detector_verdicts(detector, members) -> dict:
    """Per-member SWIM verdicts as the detector currently sees them.

    ``detector`` is anything with the detector duck-type
    (:class:`FailureDetector` or the runtime's
    :class:`~repro.runtime.recovery.RuntimeRecovery`): a ``suspected``
    mapping of node id to consecutive silent rounds and a
    ``confirmed_dead`` list.  ``None`` means no detector is armed and
    every member reads as ``alive``.  Returns ``{node_id: verdict}``
    over ``members`` where the verdict is ``"alive"``, ``"suspected"``
    or ``"confirmed_dead"`` -- the per-node health the management
    plane's ``/health`` endpoint surfaces.
    """
    suspected = dict(getattr(detector, "suspected", None) or {})
    confirmed = set(getattr(detector, "confirmed_dead", None) or ())
    verdicts = {}
    for node_id in members:
        node_id = int(node_id)
        if node_id in confirmed:
            verdicts[node_id] = "confirmed_dead"
        elif node_id in suspected:
            verdicts[node_id] = "suspected"
        else:
            verdicts[node_id] = "alive"
    return verdicts
