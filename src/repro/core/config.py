"""Parameter dataclasses mirroring the paper's Table 2.

The OCR of the paper stripped the digits out of Table 2; the defaults
below are the reconstruction documented in DESIGN.md: 4096 overlay
nodes, 15 landmarks (swept 5-30), 10 RTT probes (swept 1-40), and a
1/16 map condense rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.netsim import Network, TransitStubConfig, generate_transit_stub
from repro.netsim.latency import latency_model_from_name

#: neighbor-selection policies understood by the builder
POLICIES = ("random", "softstate", "optimal")


@dataclass(frozen=True)
class NetworkParams:
    """Which physical network to simulate."""

    topology: str = "tsk-large"  # "tsk-large" | "tsk-small"
    latency: str = "manual"  # "generated" | "manual" | "noisy-*"
    topo_scale: float = 1.0
    seed: int = 0

    def scaled(self, topo_scale: float) -> "NetworkParams":
        return replace(self, topo_scale=topo_scale)


@dataclass(frozen=True)
class OverlayParams:
    """Overlay + soft-state knobs (Table 2)."""

    dims: int = 2
    num_nodes: int = 4096
    landmarks: int = 15
    bits_per_dim: int = 5
    index_dims: int = 4
    rtt_budget: int = 10
    condense_rate: float = 1.0 / 16.0
    record_ttl: float = math.inf
    max_results: int = 16
    widen_ttl: int = 2
    #: map copies per record (1 = primary only; >1 arms crash durability)
    replication_factor: int = 1
    policy: str = "softstate"
    load_weight: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if self.rtt_budget < 1:
            raise ValueError("rtt_budget must be >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")

    def with_policy(self, policy: str, **changes) -> "OverlayParams":
        return replace(self, policy=policy, **changes)


def topology_config(name: str, scale: float = 1.0) -> TransitStubConfig:
    """Named topology presets from the paper's evaluation."""
    if name == "tsk-large":
        return TransitStubConfig.tsk_large(scale)
    if name == "tsk-small":
        return TransitStubConfig.tsk_small(scale)
    raise ValueError(f"unknown topology {name!r} (want 'tsk-large' or 'tsk-small')")


def make_network(params: NetworkParams) -> Network:
    """Build the simulated physical network described by ``params``."""
    config = topology_config(params.topology, params.topo_scale)
    topology = generate_transit_stub(config, seed=params.seed, name=params.topology)
    model = latency_model_from_name(params.latency, seed=params.seed)
    return Network(topology, model)
