"""§6 extension: trading proximity against load.

"Nodes that are situated close to routers and gateways tend to have
better forwarding capacity than other nodes...  To better balance the
traffic based on each node's capacity and current load, a node
periodically publishes these statistics along with its proximity
information."

This module provides the pieces the paper sketches:

* heterogeneous capacities (:func:`pareto_capacities`),
* a :class:`LoadTracker` that accumulates per-node forwarding load
  from routed messages and periodically publishes it into the
  soft-state,
* overload subscriptions: a node can subscribe to
  ``Condition.load_above`` on its chosen neighbor and re-select when
  the neighbor saturates.

The load-aware *selection* itself lives in
:class:`~repro.softstate.neighbor_selection.SoftStateNeighborPolicy`
(``load_weight > 0`` scores candidates by RTT inflated by published
utilization).
"""

from __future__ import annotations

import numpy as np

from repro.softstate.maps import Region
from repro.softstate.pubsub import Condition


def pareto_capacities(
    rng: np.random.Generator, n: int, alpha: float = 1.5, scale: float = 1.0
) -> np.ndarray:
    """Heavy-tailed forwarding capacities (few strong, many weak nodes)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return scale * (1.0 + rng.pareto(alpha, size=n))


class LoadTracker:
    """Accumulates forwarding load and publishes it as soft-state."""

    def __init__(self, overlay, window: float = 1.0):
        self.overlay = overlay
        self.window = window
        self._forwarded: dict = {}

    def record_route(self, result) -> None:
        """Charge one unit of forwarding load to each relay on a path."""
        for node_id in result.path[1:-1]:
            self._forwarded[node_id] = self._forwarded.get(node_id, 0) + 1

    def load_of(self, node_id: int) -> float:
        return self._forwarded.get(node_id, 0) / self.window

    def utilization(self) -> dict:
        """Current load/capacity ratio per node."""
        registry = self.overlay.store.registry
        out = {}
        for node_id, count in self._forwarded.items():
            record = registry.get(node_id)
            capacity = record.capacity if record is not None else 1.0
            out[node_id] = (count / self.window) / max(capacity, 1e-9)
        return out

    def publish_all(self) -> int:
        """Push every node's current load into the soft-state maps."""
        published = 0
        for node_id in list(self.overlay.ecan.can.nodes):
            if node_id in self.overlay.store.registry:
                self.overlay.store.update_load(node_id, self.load_of(node_id))
                published += 1
        return published

    def reset_window(self) -> None:
        self._forwarded.clear()


def subscribe_overload_watch(
    overlay, node_id: int, threshold: float = 0.8
) -> list:
    """Watch every current table entry for overload; re-select on alarm.

    Implements the paper's QoS example: "the selected neighbor is
    handling 80% of its maximum capacity -> start a new round of
    neighbor selection".  Returns the subscription ids installed.
    """
    subs = []
    table = overlay.ecan.table_of(node_id)
    for level, row in table.items():
        for cell, entry in row.items():
            condition = Condition.load_above(threshold, node_id=entry)

            def reselect(subscription, event, _level=level, _cell=cell):
                if subscription.subscriber in overlay.ecan.can.nodes:
                    overlay.ecan.refresh_entry(subscription.subscriber, _level, _cell)

            subs.append(
                overlay.pubsub.subscribe(
                    node_id, Region(level, cell), condition, callback=reselect
                )
            )
    return subs
