"""Assembly of the full topology-aware overlay.

:class:`TopologyAwareOverlay` is the library's main entry point.  It
owns one :class:`~repro.netsim.network.Network`, a landmark space, an
eCAN, the global soft-state store, the publish/subscribe service and
a maintenance driver, and exposes the paper's lifecycle:

* ``build(n)`` -- grow the overlay to ``n`` nodes, each join doing:
  landmark measurement, CAN join, soft-state publication, and
  policy-driven high-order neighbor selection;
* ``route_between`` / ``measure_stretch`` -- the evaluation workload:
  route between random member pairs and compare accumulated physical
  latency against the direct shortest path;
* ``remove_node`` / ``add_node`` -- churn, graceful or not;
* ``enable_adaptive(node)`` -- the pub/sub loop: subscribe to the
  regions behind the node's expressway entries and re-select when a
  closer candidate appears.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.config import OverlayParams
from repro.core.reliability import RetryPolicy, measure_vector_reliably
from repro.overlay.ecan import (
    ClosestNeighborPolicy,
    EcanOverlay,
    RandomNeighborPolicy,
)
from repro.softstate.maintenance import MaintenanceDriver, MaintenancePolicy
from repro.softstate.maps import Region
from repro.softstate.neighbor_selection import SoftStateNeighborPolicy
from repro.softstate.pubsub import Condition, PubSubService
from repro.softstate.store import SoftStateStore
from repro.proximity.landmarks import LandmarkSpace, select_landmarks


class TopologyAwareOverlay:
    """The paper's system: eCAN + landmarks + global soft-state."""

    def __init__(
        self,
        network,
        params: OverlayParams = None,
        maintenance_policy: MaintenancePolicy = MaintenancePolicy.PROACTIVE,
        retry_policy: RetryPolicy = None,
    ):
        self.network = network
        self.params = params if params is not None else OverlayParams()
        #: RetryPolicy shared by routing, probing and maintenance; None
        #: keeps every layer fire-and-forget (the pre-fault baseline)
        self.retry_policy = retry_policy
        # Independent streams so that changing the landmark count or the
        # policy does not reshuffle overlay membership or join points --
        # experiment cells with the same seed stay comparable.
        seeds = np.random.SeedSequence(self.params.seed).spawn(4)
        self.rng = np.random.default_rng(seeds[0])
        self._host_rng = np.random.default_rng(seeds[1])
        landmark_rng = np.random.default_rng(seeds[2])
        self._policy_rng = np.random.default_rng(seeds[3])
        self.stats = network.stats

        landmarks = select_landmarks(network, self.params.landmarks, landmark_rng)
        self.space = LandmarkSpace(
            landmarks,
            bits_per_dim=self.params.bits_per_dim,
            index_dims=min(self.params.index_dims, landmarks.count),
        )
        self.ecan = EcanOverlay(
            dims=self.params.dims,
            rng=self.rng,
            stats=self.stats,
            network=network,
            retry_policy=retry_policy,
        )
        self.store = SoftStateStore(
            self.ecan,
            network,
            self.space,
            condense_rate=self.params.condense_rate,
            record_ttl=self.params.record_ttl,
            max_results=self.params.max_results,
            widen_ttl=self.params.widen_ttl,
            replication_factor=self.params.replication_factor,
        )
        self.pubsub = PubSubService(self.store, self.ecan, network)
        self.maintenance = MaintenanceDriver(
            self.store,
            self.ecan,
            network,
            policy=maintenance_policy,
            retry_policy=retry_policy,
        )
        self.ecan.policy = self._make_policy(self.params.policy)
        self._ids = itertools.count()
        self._refresh_timer = None
        # Landmarks "can be part of the overlay itself or standalone"
        # (§5.1); letting them host members keeps overlay membership a
        # pure function of the host stream, independent of landmark count.
        self._used_hosts: set = set()
        self._adaptive: set = set()
        #: armed by :meth:`enable_recovery`
        self.detector = None
        self.recovery = None

    # -- fault injection -------------------------------------------------------

    def arm_faults(self, plan=None, seed: int = 0):
        """Arm a fault plan over the underlying network.

        Returns the :class:`~repro.netsim.faults.FaultInjector`.
        Ungraceful departures now also crash-stop the victim's host
        (probes to it time out) and hosts are revived on reuse.
        """
        return self.network.arm_faults(plan, seed=seed)

    def disarm_faults(self) -> None:
        self.network.disarm_faults()

    def _make_policy(self, name: str):
        if name == "random":
            return RandomNeighborPolicy(self._policy_rng)
        if name == "optimal":
            return ClosestNeighborPolicy(self.network)
        if name == "softstate":
            return SoftStateNeighborPolicy(
                self.store,
                self.network,
                rtt_budget=self.params.rtt_budget,
                load_weight=self.params.load_weight,
                maintenance=self.maintenance,
                retry_policy=self.retry_policy,
            )
        raise ValueError(f"unknown policy {name!r}")

    # -- membership -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ecan)

    @property
    def node_ids(self) -> list:
        return list(self.ecan.can.nodes)

    def _pick_host(self) -> int:
        pool = self.network.topology.stub_nodes()
        for _ in range(64):
            host = int(pool[int(self._host_rng.integers(0, len(pool)))])
            if host not in self._used_hosts:
                return host
        free = [int(h) for h in pool if int(h) not in self._used_hosts]
        if not free:
            # more overlay nodes than stub hosts: co-host virtual nodes
            # on a uniformly drawn stub (the paper's 4096-node overlays
            # on smaller topologies need this)
            return int(pool[int(self._host_rng.integers(0, len(pool)))])
        return free[int(self._host_rng.integers(0, len(free)))]

    def add_node(self, host: int = None, capacity: float = 1.0) -> int:
        """Join one node: measure landmarks, join CAN, publish, select."""
        if host is None:
            host = self._pick_host()
        self._used_hosts.add(host)
        node_id = next(self._ids)

        if self.network.faults is not None:
            # a fresh process on this host: it answers probes again
            self.network.faults.revive_host(host)
            vector = measure_vector_reliably(
                self.network,
                self.space.landmarks,
                host,
                policy=self.retry_policy or RetryPolicy(),
            )
        else:
            vector = self.space.measure(self.network, host)
        self.ecan.can.join(node_id, host)
        self.store.register_identity(node_id, host, vector, capacity=capacity)
        self.store.publish(node_id)
        self.ecan.build_table(node_id)
        return node_id

    def build(self, num_nodes: int = None) -> list:
        """Grow the overlay to ``num_nodes`` members; returns their ids."""
        if num_nodes is None:
            num_nodes = self.params.num_nodes
        with self.network.telemetry.phase("overlay_build"):
            return [self.add_node() for _ in range(num_nodes - len(self))]

    def build_bulk(self, num_nodes: int = None) -> list:
        """Batched bulk-join fast path; returns the ids added.

        :meth:`build` republishes the split owner's record on every
        zone change, so growing to N members costs O(N) incremental
        republish cascades against throw-away intermediate
        tessellations -- the reason joins/s *drops* as N grows in the
        ``perf_scale`` bench.  Bulk mode defers those republishes
        behind :meth:`~repro.softstate.store.SoftStateStore.bulk_load`:
        all members join the CAN first, then each publishes exactly
        once against the final tessellation and builds its expressway
        table.  Membership, hosts and zones are identical to
        :meth:`build` for the same seed (the host and join-point
        streams are consumed in the same order); expressway tables may
        differ because neighbor selection sees the final maps instead
        of each intermediate one.  Intended for large soak and runtime
        boots.
        """
        if num_nodes is None:
            num_nodes = self.params.num_nodes
        added = []
        with self.network.telemetry.phase("overlay_build_bulk"):
            with self.store.bulk_load() as dirty:
                for _ in range(num_nodes - len(self)):
                    host = self._pick_host()
                    self._used_hosts.add(host)
                    node_id = next(self._ids)
                    if self.network.faults is not None:
                        self.network.faults.revive_host(host)
                        vector = measure_vector_reliably(
                            self.network,
                            self.space.landmarks,
                            host,
                            policy=self.retry_policy or RetryPolicy(),
                        )
                    else:
                        vector = self.space.measure(self.network, host)
                    self.ecan.can.join(node_id, host)
                    self.store.register_identity(node_id, host, vector)
                    dirty.add(node_id)
                    added.append(node_id)
            for node_id in added:
                self.ecan.build_table(node_id)
        return added

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        """Depart (gracefully announces; otherwise records go stale)."""
        node = self.ecan.can.nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} is not a member")
        self._used_hosts.discard(node.host)
        self._adaptive.discard(node_id)
        self.pubsub.unsubscribe_all(node_id)
        self.maintenance.on_departure(node_id, graceful=graceful)
        if not graceful and self.network.faults is not None:
            # crash-stop: the process is gone, the host answers nothing
            self.network.faults.crash_host(node.host)
        self.ecan.leave(node_id)

    def crash_node(self, node_id: int) -> dict:
        """Crash-stop ``node_id`` with *no* immediate repair.

        Unlike ``remove_node(graceful=False)`` -- which still runs the
        instantaneous takeover (the pre-recovery modelling shortcut) --
        a crashed node stays a member with orphaned zones and stale
        soft-state until the failure detector confirms its death and
        :class:`~repro.core.recovery.RecoveryManager` repairs it.  The
        host stops answering, and every map copy it hosted vanishes
        with the process (records whose copies all died are *lost*
        until their subjects re-publish).  Returns the copy-loss
        summary ``{"salvageable": ..., "lost": ...}``.
        """
        node = self.ecan.can.nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} is not a member")
        faults = self.network.faults
        if faults is None:
            raise RuntimeError(
                "crash_node needs armed faults (arm_faults); "
                "use remove_node(graceful=False) for the instant-takeover model"
            )
        faults.crash_host(node.host)
        salvageable, lost = self.store.drop_hosted_by(node_id)
        self.network.telemetry.emit(
            "crash", node_id=node_id, host=node.host, lost=len(lost)
        )
        return {"salvageable": len(salvageable), "lost": len(lost)}

    def enable_recovery(self, detector_params=None, seed: int = 0xFD):
        """Arm the self-healing stack: failure detection, crash
        takeover, re-replication and partition-heal reconciliation.

        Idempotent; returns the :class:`~repro.core.recovery.RecoveryManager`.
        """
        if self.recovery is not None:
            return self.recovery
        from repro.core.recovery import FailureDetector, RecoveryManager

        self.detector = FailureDetector(self, detector_params, seed=seed)
        self.recovery = RecoveryManager(self, self.detector)
        self.detector.start()
        self.recovery.watch_partitions()
        return self.recovery

    def disable_recovery(self) -> None:
        if self.detector is not None:
            self.detector.stop()
        self.detector = None
        self.recovery = None

    def random_member(self) -> int:
        return self.ecan.can.random_node()

    # -- routing & stretch -------------------------------------------------------

    def route_between(self, src_id: int, dst_id: int, category: str = "lookup_route"):
        """Route src -> dst; returns (RouteResult, stretch or None).

        Stretch is accumulated path latency over the direct
        shortest-path latency; ``None`` when the pair is degenerate
        (zero direct latency) or routing failed.
        """
        dst = self.ecan.can.nodes[dst_id]
        result = self.ecan.route(src_id, dst.zone.center(), category=category)
        if not result.success:
            return result, None
        src_host = self.ecan.can.nodes[src_id].host
        direct = self.network.latency(src_host, dst.host)
        if direct <= 1e-9:
            return result, None
        path_latency = result.latency(self.ecan.can, self.network)
        return result, path_latency / direct

    def prewarm_latencies(self, hosts=None) -> int:
        """Bulk-populate the oracle's row cache for member hosts (free).

        One multi-source Dijkstra replaces per-pair cache misses during
        stretch measurement; purely an oracle-side warm-up -- nothing
        is charged and no overlay state changes.  Returns the number of
        hosts warmed.
        """
        if hosts is None:
            hosts = {node.host for node in self.ecan.can.nodes.values()}
        hosts = sorted(int(h) for h in hosts)
        if hosts:
            self.network.oracle.rows(hosts)
        return len(hosts)

    def measure_stretch(self, samples: int = None, rng=None) -> np.ndarray:
        """Stretch over random member pairs (paper default: 2N routes)."""
        if samples is None:
            samples = 2 * len(self)
        if rng is None:
            rng = self.rng
        ids = np.array(self.node_ids)
        stretches = []
        attempts = 0
        self.prewarm_latencies()
        with self.network.telemetry.phase("routing"):
            while len(stretches) < samples and attempts < 4 * samples:
                attempts += 1
                src, dst = rng.choice(ids, size=2, replace=False)
                _, stretch = self.route_between(int(src), int(dst))
                if stretch is not None:
                    stretches.append(stretch)
        return np.asarray(stretches)

    def measure_hops(self, samples: int, rng=None) -> np.ndarray:
        """Logical hop counts over random member pairs (Figure 2)."""
        if rng is None:
            rng = self.rng
        ids = np.array(self.node_ids)
        hops = []
        for _ in range(samples):
            src, dst = rng.choice(ids, size=2, replace=False)
            dst_node = self.ecan.can.nodes[int(dst)]
            result = self.ecan.route(int(src), dst_node.zone.center())
            if result.success:
                hops.append(result.hops)
        return np.asarray(hops)

    # -- soft-state refresh ----------------------------------------------------------

    def start_refresh(self, interval: float = None) -> None:
        """Arm the periodic soft-state refresh loop.

        Soft-state only stays alive while its owner keeps republishing
        (records carry a ``record_ttl`` lease).  Each tick, every live
        member refreshes its record (charged as publish traffic) and
        lapsed leases are purged.  Defaults to half the lease so a
        healthy node never expires.
        """
        if self._refresh_timer is not None:
            return
        if interval is None:
            if not np.isfinite(self.params.record_ttl):
                raise ValueError(
                    "refresh needs an interval when record_ttl is infinite"
                )
            interval = self.params.record_ttl / 2.0

        def tick():
            for node_id in list(self.ecan.can.nodes):
                if node_id in self.store.registry:
                    self.store.publish(node_id)
            self.store.expire_stale()

        self._refresh_timer = self.network.clock.schedule_every(interval, tick)

    def stop_refresh(self) -> None:
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()
            self._refresh_timer = None

    # -- adaptive re-selection via pub/sub --------------------------------------------

    def enable_adaptive(self, node_id: int) -> int:
        """Subscribe ``node_id`` to the regions behind its table entries.

        Whenever a candidate joins one of those regions closer (in
        landmark space) than the current representative, the entry is
        re-selected through the policy.  Returns the number of
        subscriptions installed.
        """
        if node_id in self._adaptive:
            return 0
        own = self.store.registry.get(node_id)
        if own is None:
            raise KeyError(f"node {node_id} has no identity record")
        own_vector = np.asarray(own.landmark_vector)
        installed = 0
        zone = self.ecan.can.nodes[node_id].zone
        from repro.overlay.zone import sibling_cells

        for level in range(1, zone.max_level + 1):
            for cell in sibling_cells(zone.cell(level)):
                # table_entry fills the slot lazily if this node joined
                # before its zone reached this depth
                entry, _ = self.ecan.table_entry(node_id, level, cell)
                current = None if entry is None else self.store.registry.get(entry)
                if current is None:
                    threshold = float("inf")
                else:
                    threshold = float(
                        np.linalg.norm(
                            np.asarray(current.landmark_vector) - own_vector
                        )
                    )
                condition = Condition.node_joined(
                    vector=own.landmark_vector, within_distance=threshold
                )
                self.pubsub.subscribe(
                    node_id,
                    Region(level, cell),
                    condition,
                    callback=self._on_closer_candidate,
                )
                installed += 1
        self._adaptive.add(node_id)
        return installed

    def _on_closer_candidate(self, subscription, event) -> None:
        node_id = subscription.subscriber
        if node_id not in self.ecan.can.nodes:
            return
        self.ecan.refresh_entry(
            node_id, subscription.region.level, subscription.region.cell
        )

    # -- diagnostics ---------------------------------------------------------------------

    def describe(self) -> dict:
        """One-line summary used by examples and experiment logs."""
        return {
            "nodes": len(self),
            "policy": self.ecan.policy.name,
            "landmarks": self.space.landmarks.count,
            "condense_rate": self.store.condense_rate,
            "map_entries": self.store.total_entries(),
            "subscriptions": self.pubsub.subscription_count(),
        }
