"""Statistical helpers for experiment aggregation.

Quick-scale experiment cells are noisy (hundreds of routes on a
~1k-node topology); these utilities let runners and benches report
seed-aggregated means with bootstrap confidence intervals instead of
single draws.
"""

from __future__ import annotations

import numpy as np


def bootstrap_ci(
    values,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator = None,
    statistic=np.mean,
) -> tuple:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Returns ``(low, high)``; degenerates to the point value for
    samples of size one.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if values.size == 1:
        point = float(statistic(values))
        return point, point
    if rng is None:
        # standalone convenience only -- aggregation loops must thread
        # one shared Generator through every call, or all their cells
        # reuse identical resample indices and the CIs correlate
        rng = np.random.default_rng(0)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    stats = statistic(values[indices], axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def aggregate_over_seeds(
    run_fn, seeds, key_fields, value_fields, rng: np.random.Generator = None
) -> list:
    """Run ``run_fn(seed)`` for each seed and merge its row lists.

    Rows are grouped by ``key_fields``; each field in ``value_fields``
    becomes three output columns: mean, ``*_lo`` and ``*_hi``
    (bootstrap 95% CI across seeds).  Rows missing a value field (or
    holding None) are skipped for that field.

    One ``rng`` (seeded here if the caller passes none) is threaded
    through every :func:`bootstrap_ci` call, so each cell draws fresh
    resample indices instead of all cells sharing one deterministic
    draw -- identical draws would correlate the CIs across rows.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if rng is None:
        rng = np.random.default_rng(0)
    grouped: dict = {}
    order: list = []
    for seed in seeds:
        for row in run_fn(seed):
            key = tuple(row[k] for k in key_fields)
            if key not in grouped:
                grouped[key] = {field: [] for field in value_fields}
                order.append(key)
            for field in value_fields:
                value = row.get(field)
                if value is not None and np.isfinite(value):
                    grouped[key][field].append(float(value))
    out = []
    for key in order:
        row = dict(zip(key_fields, key))
        row["seeds"] = len(seeds)
        for field in value_fields:
            values = grouped[key][field]
            if not values:
                row[field] = None
                continue
            row[field] = float(np.mean(values))
            low, high = bootstrap_ci(values, rng=rng)
            row[f"{field}_lo"] = low
            row[f"{field}_hi"] = high
        out.append(row)
    return out


def paired_improvement(baseline, treated) -> dict:
    """Summary of a paired comparison (same seeds, two treatments)."""
    baseline = np.asarray(list(baseline), dtype=np.float64)
    treated = np.asarray(list(treated), dtype=np.float64)
    if baseline.shape != treated.shape or baseline.size == 0:
        raise ValueError("need equal-length, non-empty paired samples")
    deltas = baseline - treated
    wins = int((deltas > 0).sum())
    return {
        "n": int(baseline.size),
        "mean_baseline": float(baseline.mean()),
        "mean_treated": float(treated.mean()),
        "mean_saving": float(deltas.mean() / baseline.mean())
        if baseline.mean() != 0
        else 0.0,
        "wins": wins,
        "win_rate": wins / baseline.size,
    }
