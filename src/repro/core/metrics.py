"""Small statistics helpers shared by experiments and benches."""

from __future__ import annotations

import numpy as np


def summarize(values) -> dict:
    """Mean/median/percentile summary of a sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"n": 0, "mean": float("nan"), "median": float("nan"),
                "p90": float("nan"), "p95": float("nan"),
                "min": float("nan"), "max": float("nan")}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "p95": float(np.percentile(arr, 95)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


def gini(values) -> float:
    """Gini coefficient of a non-negative sample (imbalance measure)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0 or arr.sum() == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    return float((2 * (index * arr).sum() - (n + 1) * arr.sum()) / (n * arr.sum()))


def improvement(baseline: float, value: float) -> float:
    """Relative reduction of ``value`` versus ``baseline`` (0.2 = 20%)."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline
