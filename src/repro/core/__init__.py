"""The topology-aware overlay: the paper's system, assembled.

:class:`repro.core.builder.TopologyAwareOverlay` wires together the
physical network, the landmark machinery, the eCAN and the global
soft-state into the system the paper evaluates; `core.churn` drives
membership dynamics over it, and `core.qos` adds the §6 load-aware
extension.
"""

from repro.core.builder import TopologyAwareOverlay
from repro.core.churn import ChurnDriver, ChurnEvent, poisson_churn
from repro.core.config import NetworkParams, OverlayParams, make_network
from repro.core.metrics import summarize
from repro.core.qos import LoadTracker, pareto_capacities
from repro.core.recovery import (
    DetectorParams,
    FailureDetector,
    RecoveryManager,
    check_invariants,
)
from repro.core.reliability import NO_RETRY, RetryPolicy, measure_vector_reliably
from repro.core.stats import aggregate_over_seeds, bootstrap_ci, paired_improvement
from repro.core.telemetry import Telemetry, TraceEvent, diff_snapshots

__all__ = [
    "ChurnDriver",
    "ChurnEvent",
    "DetectorParams",
    "FailureDetector",
    "LoadTracker",
    "NO_RETRY",
    "NetworkParams",
    "OverlayParams",
    "RecoveryManager",
    "RetryPolicy",
    "Telemetry",
    "TopologyAwareOverlay",
    "TraceEvent",
    "aggregate_over_seeds",
    "bootstrap_ci",
    "check_invariants",
    "make_network",
    "measure_vector_reliably",
    "paired_improvement",
    "pareto_capacities",
    "poisson_churn",
    "summarize",
]
