"""Diagnostics: where does the stretch come from?

Three introspection helpers used by the docs, the examples and
curious users:

* :func:`hop_latency_profile` -- mean physical latency per hop index
  over a route sample.  Shows the characteristic proximity-selection
  signature: early (high-choice) hops are short, terminal hops are
  not -- and explains why base-4 hierarchies (eCAN, Pastry) benefit
  more than a binary Chord ring.
* :func:`table_quality` -- per-level ratio between the latency of the
  installed expressway entry and the best possible member of that
  cell; 1.0 everywhere means the oracle.
* :func:`map_placement_report` -- how the soft-state maps are spread
  over hosting nodes per region level (the condense-rate trade-off in
  numbers).
"""

from __future__ import annotations

import numpy as np


def hop_latency_profile(overlay, samples: int = 200, rng=None, max_hops: int = 12) -> list:
    """Mean latency of the k-th hop across sampled routes.

    Works on a :class:`~repro.core.builder.TopologyAwareOverlay`.
    Returns rows ``{"hop", "mean_latency_ms", "count"}``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    network = overlay.network
    nodes = overlay.ecan.can.nodes
    totals = np.zeros(max_hops)
    counts = np.zeros(max_hops, dtype=np.int64)
    ids = np.array(overlay.node_ids)
    for _ in range(samples):
        src, dst = rng.choice(ids, size=2, replace=False)
        result = overlay.ecan.route(int(src), nodes[int(dst)].zone.center())
        if not result.success:
            continue
        hosts = [nodes[n].host for n in result.path]
        for k, (a, b) in enumerate(zip(hosts, hosts[1:])):
            if k >= max_hops:
                break
            totals[k] += network.latency(a, b)
            counts[k] += 1
    return [
        {
            "hop": k + 1,
            "mean_latency_ms": float(totals[k] / counts[k]) if counts[k] else None,
            "count": int(counts[k]),
        }
        for k in range(max_hops)
        if counts[k]
    ]


def table_quality(overlay, max_nodes: int = None) -> list:
    """Per-level expressway entry quality vs the cell's best member.

    Rows: ``{"level", "mean_ratio", "entries"}`` where ratio 1.0 means
    the installed representative is the physically closest member.
    """
    network = overlay.network
    ecan = overlay.ecan
    sums: dict = {}
    counts: dict = {}
    node_ids = overlay.node_ids if max_nodes is None else overlay.node_ids[:max_nodes]
    for node_id in node_ids:
        node = ecan.can.nodes[node_id]
        for level, row in ecan.table_of(node_id).items():
            for cell, entry in row.items():
                members = ecan.members(level, cell, exclude=node_id)
                if entry not in members or not members:
                    continue
                best = min(
                    network.latency(node.host, ecan.can.nodes[m].host)
                    for m in members
                )
                got = network.latency(node.host, ecan.can.nodes[entry].host)
                ratio = 1.0 if best <= 0 else got / best
                sums[level] = sums.get(level, 0.0) + ratio
                counts[level] = counts.get(level, 0) + 1
    return [
        {
            "level": level,
            "mean_ratio": sums[level] / counts[level],
            "entries": counts[level],
        }
        for level in sorted(sums)
    ]


def map_placement_report(store) -> list:
    """Hosting spread of the proximity maps, per region level.

    Rows: ``{"level", "regions", "entries", "hosting_nodes",
    "max_entries_one_node"}``.
    """
    per_level: dict = {}
    for region, bucket in store.maps.items():
        level = region.level
        stats = per_level.setdefault(
            level, {"regions": 0, "entries": 0, "hosts": {}}
        )
        stats["regions"] += 1
        stats["entries"] += len(bucket)
        for stored in bucket.values():
            owner = store.ecan.can.owner_of_point(stored.position)
            stats["hosts"][owner] = stats["hosts"].get(owner, 0) + 1
    return [
        {
            "level": level,
            "regions": stats["regions"],
            "entries": stats["entries"],
            "hosting_nodes": len(stats["hosts"]),
            "max_entries_one_node": max(stats["hosts"].values(), default=0),
        }
        for level, stats in sorted(per_level.items())
    ]
