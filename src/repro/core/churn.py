"""Churn: membership dynamics over the topology-aware overlay.

The paper motivates soft-state maintenance with "as nodes join
(depart) or network conditions flux, existing routing tables need to
be repaired".  This driver replays join/leave traces against a
:class:`~repro.core.builder.TopologyAwareOverlay`, advancing the
simulated clock so lease expiry and periodic polling fire, and
samples routing stretch plus message counters along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a simulated time."""

    time: float
    kind: str  # "join" | "leave"

    def __post_init__(self):
        if self.kind not in ("join", "leave"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")


def poisson_churn(
    rng: np.random.Generator,
    duration: float,
    join_rate: float,
    leave_rate: float,
) -> list:
    """Independent Poisson join and leave processes over ``duration``."""
    events = []
    for rate, kind in ((join_rate, "join"), (leave_rate, "leave")):
        if rate <= 0:
            continue
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= duration:
                break
            events.append(ChurnEvent(time=t, kind=kind))
    events.sort(key=lambda e: (e.time, e.kind))
    return events


class ChurnDriver:
    """Replay churn events and sample overlay health."""

    def __init__(
        self,
        overlay,
        rng: np.random.Generator = None,
        graceful_fraction: float = 1.0,
        min_nodes: int = 8,
    ):
        self.overlay = overlay
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.graceful_fraction = graceful_fraction
        self.min_nodes = min_nodes
        self.applied = 0
        self.skipped = 0
        self._epoch = None

    def apply(self, event: ChurnEvent, epoch: float = None) -> bool:
        """Apply one event; returns False when it had to be skipped.

        Event times are relative to ``epoch`` (default: the clock's
        current time on first use), so traces replay correctly even on
        a clock another experiment already advanced.
        """
        clock = self.overlay.network.clock
        if epoch is None:
            if self._epoch is None:
                self._epoch = clock.now
            epoch = self._epoch
        target = epoch + event.time
        if target > clock.now:
            clock.run_until(target)
        if event.kind == "join":
            self.overlay.add_node()
        else:
            if len(self.overlay) <= self.min_nodes:
                self.skipped += 1
                return False
            victim = self.overlay.random_member()
            graceful = bool(self.rng.random() < self.graceful_fraction)
            self.overlay.remove_node(victim, graceful=graceful)
        self.applied += 1
        return True

    def run(
        self,
        events,
        measure_every: int = 0,
        stretch_samples: int = 64,
    ) -> list:
        """Replay ``events``; optionally sample stretch every N events.

        Returns timeline rows: ``{"time", "nodes", "mean_stretch",
        "messages", "stale_entries"}`` -- one row per measurement
        point (plus a final row).
        """
        rows = []
        stats = self.overlay.network.stats
        if self._epoch is None:
            self._epoch = self.overlay.network.clock.now

        def sample(time: float) -> None:
            before = stats.snapshot()
            stretch = self.overlay.measure_stretch(stretch_samples, rng=self.rng)
            # measurement traffic should not pollute the churn accounting
            measured = stats.delta(before)
            for key, value in measured.items():
                stats.count(key, -value)
            rows.append(
                {
                    "time": time,
                    "nodes": len(self.overlay),
                    "mean_stretch": float(stretch.mean()) if stretch.size else None,
                    "messages": stats.total(),
                    "stale_entries": self.overlay.maintenance.stale_entries(),
                }
            )

        for i, event in enumerate(events):
            self.apply(event)
            if measure_every and (i + 1) % measure_every == 0:
                sample(event.time)
        final_time = events[-1].time if events else self.overlay.network.clock.now
        sample(final_time)
        return rows
