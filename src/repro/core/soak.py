"""Churn-soak harness: drive the overlay back to legitimacy from anywhere.

Berns et al.'s self-stabilization framework (PAPERS.md) asks for more
than surviving clean crashes: convergence from *arbitrary* states --
a legitimate-state predicate plus a bounded number of repair rounds
from any corruption an adversary can leave behind.  This module is
that harness for both execution modes:

* the **legitimacy detector** is
  :func:`repro.core.recovery.check_invariants` -- tessellation
  coverage, store/index agreement, liveness of every reference;
* the **adversary** is :func:`inject_corruption`, which scrambles
  expressway tables, stales map replicas, or poisons the owner index
  in place;
* the **repair engine** is the recovery stack: the failure detector's
  verdicts plus the scrub/reconcile anti-entropy passes.

:func:`run_sim_soak` soaks a simulated overlay under continuous
join/leave/crash/partition churn on the simulated clock;
:func:`run_live_soak` does the same against a live
:class:`~repro.runtime.cluster.Cluster` over the wire, measuring
lookup availability through a kill-33%-of-nodes event.  Both record
rounds-to-convergence per corruption class -- the bound the
``ext_churn_soak`` bench and the ``soak-smoke`` CI gate assert on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace

import numpy as np

from repro.core.builder import TopologyAwareOverlay
from repro.core.config import NetworkParams, OverlayParams, make_network
from repro.core.recovery import DetectorParams, check_invariants
from repro.netsim.faults import FaultPlan, Partition

#: the adversarial state-corruption classes the harness must heal from
CORRUPTION_KINDS = ("scramble_tables", "stale_replicas", "poison_owner_index")


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run (either execution mode)."""

    nodes: int = 256
    #: churn epochs; each injects one corruption class (cycling)
    epochs: int = 3
    #: members joined / departed / crashed per epoch
    churn_joins: int = 2
    churn_leaves: int = 2
    churn_crashes: int = 2
    #: fraction of each structure's entries the adversary corrupts
    corrupt_fraction: float = 0.2
    #: maximum repair rounds allowed before convergence counts as failed
    round_budget: int = 30
    #: availability probes per epoch (sim) / load requests (live)
    lookups: int = 128
    seed: int = 0
    topo_scale: float = 0.25
    #: simulated ms between detector rounds (sim mode)
    detector_period: float = 500.0
    #: install a transit partition window on odd epochs (sim mode)
    partition_epochs: bool = True
    #: live mode: offered load (req/s) and detector/probe cadence (wall s)
    live_rate: float = 400.0
    live_heartbeat_period: float = 0.05
    live_probe_timeout: float = 0.25
    live_request_timeout: float = 1.0


# -- the adversary -----------------------------------------------------------


def inject_corruption(overlay, kind: str, rng, fraction: float = 0.2) -> int:
    """Corrupt live overlay state in place; returns entries corrupted.

    Each class trips a distinct :func:`check_invariants` assertion
    until the matching repair runs:

    * ``scramble_tables`` -- point expressway entries at ghost node
      ids that are not members; caught by the table-liveness
      assertion, repaired by
      :meth:`~repro.core.recovery.RecoveryManager.scrub_tables`.
    * ``stale_replicas`` -- move stored map copies off their computed
      positions; caught by the stale-position assertion, repaired by
      :meth:`~repro.core.recovery.RecoveryManager.scrub_store`
      re-publishing the subjects.
    * ``poison_owner_index`` -- re-attribute owner-index entries to
      wrong (live) owners, consistently on both index sides; caught by
      ``check_owner_index``'s brute-force cross-check, repaired by
      :meth:`~repro.softstate.store.SoftStateStore.rebuild_owner_index`.
    """
    store = overlay.store
    if kind == "scramble_tables":
        ecan = overlay.ecan
        slots = [
            (node_id, level, cell)
            for node_id, table in ecan._tables.items()
            for level, row in table.items()
            for cell in row
        ]
        if not slots:
            return 0
        count = min(len(slots), max(1, int(fraction * len(slots))))
        picks = rng.choice(len(slots), size=count, replace=False)
        ghost = -4096  # ids are non-negative, so never a member
        for index in picks:
            node_id, level, cell = slots[int(index)]
            ecan._tables[node_id][level][cell] = ghost
            ghost -= 1
        return count
    if kind == "stale_replicas":
        entries = [
            (region, node_id)
            for region, bucket in store.maps.items()
            for node_id in bucket
        ]
        if not entries:
            return 0
        count = min(len(entries), max(1, int(fraction * len(entries))))
        picks = rng.choice(len(entries), size=count, replace=False)
        for index in picks:
            region, node_id = entries[int(index)]
            stored = store.maps[region][node_id]
            zone = region.zone()
            jitter = rng.random(len(stored.position))
            stored.position = tuple(
                lo + float(j) * (hi - lo)
                for j, lo, hi in zip(jitter, zone.lo, zone.hi)
            )
        return count
    if kind == "poison_owner_index":
        members = sorted(overlay.ecan.can.nodes)
        entries = [
            (region, node_id)
            for region, owners in store._owners.items()
            for node_id in owners
        ]
        if not entries or len(members) < 2:
            return 0
        count = min(len(entries), max(1, int(fraction * len(entries))))
        picks = rng.choice(len(entries), size=count, replace=False)
        for index in picks:
            region, node_id = entries[int(index)]
            current = store._owners[region][node_id]
            wrong = members[int(rng.integers(0, len(members)))]
            if wrong == current:
                wrong = members[(members.index(wrong) + 1) % len(members)]
            # keep both index sides mutually consistent -- the
            # corruption must survive everything except the
            # brute-force cross-check
            store._index_insert(region, node_id, wrong)
        return count
    raise ValueError(f"unknown corruption kind {kind!r}")


def _legitimate(overlay, detector):
    """(ok, violation) under the legitimacy predicate."""
    try:
        check_invariants(overlay, detector)
        return True, None
    except AssertionError as exc:
        return False, str(exc).splitlines()[0]


# -- simulated-clock soak ----------------------------------------------------


def _live_members(overlay) -> list:
    crashed = (
        overlay.network.faults.crashed_hosts
        if overlay.network.faults is not None
        else set()
    )
    return [
        node_id
        for node_id, node in overlay.ecan.can.nodes.items()
        if node.host not in crashed
    ]


def _sim_availability(overlay, rng, samples: int) -> float:
    """Fraction of uniform routes from live members that deliver."""
    if samples <= 0:
        return float("nan")
    members = _live_members(overlay)
    dims = overlay.ecan.dims
    delivered = 0
    for _ in range(samples):
        src = members[int(rng.integers(0, len(members)))]
        point = tuple(float(x) for x in rng.random(dims))
        result = overlay.ecan.route(src, point, category="soak_lookup")
        delivered += bool(result.success)
    return delivered / samples


def _converge_sim(overlay, budget: int) -> tuple:
    """(rounds_to_converge | None, last_violation) on the sim clock.

    One repair round = one detector period elapsing (probes fire),
    then a scrub pass and a reconcile pass -- exactly the periodic
    work a deployment would schedule.
    """
    recovery = overlay.recovery
    clock = overlay.network.clock
    period = overlay.detector.params.period
    violation = None
    for round_index in range(1, budget + 1):
        clock.run_until(clock.now + period)
        recovery.scrub()
        recovery.reconcile()
        ok, violation = _legitimate(overlay, overlay.detector)
        if ok:
            return round_index, None
    return None, violation


def run_sim_soak(config: SoakConfig) -> dict:
    """Soak a simulated overlay; returns the per-epoch convergence record.

    Fully deterministic in ``config`` (pure simulated clock + seeded
    RNG), so results are byte-stable across runs.
    """
    network = make_network(
        NetworkParams(topo_scale=config.topo_scale, seed=config.seed)
    )
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=config.nodes, seed=config.seed)
    )
    overlay.build_bulk(config.nodes)
    overlay.arm_faults(FaultPlan(), seed=config.seed)
    overlay.enable_recovery(DetectorParams(period=config.detector_period))
    rng = np.random.default_rng(config.seed)
    detector = overlay.detector
    epochs = []
    for epoch in range(config.epochs):
        kind = CORRUPTION_KINDS[epoch % len(CORRUPTION_KINDS)]
        # -- churn: joins, graceful leaves, crash-stops ------------------
        for _ in range(config.churn_joins):
            overlay.add_node()
        for _ in range(config.churn_leaves):
            members = _live_members(overlay)
            overlay.remove_node(members[int(rng.integers(0, len(members)))])
        crash_loss = 0
        for _ in range(config.churn_crashes):
            members = _live_members(overlay)
            victim = members[int(rng.integers(0, len(members)))]
            crash_loss += overlay.crash_node(victim)["lost"]
        if config.partition_epochs and epoch % 2 == 1:
            _install_partition(overlay, rng)
        # -- availability while the corpses are still members ------------
        availability = _sim_availability(overlay, rng, config.lookups)
        # -- adversarial corruption --------------------------------------
        corrupted = inject_corruption(
            overlay, kind, rng, config.corrupt_fraction
        )
        # -- bounded convergence -----------------------------------------
        rounds, violation = _converge_sim(overlay, config.round_budget)
        # lease maintenance sweeps the now-clean state: with every
        # corpse taken over, any purge of a member here is a genuine
        # false purge (the metric must stay 0)
        overlay.maintenance.poll_once()
        epochs.append(
            {
                "mode": "sim",
                "epoch": epoch,
                "kind": kind,
                "corrupted": int(corrupted),
                "crash_lost_records": int(crash_loss),
                "availability": round(availability, 4),
                "rounds_to_converge": rounds,
                "violation": violation,
            }
        )
    return {
        "mode": "sim",
        "nodes": config.nodes,
        "nodes_final": len(overlay),
        "epochs": epochs,
        "converged": all(e["rounds_to_converge"] is not None for e in epochs),
        "false_kills": detector.false_kills,
        "false_purges": overlay.maintenance.false_purges,
        "shielded_verdicts": detector.shielded_verdicts,
        "takeovers": overlay.recovery.takeovers,
        "scrub_repairs": overlay.recovery.scrubbed,
    }


def _install_partition(overlay, rng) -> Partition:
    """Sever one member's transit domain for six detector periods.

    The window overlaps the convergence loop, so the detector must
    *shield* its verdicts against the severed side (silence is
    explainable) and reconcile the suspicions away after the heal --
    the partition half of the churn mix.
    """
    network = overlay.network
    faults = network.faults
    members = _live_members(overlay)
    host = overlay.ecan.can.nodes[
        members[int(rng.integers(0, len(members)))]
    ].host
    domain = int(network.topology.transit_domain[host])
    period = overlay.detector.params.period
    # long enough for suspicion on the severed side to cross the
    # confirm threshold, where the shield must hold the verdict
    window = Partition(
        start=network.clock.now,
        end=network.clock.now + 6.0 * period,
        domains=(domain,),
    )
    faults.plan = replace(
        faults.plan, partitions=faults.plan.partitions + (window,)
    )
    return window


# -- live-runtime soak -------------------------------------------------------


async def _converge_live(cluster, recovery, budget: int) -> tuple:
    """(rounds_to_converge | None, last_violation) on the wall clock."""
    violation = None
    for round_index in range(1, budget + 1):
        await asyncio.sleep(recovery.period_s)
        recovery.scrub()
        await recovery.reconcile()
        ok, violation = _legitimate(cluster.overlay, recovery)
        if ok:
            return round_index, None
    return None, violation


async def run_live_soak(config: SoakConfig, transport: str = "loopback") -> dict:
    """Soak a live cluster over the wire; returns the convergence record.

    Sequence: bulk-boot N actors, arm the SWIM loop, then (1) sustain
    open-loop lookup traffic through a kill-33%-of-nodes event and
    measure availability, (2) converge from the mass kill, (3) shield
    a live partition window, heal it and reconcile, (4) inject each
    corruption class and converge within the round budget.  Rounds and
    availability depend on wall-clock races, so callers must report
    them under ``wall``-prefixed keys.
    """
    from repro.core.reliability import RetryPolicy
    from repro.runtime.cluster import Cluster, ClusterConfig
    from repro.runtime.loadgen import run_load

    cluster_config = ClusterConfig(
        nodes=config.nodes,
        network=NetworkParams(topo_scale=config.topo_scale, seed=config.seed),
        overlay=OverlayParams(num_nodes=config.nodes, seed=config.seed),
        transport=transport,
        request_timeout=config.live_request_timeout,
        heartbeat_period=config.live_heartbeat_period,
        probe_timeout=config.live_probe_timeout,
        retry=RetryPolicy(max_attempts=2, base_delay=20.0, max_delay=100.0),
        bulk_boot=True,
    )
    rng = np.random.default_rng(config.seed)
    cluster = Cluster(cluster_config)
    await cluster.start()
    try:
        recovery = await cluster.enable_recovery(
            DetectorParams(
                period=config.live_heartbeat_period * 1000.0,
                suspicion_periods=1,
            )
        )
        # -- (1) lookup traffic through a kill-33% event -----------------
        load = asyncio.get_running_loop().create_task(
            run_load(
                cluster, rate=config.live_rate, count=config.lookups,
                seed=config.seed,
            )
        )
        # let roughly a third of the arrivals land, then pull the rug
        await asyncio.sleep(config.lookups / (3.0 * config.live_rate))
        victims = await cluster.kill_fraction(1.0 / 3.0, seed=config.seed)
        report = await load
        availability = report.succeeded / report.ops if report.ops else 0.0
        # -- (2) converge from the mass kill -----------------------------
        epochs = []
        rounds, violation = await _converge_live(
            cluster, recovery, config.round_budget
        )
        epochs.append(
            {
                "mode": "live",
                "kind": "kill_33pct",
                "corrupted": len(victims),
                "wall_rounds_to_converge": rounds,
                "violation": violation,
            }
        )
        # -- (3) partition shielding + heal ------------------------------
        members = sorted(cluster.actors)
        host = cluster.overlay.ecan.can.nodes[
            members[int(rng.integers(0, len(members)))]
        ].host
        domain = int(cluster.network.topology.transit_domain[host])
        cluster.partition([domain])
        # hold the cut until enough detector rounds complete for
        # suspicion on the severed side to reach the confirm threshold,
        # where the shield must hold the verdict (false_kills staying 0
        # through this phase is the proof); rounds are counted rather
        # than wall time because tick cadence stretches under load
        first = recovery.rounds
        loop_time = asyncio.get_running_loop().time
        deadline = loop_time() + max(5.0, 60.0 * recovery.period_s)
        while recovery.rounds < first + 5 and loop_time() < deadline:
            await asyncio.sleep(recovery.period_s)
        shielded = recovery.shielded_verdicts
        cluster.heal_partition()
        await recovery.reconcile()
        # -- (4) churn + the three corruption classes --------------------
        for _ in range(config.churn_joins):
            await cluster.restart()
        for _ in range(config.churn_leaves):
            live = [n for n in cluster.actors if n != cluster.bootstrap.addr]
            await cluster.leave(live[int(rng.integers(0, len(live)))])
        for kind in CORRUPTION_KINDS:
            corrupted = inject_corruption(
                cluster.overlay, kind, rng, config.corrupt_fraction
            )
            rounds, violation = await _converge_live(
                cluster, recovery, config.round_budget
            )
            epochs.append(
                {
                    "mode": "live",
                    "kind": kind,
                    "corrupted": int(corrupted),
                    "wall_rounds_to_converge": rounds,
                    "violation": violation,
                }
            )
        counters = cluster.retry_counters()
        return {
            "mode": "live",
            "transport": transport,
            "nodes": config.nodes,
            "nodes_final": len(cluster),
            "epochs": epochs,
            "converged": all(
                e["wall_rounds_to_converge"] is not None for e in epochs
            ),
            "wall_availability": round(availability, 4),
            "load_ops": report.ops,
            "load_errors": report.errors,
            "wall_p99_ms": report.percentiles()["p99"],
            "killed": len(victims),
            "false_kills": recovery.false_kills,
            "false_purges": cluster.overlay.maintenance.false_purges,
            "shielded_verdicts": shielded,
            "takeovers": recovery.manager.takeovers,
            "scrub_repairs": recovery.manager.scrubbed,
            "retries": counters["retries"],
            "wall_backoff_ms": counters["backoff_ms"],
        }
    finally:
        await cluster.stop()
