"""Retry, timeout and backoff policies for the faulty network.

Every layer that talks to the (fault-injectable) network shares one
:class:`RetryPolicy`: a bounded number of attempts separated by
exponential backoff that advances the *simulated* clock -- never
wall-clock time -- so resilience experiments stay deterministic and
can report recovery times in simulated milliseconds.

Consumers receive a policy instance rather than importing this module
(the soft-state and overlay packages sit *below* ``repro.core`` in
the import graph):

* eCAN routing retries each forwarding hop, skips expressway entries
  that keep failing, and degrades to greedy CAN neighbors;
* hybrid proximity search retries timed-out candidate probes and
  falls back to pure landmark ranking when every probe times out;
* periodic maintenance confirms a suspected death ``confirmations``
  times before purging, eliminating false-positive purges under loss;
* new joiners re-probe landmarks whose measurements were lost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.faults import ProbeTimeout


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with sim-clock exponential backoff.

    ``delay(k)`` is the wait after the ``k``-th failed attempt
    (0-indexed): ``base_delay * backoff_factor**k`` capped at
    ``max_delay``.  A policy with ``max_attempts=1`` never retries
    (the "no-retry" baseline of the resilience experiments).
    """

    max_attempts: int = 3
    base_delay: float = 50.0
    backoff_factor: float = 2.0
    max_delay: float = 2000.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        # accounting attributes (not dataclass fields: the policy stays
        # hashable/comparable on its schedule parameters alone)
        object.__setattr__(self, "backoff_slept_ms", 0.0)
        object.__setattr__(self, "retries", 0)

    # -- schedule ----------------------------------------------------------

    def delay(self, attempt: int) -> float:
        """Backoff (simulated ms) after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.base_delay * self.backoff_factor**attempt, self.max_delay)

    def schedule(self) -> tuple:
        """All backoff delays a fully exhausted call sleeps through."""
        return tuple(self.delay(k) for k in range(self.max_attempts - 1))

    def total_delay(self) -> float:
        """Simulated ms spent backing off when every attempt fails."""
        return float(sum(self.schedule()))

    # -- execution ---------------------------------------------------------

    def sleep(self, attempt: int, clock=None, telemetry=None) -> float:
        """Back off after failed attempt ``attempt`` and account for it.

        Advances the simulated ``clock`` when one is given, and always
        adds the delay to :attr:`backoff_slept_ms` (plus a ``retry``
        event and a ``backoff_ms`` counter on ``telemetry``) -- a
        caller that forgets the clock can no longer silently
        under-report recovery time, because the slept backoff stays
        visible to the accounting layer either way.
        """
        delay = self.delay(attempt)
        if clock is not None:
            clock.advance(delay)
        object.__setattr__(self, "backoff_slept_ms", self.backoff_slept_ms + delay)
        object.__setattr__(self, "retries", self.retries + 1)
        if telemetry is not None:
            telemetry.emit("retry", backoff_ms=delay, attempt=attempt)
            telemetry.count("backoff_ms", delay)
        return delay

    def reset_accounting(self) -> None:
        """Zero the cumulative backoff/retry accounting."""
        object.__setattr__(self, "backoff_slept_ms", 0.0)
        object.__setattr__(self, "retries", 0)

    def call(self, fn, clock=None, retry_on=(ProbeTimeout,), telemetry=None):
        """Run ``fn(attempt)`` until it succeeds or attempts run out.

        Between attempts the simulated ``clock`` (if given) is advanced
        by the backoff delay; every backoff is tracked in
        :attr:`backoff_slept_ms` (and charged to ``telemetry``) even
        without a clock, so recovery-time reports cannot silently drop
        it.  The final failure re-raises.
        """
        last = None
        for attempt in range(self.max_attempts):
            try:
                return fn(attempt)
            except retry_on as exc:
                last = exc
                if attempt + 1 < self.max_attempts:
                    self.sleep(attempt, clock=clock, telemetry=telemetry)
        raise last

    def probe(self, network, u: int, v: int, category: str = "rtt_probe"):
        """RTT probe with retries; each attempt is charged as usual.

        The network's clock and telemetry are passed unconditionally,
        so backoff always advances simulated time and is charged.
        """
        return self.call(
            lambda attempt: network.rtt(u, v, category=category),
            clock=network.clock,
            telemetry=getattr(network, "telemetry", None),
        )

    def probe_alive(self, network, u: int, v: int, category: str = "liveness_probe") -> bool:
        """True when some attempt of a liveness probe was answered."""
        try:
            self.probe(network, u, v, category=category)
        except ProbeTimeout:
            return False
        return True


#: the fire-and-forget baseline: one attempt, no waiting
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0)


def measure_vector_reliably(
    network,
    landmarks,
    host: int,
    policy: RetryPolicy = None,
    category: str = "landmark_probe",
) -> np.ndarray:
    """Measure a landmark vector under faults, re-probing lost entries.

    Entries still missing after the policy's attempts are filled with
    the worst successfully measured *non-spiked* RTT -- a pessimistic
    estimate that keeps the joiner operational (graceful degradation)
    instead of stalling the join, without letting a single
    latency-spiked :class:`~repro.netsim.faults.ProbeResult` become
    the fill for every silent landmark.  Only when *every* answered
    probe was spiked does the fill fall back to the spiked maximum.
    Raises :class:`ProbeTimeout` only if every landmark stayed silent
    through every attempt.
    """
    if policy is None:
        policy = RetryPolicy()
    telemetry = getattr(network, "telemetry", None)
    hosts = np.asarray(landmarks.hosts, dtype=np.int64)
    vector, spiked = network.rtt_many_detailed(int(host), hosts, category=category)
    vector = np.asarray(vector, dtype=np.float64)
    spiked = np.asarray(spiked, dtype=bool)
    for attempt in range(policy.max_attempts - 1):
        missing = np.isnan(vector)
        if not missing.any():
            break
        policy.sleep(attempt, clock=network.clock, telemetry=telemetry)
        refreshed, re_spiked = network.rtt_many_detailed(
            int(host), hosts[missing], category=category
        )
        vector[missing] = refreshed
        spiked[missing] = re_spiked
    missing = np.isnan(vector)
    if missing.all():
        raise ProbeTimeout(int(host), int(hosts[0]), reason="all landmarks silent")
    if missing.any():
        clean = vector[~missing & ~spiked]
        fill = float(clean.max()) if clean.size else float(np.nanmax(vector))
        vector[missing] = fill
    return vector

