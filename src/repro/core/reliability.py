"""Retry, timeout, backoff and overload-reaction policies.

Every layer that talks to the (fault-injectable) network shares one
:class:`RetryPolicy`: a bounded number of attempts separated by
exponential backoff that advances the *simulated* clock -- never
wall-clock time -- so resilience experiments stay deterministic and
can report recovery times in simulated milliseconds.

The live runtime additionally needs client-side *overload* reaction
(PR 8): :class:`DecorrelatedJitter` spreads BUSY retries so shed
requests do not re-arrive in lockstep, :class:`CircuitBreaker` stops
hammering a peer that keeps shedding or timing out (closed -> open ->
half-open probe -> closed), and :class:`AdaptiveTimeout` derives a
Jacobson-style per-peer RTO from EWMA RTT + variance so timeouts
track the network instead of a static ``--request-timeout``.  These
three are pure state machines over an injected clock/rng, so they
stay unit-testable and deterministic outside the event loop.

Consumers receive a policy instance rather than importing this module
(the soft-state and overlay packages sit *below* ``repro.core`` in
the import graph):

* eCAN routing retries each forwarding hop, skips expressway entries
  that keep failing, and degrades to greedy CAN neighbors;
* hybrid proximity search retries timed-out candidate probes and
  falls back to pure landmark ranking when every probe times out;
* periodic maintenance confirms a suspected death ``confirmations``
  times before purging, eliminating false-positive purges under loss;
* new joiners re-probe landmarks whose measurements were lost.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import numpy as np

from repro.netsim.faults import ProbeTimeout


class CircuitOpenError(Exception):
    """Raised (fast, locally) when a peer's circuit breaker is open."""

    def __init__(self, peer, retry_after_s: float = 0.0):
        super().__init__(f"circuit open for peer {peer!r}")
        self.peer = peer
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with sim-clock exponential backoff.

    ``delay(k)`` is the wait after the ``k``-th failed attempt
    (0-indexed): ``base_delay * backoff_factor**k`` capped at
    ``max_delay``.  A policy with ``max_attempts=1`` never retries
    (the "no-retry" baseline of the resilience experiments).
    """

    max_attempts: int = 3
    base_delay: float = 50.0
    backoff_factor: float = 2.0
    max_delay: float = 2000.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        # accounting attributes (not dataclass fields: the policy stays
        # hashable/comparable on its schedule parameters alone)
        object.__setattr__(self, "backoff_slept_ms", 0.0)
        object.__setattr__(self, "retries", 0)

    # -- schedule ----------------------------------------------------------

    def delay(self, attempt: int) -> float:
        """Backoff (simulated ms) after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.base_delay * self.backoff_factor**attempt, self.max_delay)

    def schedule(self) -> tuple:
        """All backoff delays a fully exhausted call sleeps through."""
        return tuple(self.delay(k) for k in range(self.max_attempts - 1))

    def total_delay(self) -> float:
        """Simulated ms spent backing off when every attempt fails."""
        return float(sum(self.schedule()))

    # -- execution ---------------------------------------------------------

    def sleep(self, attempt: int, clock=None, telemetry=None) -> float:
        """Back off after failed attempt ``attempt`` and account for it.

        Advances the simulated ``clock`` when one is given, and always
        adds the delay to :attr:`backoff_slept_ms` (plus a ``retry``
        event and a ``backoff_ms`` counter on ``telemetry``) -- a
        caller that forgets the clock can no longer silently
        under-report recovery time, because the slept backoff stays
        visible to the accounting layer either way.
        """
        delay = self.delay(attempt)
        if clock is not None:
            clock.advance(delay)
        object.__setattr__(self, "backoff_slept_ms", self.backoff_slept_ms + delay)
        object.__setattr__(self, "retries", self.retries + 1)
        if telemetry is not None:
            telemetry.emit("retry", backoff_ms=delay, attempt=attempt)
            telemetry.count("backoff_ms", delay)
        return delay

    def reset_accounting(self) -> None:
        """Zero the cumulative backoff/retry accounting."""
        object.__setattr__(self, "backoff_slept_ms", 0.0)
        object.__setattr__(self, "retries", 0)

    def call(self, fn, clock=None, retry_on=(ProbeTimeout,), telemetry=None):
        """Run ``fn(attempt)`` until it succeeds or attempts run out.

        Between attempts the simulated ``clock`` (if given) is advanced
        by the backoff delay; every backoff is tracked in
        :attr:`backoff_slept_ms` (and charged to ``telemetry``) even
        without a clock, so recovery-time reports cannot silently drop
        it.  The final failure re-raises.
        """
        last = None
        for attempt in range(self.max_attempts):
            try:
                return fn(attempt)
            except retry_on as exc:
                last = exc
                if attempt + 1 < self.max_attempts:
                    self.sleep(attempt, clock=clock, telemetry=telemetry)
        raise last

    def probe(self, network, u: int, v: int, category: str = "rtt_probe"):
        """RTT probe with retries; each attempt is charged as usual.

        The network's clock and telemetry are passed unconditionally,
        so backoff always advances simulated time and is charged.
        """
        return self.call(
            lambda attempt: network.rtt(u, v, category=category),
            clock=network.clock,
            telemetry=getattr(network, "telemetry", None),
        )

    def probe_alive(self, network, u: int, v: int, category: str = "liveness_probe") -> bool:
        """True when some attempt of a liveness probe was answered."""
        try:
            self.probe(network, u, v, category=category)
        except ProbeTimeout:
            return False
        return True


#: the fire-and-forget baseline: one attempt, no waiting
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0)


class DecorrelatedJitter:
    """AWS-style decorrelated-jitter backoff for BUSY retries.

    Each delay is ``min(cap, uniform(base, prev * 3))`` -- the spread
    grows with consecutive retries but successive clients never sync
    up on a common schedule the way plain exponential backoff does,
    so a shedding peer is not hit by a retry *wave*.  ``reset()``
    returns the ladder to ``base`` after a success.
    """

    def __init__(self, base_ms: float = 2.0, cap_ms: float = 250.0, rng=None):
        if base_ms <= 0:
            raise ValueError("base_ms must be positive")
        if cap_ms < base_ms:
            raise ValueError("cap_ms must be >= base_ms")
        self.base_ms = float(base_ms)
        self.cap_ms = float(cap_ms)
        self._rng = rng if rng is not None else random.Random()
        self._prev_ms = float(base_ms)

    def next_delay(self) -> float:
        """Next backoff in milliseconds (also advances the ladder)."""
        delay = min(self.cap_ms, self._rng.uniform(self.base_ms, self._prev_ms * 3.0))
        self._prev_ms = delay
        return delay

    def reset(self) -> None:
        self._prev_ms = self.base_ms


class CircuitBreaker:
    """Per-peer circuit breaker: closed -> open -> half-open -> closed.

    ``threshold`` *consecutive* failures (BUSY sheds or timeouts) open
    the circuit; while open, :meth:`allow` fast-fails locally so a
    struggling peer gets breathing room instead of more retries.
    After ``reset_timeout_s`` one half-open probe is let through: its
    success closes the circuit, its failure re-opens it for another
    full window.  The clock is injected (defaults to
    :func:`time.monotonic`) so tests drive state transitions without
    sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 8, reset_timeout_s: float = 1.0, clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.threshold = int(threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False
        # lifetime accounting, surfaced by the overload bench
        self.opens = 0
        self.closes = 0
        self.fast_fails = 0

    def allow(self) -> bool:
        """May a request be sent now?  (Counts the refusals it issues.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self.state = self.HALF_OPEN
                self._probing = False
            else:
                self.fast_fails += 1
                return False
        # half-open: exactly one in-flight probe at a time
        if self._probing:
            self.fast_fails += 1
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probing = False
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self.closes += 1

    def record_failure(self) -> bool:
        """Account one failure; True when this call *opened* the circuit."""
        self._probing = False
        if self.state == self.HALF_OPEN:
            # failed probe: straight back to open for a fresh window
            self.state = self.OPEN
            self._opened_at = self._clock()
            self.opens += 1
            return True
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self.state = self.OPEN
            self._opened_at = self._clock()
            self.opens += 1
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe is admitted (0 if now)."""
        if self.state != self.OPEN:
            return 0.0
        return max(0.0, self.reset_timeout_s - (self._clock() - self._opened_at))


class AdaptiveTimeout:
    """Jacobson-style per-peer RTO from EWMA RTT + variance.

    ``observe(rtt)`` folds a round-trip sample into the smoothed RTT
    (gain 1/8) and mean deviation (gain 1/4); :meth:`timeout` yields
    ``srtt + 4 * rttvar`` clamped to ``[min_s, max_s]``.  Until the
    first sample arrives the initial (static) timeout applies, so
    cold-start behavior is exactly the pre-adaptive one.  Karn-style:
    :meth:`backoff` doubles the effective RTO after a timeout (capped
    at ``max_s``) and any successful sample collapses the backoff.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, initial_s: float, min_s: float = 0.25, max_s: float = None):
        if initial_s <= 0:
            raise ValueError("initial_s must be positive")
        if min_s <= 0:
            raise ValueError("min_s must be positive")
        if max_s is None:
            max_s = initial_s
        if max_s < min_s:
            raise ValueError("max_s must be >= min_s")
        self.initial_s = float(initial_s)
        self.min_s = float(min_s)
        self.max_s = float(max_s)
        self.srtt = None
        self.rttvar = 0.0
        self._backoff = 1.0
        self.samples = 0

    def observe(self, rtt_s: float) -> None:
        """Fold one successful round-trip time (seconds) into the RTO."""
        rtt_s = float(rtt_s)
        if rtt_s < 0:
            raise ValueError("rtt_s must be non-negative")
        if self.srtt is None:
            self.srtt = rtt_s
            self.rttvar = rtt_s / 2.0
        else:
            err = rtt_s - self.srtt
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
            self.srtt += self.ALPHA * err
        self._backoff = 1.0
        self.samples += 1

    def timeout(self) -> float:
        """Current RTO in seconds (with any post-timeout backoff applied)."""
        if self.srtt is None:
            base = self.initial_s
        else:
            base = max(self.min_s, min(self.max_s, self.srtt + self.K * self.rttvar))
        return min(self.max_s, base * self._backoff)

    def backoff(self) -> None:
        """Double the effective RTO after a timeout (Karn-style)."""
        self._backoff = min(self._backoff * 2.0, 64.0)


def measure_vector_reliably(
    network,
    landmarks,
    host: int,
    policy: RetryPolicy = None,
    category: str = "landmark_probe",
) -> np.ndarray:
    """Measure a landmark vector under faults, re-probing lost entries.

    Entries still missing after the policy's attempts are filled with
    the worst successfully measured *non-spiked* RTT -- a pessimistic
    estimate that keeps the joiner operational (graceful degradation)
    instead of stalling the join, without letting a single
    latency-spiked :class:`~repro.netsim.faults.ProbeResult` become
    the fill for every silent landmark.  Only when *every* answered
    probe was spiked does the fill fall back to the spiked maximum.
    Raises :class:`ProbeTimeout` only if every landmark stayed silent
    through every attempt.
    """
    if policy is None:
        policy = RetryPolicy()
    telemetry = getattr(network, "telemetry", None)
    hosts = np.asarray(landmarks.hosts, dtype=np.int64)
    vector, spiked = network.rtt_many_detailed(int(host), hosts, category=category)
    vector = np.asarray(vector, dtype=np.float64)
    spiked = np.asarray(spiked, dtype=bool)
    for attempt in range(policy.max_attempts - 1):
        missing = np.isnan(vector)
        if not missing.any():
            break
        policy.sleep(attempt, clock=network.clock, telemetry=telemetry)
        refreshed, re_spiked = network.rtt_many_detailed(
            int(host), hosts[missing], category=category
        )
        vector[missing] = refreshed
        spiked[missing] = re_spiked
    missing = np.isnan(vector)
    if missing.all():
        raise ProbeTimeout(int(host), int(hosts[0]), reason="all landmarks silent")
    if missing.any():
        clean = vector[~missing & ~spiked]
        fill = float(clean.max()) if clean.size else float(np.nanmax(vector))
        vector[missing] = fill
    return vector

