"""repro -- reproduction of "Building Topology-Aware Overlays Using
Global Soft-State" (Xu, Tang, Zhang; ICDCS 2003).

Quick start::

    from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network

    network = make_network(NetworkParams(topology="tsk-large", latency="manual",
                                         topo_scale=0.3, seed=1))
    overlay = TopologyAwareOverlay(network, OverlayParams(num_nodes=256,
                                                          policy="softstate"))
    overlay.build()
    print(overlay.measure_stretch(samples=200).mean())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.netsim` -- transit-stub topologies, latency models,
  the distance oracle and message accounting;
* :mod:`repro.overlay` -- CAN and eCAN;
* :mod:`repro.proximity` -- landmarks, Hilbert curves, expanding-ring
  search, the hybrid landmark+RTT search, GNP coordinates;
* :mod:`repro.softstate` -- the global soft-state maps, store,
  publish/subscribe and maintenance policies;
* :mod:`repro.core` -- the assembled system, churn and QoS;
* :mod:`repro.experiments` -- one runner per paper figure.
"""

from repro.core import (
    ChurnDriver,
    ChurnEvent,
    LoadTracker,
    NetworkParams,
    OverlayParams,
    TopologyAwareOverlay,
    make_network,
    pareto_capacities,
    poisson_churn,
    summarize,
)
from repro.netsim import (
    GeneratedLatencyModel,
    ManualLatencyModel,
    Network,
    NoisyLatencyModel,
    Topology,
    TransitStubConfig,
    generate_transit_stub,
)
from repro.overlay import CanOverlay, EcanOverlay, RouteResult, Zone
from repro.proximity import (
    HilbertCurve,
    LandmarkSpace,
    expanding_ring_search,
    hybrid_search,
    select_landmarks,
)
from repro.softstate import (
    Condition,
    MaintenanceDriver,
    MaintenancePolicy,
    NodeRecord,
    PubSubService,
    Region,
    SoftStateNeighborPolicy,
    SoftStateStore,
)

__version__ = "0.1.0"

__all__ = [
    "CanOverlay",
    "ChurnDriver",
    "ChurnEvent",
    "Condition",
    "EcanOverlay",
    "GeneratedLatencyModel",
    "HilbertCurve",
    "LandmarkSpace",
    "LoadTracker",
    "MaintenanceDriver",
    "MaintenancePolicy",
    "ManualLatencyModel",
    "Network",
    "NetworkParams",
    "NodeRecord",
    "NoisyLatencyModel",
    "OverlayParams",
    "PubSubService",
    "Region",
    "RouteResult",
    "SoftStateNeighborPolicy",
    "SoftStateStore",
    "Topology",
    "TopologyAwareOverlay",
    "TransitStubConfig",
    "Zone",
    "expanding_ring_search",
    "generate_transit_stub",
    "hybrid_search",
    "make_network",
    "pareto_capacities",
    "poisson_churn",
    "select_landmarks",
    "summarize",
]
