"""Publish/subscribe over the global soft-state.

A node subscribes to the map of a region it depends on and states the
condition under which it wants to hear about changes ("notify me when
more nodes have joined the zone", "when my neighbor's load exceeds
80% of capacity", "when a candidate closer than my current neighbor
appears").  When a map mutation matches, the notification is
disseminated through a *distribution tree embedded in the overlay*:
the union of the overlay routing paths from the rendezvous (the node
hosting the mutated record) to each matching subscriber.  The cost of
a delivery is therefore the number of distinct tree edges, not the
sum of path lengths -- sharing is the point of the tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.softstate.maps import Region
from repro.softstate.store import EventKind, MapEvent, SoftStateStore


@dataclass(frozen=True)
class Condition:
    """Predicate over map events.

    Attributes
    ----------
    kinds:
        Event kinds of interest.
    node_id:
        If set, only events about this specific node match.
    utilization_above:
        For load events: match when ``load / capacity`` exceeds this.
    vector / within_distance:
        For join events: match when the new record's landmark vector
        lies within ``within_distance`` of ``vector`` (a "candidate
        possibly closer than my current neighbor" trigger).
    """

    kinds: tuple
    node_id: int = None
    utilization_above: float = None
    vector: tuple = None
    within_distance: float = None

    @classmethod
    def node_joined(cls, vector=None, within_distance: float = None) -> "Condition":
        vec = None if vector is None else tuple(float(x) for x in vector)
        return cls(
            kinds=(EventKind.NODE_JOINED,), vector=vec, within_distance=within_distance
        )

    @classmethod
    def node_left(cls, node_id: int = None) -> "Condition":
        return cls(
            kinds=(EventKind.NODE_LEFT, EventKind.RECORD_EXPIRED), node_id=node_id
        )

    @classmethod
    def load_above(cls, threshold: float, node_id: int = None) -> "Condition":
        return cls(
            kinds=(EventKind.LOAD_UPDATED,),
            node_id=node_id,
            utilization_above=threshold,
        )

    def matches(self, event: MapEvent) -> bool:
        if event.kind not in self.kinds:
            return False
        if self.node_id is not None and event.record.node_id != self.node_id:
            return False
        if self.utilization_above is not None:
            if not event.record.utilization > self.utilization_above:
                return False
        if self.vector is not None and self.within_distance is not None:
            gap = float(
                np.linalg.norm(
                    np.asarray(event.record.landmark_vector) - np.asarray(self.vector)
                )
            )
            if gap > self.within_distance:
                return False
        return True


@dataclass
class Subscription:
    sub_id: int
    subscriber: int
    region: Region
    condition: Condition
    callback: object = field(repr=False, default=None)


@dataclass
class DeliveryReport:
    """Accounting for one notification fan-out.

    ``subscribers`` is every matching subscriber; ``delivered`` the
    ones whose tree path completed (each acknowledged back to the
    rendezvous, charged as ``pubsub_ack``); ``failed`` the ones whose
    path broke -- those are *not* counted as delivered, and the
    anti-entropy loop re-syncs them later.
    """

    event: MapEvent
    subscribers: list
    tree_edges: int
    delivered: list = field(default_factory=list)
    failed: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failed


class PubSubService:
    """Subscription registry + tree-based notification delivery."""

    def __init__(self, store: SoftStateStore, ecan, network):
        self.store = store
        self.ecan = ecan
        self.network = network
        self._by_region: dict = {}
        self._by_id: dict = {}
        self._ids = itertools.count(1)
        self.deliveries: list = []
        #: set False to suspend delivery (e.g. while bulk-building)
        self.enabled = True
        #: subscriber -> [(Subscription, MapEvent)] awaiting re-sync
        self._missed: dict = {}
        #: notifications recovered by anti-entropy so far
        self.resynced = 0
        self._anti_entropy_timer = None
        store.hooks.append(self._on_event)

    # -- subscription management ----------------------------------------------

    def subscribe(
        self, subscriber: int, region: Region, condition: Condition, callback=None
    ) -> int:
        """Register interest; charged as one overlay route to the map."""
        record = self.store.registry.get(subscriber)
        if record is not None and subscriber in self.ecan.can.nodes:
            position = self.store.position_of(record, region)
            self.ecan.route(subscriber, position, category="pubsub_subscribe")
        else:
            self.network.stats.count("pubsub_subscribe")
        sub = Subscription(
            sub_id=next(self._ids),
            subscriber=subscriber,
            region=region,
            condition=condition,
            callback=callback,
        )
        self._by_region.setdefault(region, []).append(sub)
        self._by_id[sub.sub_id] = sub
        return sub.sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        sub = self._by_id.pop(sub_id, None)
        if sub is None:
            return False
        bucket = self._by_region.get(sub.region, [])
        self._by_region[sub.region] = [s for s in bucket if s.sub_id != sub_id]
        if not self._by_region[sub.region]:
            del self._by_region[sub.region]
        self.network.stats.count("pubsub_unsubscribe")
        return True

    def unsubscribe_all(self, subscriber: int) -> int:
        """Drop every subscription held by ``subscriber``."""
        doomed = [s.sub_id for s in self._by_id.values() if s.subscriber == subscriber]
        for sub_id in doomed:
            self.unsubscribe(sub_id)
        return len(doomed)

    def subscriptions_of(self, subscriber: int) -> list:
        return [s for s in self._by_id.values() if s.subscriber == subscriber]

    def subscription_count(self) -> int:
        return len(self._by_id)

    # -- delivery -----------------------------------------------------------------

    def _on_event(self, event: MapEvent) -> None:
        if not self.enabled:
            return
        subs = self._by_region.get(event.region)
        if not subs:
            return
        matching = [
            s
            for s in subs
            if s.subscriber != event.record.node_id and s.condition.matches(event)
        ]
        # prune subscribers that have left the overlay
        matching = [s for s in matching if s.subscriber in self.ecan.can.nodes]
        if not matching:
            return
        rendezvous = self._rendezvous_of(event)
        edges, delivered, failed = self._deliver_tree(
            rendezvous, [s.subscriber for s in matching]
        )
        self.network.stats.count("pubsub_notify", edges)
        # each completed delivery is acknowledged back to the rendezvous
        self.network.stats.count("pubsub_ack", len(delivered))
        report = DeliveryReport(
            event=event,
            subscribers=[s.subscriber for s in matching],
            tree_edges=edges,
            delivered=delivered,
            failed=failed,
        )
        self.deliveries.append(report)
        missed = set(failed)
        for sub in matching:
            if sub.subscriber in missed:
                self._missed.setdefault(sub.subscriber, []).append((sub, event))
                continue
            if sub.callback is not None:
                sub.callback(sub, event)

    def _rendezvous_of(self, event: MapEvent) -> int:
        position = self.store.position_of(event.record, event.region)
        return self.ecan.can.owner_of_point(position)

    def _deliver_tree(self, rendezvous: int, subscribers) -> tuple:
        """Walk the notification tree; returns (edges, delivered, failed).

        The cost is the number of distinct overlay edges (sharing is
        the point of the tree).  A subscriber whose routing path broke
        is a *failed* delivery -- it is recorded as such (charged
        ``pubsub_notify_failed``), never fabricated as an edge, so
        resilience experiments can see notification loss.
        """
        edges = set()
        delivered, failed = [], []
        for subscriber in subscribers:
            if subscriber == rendezvous:
                delivered.append(subscriber)
                continue
            node = self.ecan.can.nodes.get(subscriber)
            if node is None:
                failed.append(subscriber)
                continue
            target = node.zone.center()
            result = self.ecan.route(rendezvous, target, category=None)
            if not result.success:
                failed.append(subscriber)
                self.network.stats.count("pubsub_notify_failed")
                continue
            delivered.append(subscriber)
            for a, b in zip(result.path, result.path[1:]):
                edges.add((a, b))
        return len(edges), delivered, failed

    # -- anti-entropy ----------------------------------------------------------

    def start_anti_entropy(self, interval: float = 120.0) -> None:
        """Arm the clock-driven re-sync loop for missed notifications.

        Each tick, every subscriber with missed notifications pulls
        them from the rendezvous (charged as ``pubsub_resync``
        routes); deliveries that fail again stay queued for the next
        tick.
        """
        if self._anti_entropy_timer is not None:
            return
        self._anti_entropy_timer = self.network.clock.schedule_every(
            interval, self.resync_once
        )

    def stop_anti_entropy(self) -> None:
        if self._anti_entropy_timer is not None:
            self._anti_entropy_timer.cancel()
            self._anti_entropy_timer = None

    def resync_once(self) -> int:
        """One anti-entropy round; returns notifications recovered."""
        recovered = 0
        for subscriber in list(self._missed):
            pending = self._missed.pop(subscriber, [])
            if subscriber not in self.ecan.can.nodes:
                continue  # subscriber left; its backlog dies with it
            still_missed = []
            for sub, event in pending:
                if sub.sub_id not in self._by_id:
                    continue  # unsubscribed in the meantime
                position = self.store.position_of(event.record, event.region)
                result = self.ecan.route(
                    subscriber, position, category="pubsub_resync"
                )
                if not result.success:
                    still_missed.append((sub, event))
                    continue
                recovered += 1
                self.resynced += 1
                if sub.callback is not None:
                    sub.callback(sub, event)
            if still_missed:
                self._missed[subscriber] = still_missed
        return recovered

    # -- diagnostics ---------------------------------------------------------------

    def delivery_messages(self) -> int:
        """Total tree edges used across all deliveries so far."""
        return sum(d.tree_edges for d in self.deliveries)

    def missed_count(self) -> int:
        """Notifications currently awaiting anti-entropy re-sync."""
        return sum(len(pending) for pending in self._missed.values())

    def failed_deliveries(self) -> int:
        """Total failed per-subscriber deliveries across all reports."""
        return sum(len(d.failed) for d in self.deliveries)
