"""Proximity-neighbor selection through the global soft-state.

This policy is the paper's payoff: when an eCAN node needs a
high-order neighbor for a sibling zone, it

1. looks the sibling zone's map up under its own landmark number
   (charged overlay routing),
2. receives the ``X`` records closest to it in landmark space,
3. RTT-probes up to ``rtt_budget`` of them (charged probes), and
4. picks the one with the smallest measured RTT.

The optional load-aware variant (§6) scores candidates by RTT
inflated by their published utilization, trading network distance for
forwarding headroom.

Re-entrancy: a lookup routes through the overlay, routing may repair
a table entry, and repairing runs this policy again.  The recursion
is cut by falling back to a random candidate while a selection is
already in progress (the bootstrap pick; it gets refined the next
time the entry is rebuilt).
"""

from __future__ import annotations

import numpy as np

from repro.netsim.faults import ProbeTimeout
from repro.overlay.ecan import NeighborPolicy
from repro.softstate.maps import Region
from repro.softstate.store import SoftStateStore


class SoftStateNeighborPolicy(NeighborPolicy):
    """Landmark-guided, RTT-confirmed high-order neighbor choice."""

    name = "softstate"

    def __init__(
        self,
        store: SoftStateStore,
        network,
        rtt_budget: int = 10,
        load_weight: float = 0.0,
        maintenance=None,
        retry_policy=None,
    ):
        self.store = store
        self.network = network
        self.rtt_budget = rtt_budget
        #: 0 = pure proximity; >0 = §6 load-aware scoring
        self.load_weight = load_weight
        #: optional MaintenanceDriver told about dead records (reactive)
        self.maintenance = maintenance
        #: optional RetryPolicy for confirmation probes under faults
        self.retry_policy = retry_policy
        self._selecting = False

    def select(self, ecan, node_id, level, cell, candidates):
        if self._selecting:
            return None  # bootstrap fallback; see module docstring
        own = self.store.registry.get(node_id)
        if own is None:
            return None
        self._selecting = True
        try:
            # no explicit query_vector: the default path uses the same
            # registered vector plus the identity's cached landmark
            # number, skipping a re-encode per selection
            result = self.store.lookup(
                node_id,
                Region(level, cell),
                max_results=max(self.rtt_budget, 1),
            )
        finally:
            self._selecting = False

        alive = []
        for record in result.records:
            if record.node_id == node_id:
                continue
            if record.node_id in ecan.can.nodes:
                alive.append(record)
            else:
                # a stale record costs a timed-out probe before the node
                # is discovered dead -- the price of lazy maintenance
                self.network.stats.count("neighbor_probe_failed")
                if self.maintenance is not None:
                    self.maintenance.on_failed_use(record.node_id)
        if not alive:
            return None

        host = ecan.can.nodes[node_id].host
        best = None
        for record in alive[: self.rtt_budget]:
            try:
                if self.retry_policy is not None:
                    rtt = self.retry_policy.probe(
                        self.network, host, record.host, category="neighbor_probe"
                    )
                else:
                    rtt = self.network.rtt(host, record.host, category="neighbor_probe")
            except ProbeTimeout:
                # candidate unconfirmable right now; skip rather than stall
                self.network.stats.count("neighbor_probe_timeout")
                continue
            score = rtt
            if self.load_weight > 0:
                score = rtt * (1.0 + self.load_weight * min(record.utilization, 10.0))
            if best is None or (score, record.node_id) < best[:2]:
                best = (score, record.node_id)
        if best is None:
            # every confirmation probe timed out: degrade to landmark-only
            # ranking (the lookup already sorted by landmark distance)
            return alive[0].node_id
        return best[1]


def probe_and_pick(network, host: int, records, budget: int):
    """Standalone landmark+RTT confirmation over ``records``.

    Shared helper for callers outside table construction (e.g. the
    nearest-replica example): probes up to ``budget`` records and
    returns ``(record, rtt)`` of the closest, or ``(None, inf)``.
    """
    best = (None, np.inf)
    for record in records[:budget]:
        rtt = network.rtt(host, record.host, category="neighbor_probe")
        if rtt < best[1]:
            best = (record, rtt)
    return best
