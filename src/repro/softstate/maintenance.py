"""Soft-state maintenance policies (§5.2 of the paper).

The global state can be maintained lazily; the paper sketches three
points on the spectrum, all implemented here:

* **reactive** -- "departed nodes are deleted from the global state
  only when they are selected as routing neighbor replacements and
  later found un-reachable": callers report a failed use via
  :meth:`MaintenanceDriver.on_failed_use` and the dead record is
  purged then.
* **periodic** -- "each owner of the map information can periodically
  poll the liveliness of the nodes": a clock-driven sweep that pings
  every recorded node (one charged probe each) and purges the dead.
* **proactive** -- "update the map when a node is about to depart":
  graceful departures withdraw their own records.

Independent of the policy, records lease-expire through
:meth:`SoftStateStore.expire_stale`, which the driver also runs on
its sweep.
"""

from __future__ import annotations

import enum

from repro.softstate.store import SoftStateStore


class MaintenancePolicy(enum.Enum):
    REACTIVE = "reactive"
    PERIODIC = "periodic"
    PROACTIVE = "proactive"


class MaintenanceDriver:
    """Applies one maintenance policy to a soft-state store."""

    def __init__(
        self,
        store: SoftStateStore,
        ecan,
        network,
        policy: MaintenancePolicy = MaintenancePolicy.PROACTIVE,
        poll_interval: float = 60.0,
    ):
        self.store = store
        self.ecan = ecan
        self.network = network
        self.policy = policy
        self.poll_interval = poll_interval
        self._timer = None
        self.purged = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic sweep (no-op for the other policies)."""
        if self.policy is MaintenancePolicy.PERIODIC and self._timer is None:
            self._timer = self.network.clock.schedule_every(
                self.poll_interval, self.poll_once
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- policy entry points ---------------------------------------------------

    def on_failed_use(self, node_id: int) -> int:
        """A neighbor selection / forwarding found ``node_id`` dead."""
        if self.policy is not MaintenancePolicy.REACTIVE:
            return 0
        removed = self.store.purge_record(node_id, charge=True)
        self.purged += removed
        return removed

    def on_departure(self, node_id: int, graceful: bool = True) -> int:
        """Node is leaving; proactive policy withdraws its records."""
        if self.policy is MaintenancePolicy.PROACTIVE and graceful:
            removed = self.store.withdraw(node_id, charge=True)
            self.purged += removed
            return removed
        return 0

    def poll_once(self) -> int:
        """One polling sweep: ping every recorded node, purge the dead."""
        dead = set()
        pings = 0
        for region, bucket in list(self.store.maps.items()):
            for node_id in list(bucket):
                pings += 1
                if node_id not in self.ecan.can.nodes:
                    dead.add(node_id)
        self.network.stats.count("maintenance_ping", pings)
        removed = 0
        for node_id in dead:
            removed += self.store.purge_record(node_id, charge=False)
        removed += self.store.expire_stale()
        self.purged += removed
        return removed

    def stale_entries(self) -> int:
        """Records in the maps whose nodes are no longer overlay members."""
        alive = self.ecan.can.nodes
        return sum(
            1
            for bucket in self.store.maps.values()
            for node_id in bucket
            if node_id not in alive
        )
