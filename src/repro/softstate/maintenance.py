"""Soft-state maintenance policies (§5.2 of the paper).

The global state can be maintained lazily; the paper sketches three
points on the spectrum, all implemented here:

* **reactive** -- "departed nodes are deleted from the global state
  only when they are selected as routing neighbor replacements and
  later found un-reachable": callers report a failed use via
  :meth:`MaintenanceDriver.on_failed_use` and the dead record is
  purged then.
* **periodic** -- "each owner of the map information can periodically
  poll the liveliness of the nodes": a clock-driven sweep where the
  *hosting owner* of each record pings the recorded node through the
  (fault-injectable) probe path and purges the dead.
* **proactive** -- "update the map when a node is about to depart":
  graceful departures withdraw their own records.

Liveness is decided by probes, not an oracle: a ping is answered only
when the target is still an overlay member *and* the probe survives
any injected faults.  Under probe loss a single silent ping is not
proof of death, so a suspected death is confirmed ``confirmations``
times (each round retried per the :class:`RetryPolicy`) before the
record is purged -- eliminating false-positive purges at the price of
extra probes for genuinely dead nodes.

Independent of the policy, records lease-expire through
:meth:`SoftStateStore.expire_stale`, which the driver also runs on
its sweep.
"""

from __future__ import annotations

import enum

from repro.netsim.faults import ProbeTimeout
from repro.softstate.store import SoftStateStore


class MaintenancePolicy(enum.Enum):
    REACTIVE = "reactive"
    PERIODIC = "periodic"
    PROACTIVE = "proactive"


class MaintenanceDriver:
    """Applies one maintenance policy to a soft-state store."""

    def __init__(
        self,
        store: SoftStateStore,
        ecan,
        network,
        policy: MaintenancePolicy = MaintenancePolicy.PROACTIVE,
        poll_interval: float = 60.0,
        retry_policy=None,
        confirmations: int = 2,
    ):
        self.store = store
        self.ecan = ecan
        self.network = network
        self.policy = policy
        self.poll_interval = poll_interval
        if retry_policy is None:
            from repro.core.reliability import RetryPolicy

            retry_policy = RetryPolicy()
        #: RetryPolicy for liveness pings (attempts + sim-clock backoff)
        self.retry_policy = retry_policy
        #: silent ping rounds required before a record is declared dead
        self.confirmations = confirmations
        self._timer = None
        self.purged = 0
        #: records re-published by their subjects after copy loss
        self.republished = 0
        #: purges of records whose node was in fact still a member --
        #: the simulator knows ground truth, so resilience experiments
        #: can report the false-purge rate directly
        self.false_purges = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic sweep (no-op for the other policies)."""
        if self.policy is MaintenancePolicy.PERIODIC and self._timer is None:
            self._timer = self.network.clock.schedule_every(
                self.poll_interval, self.poll_once
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- policy entry points ---------------------------------------------------

    @property
    def _telemetry(self):
        return getattr(self.network, "telemetry", None)

    def on_failed_use(self, node_id: int) -> int:
        """A neighbor selection / forwarding found ``node_id`` dead."""
        if self.policy is not MaintenancePolicy.REACTIVE:
            return 0
        removed = self.store.purge_record(node_id, charge=True)
        self.purged += removed
        if removed and self._telemetry is not None:
            self._telemetry.emit("purge", node_id=node_id, policy="reactive")
        return removed

    def on_departure(self, node_id: int, graceful: bool = True) -> int:
        """Node is leaving; proactive policy withdraws its records."""
        if self.policy is MaintenancePolicy.PROACTIVE and graceful:
            removed = self.store.withdraw(node_id, charge=True)
            self.purged += removed
            return removed
        return 0

    def _ping(self, src_host: int, dst_host: int, alive: bool) -> bool:
        """One charged liveness ping; True when an answer came back.

        An application-level ping is answered only when the target
        process is still an overlay member (``alive``) *and* the probe
        itself survives any injected faults -- the cost is paid either
        way.
        """
        try:
            self.network.rtt(src_host, dst_host, category="maintenance_ping")
        except ProbeTimeout:
            return False
        return alive

    def _confirm_dead(self, src_host: int, dst_host: int, alive: bool) -> bool:
        """N-confirmation probing: dead only if every round stays silent.

        Each confirmation round is retried per the
        :class:`RetryPolicy` with sim-clock backoff, so under loss the
        probability of a false death verdict is
        ``loss**(confirmations * max_attempts)``.
        """
        policy = self.retry_policy
        clock = self.network.clock
        for _ in range(max(1, self.confirmations)):
            attempts = policy.max_attempts if policy is not None else 1
            for attempt in range(attempts):
                if attempt and policy is not None:
                    policy.sleep(attempt - 1, clock=clock, telemetry=self._telemetry)
                if self._ping(src_host, dst_host, alive):
                    return False
        return True

    def poll_once(self) -> int:
        """One polling sweep: the owner of each record pings its node.

        Each record costs at least one charged ``maintenance_ping``
        through the fault-injectable probe path; suspected deaths are
        re-probed per :meth:`_confirm_dead` before the purge.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._poll_once()
        with telemetry.phase("maintenance"):
            return self._poll_once()

    def _poll_once(self) -> int:
        telemetry = self._telemetry
        verdicts: dict = {}
        for region, bucket in list(self.store.maps.items()):
            for node_id, stored in list(bucket.items()):
                owner = self.store.record_owner(region, node_id)
                owner_node = self.ecan.can.nodes.get(owner)
                if owner_node is None:
                    continue
                src_host = owner_node.host
                alive = node_id in self.ecan.can.nodes
                if self._ping(src_host, stored.record.host, alive):
                    # any answered ping this sweep proves liveness, even
                    # over a prior (mistaken) dead verdict
                    verdicts[node_id] = True
                    continue
                if node_id in verdicts:
                    continue  # verdict already settled; the ping was still paid
                verdicts[node_id] = not self._confirm_dead(
                    src_host, stored.record.host, alive
                )
        dead = {n for n, verdict in verdicts.items() if not verdict}
        removed = 0
        for node_id in dead:
            false_positive = node_id in self.ecan.can.nodes
            if false_positive:
                self.false_purges += 1
            removed += self.store.purge_record(node_id, charge=False)
            if telemetry is not None:
                telemetry.emit(
                    "purge",
                    node_id=node_id,
                    policy="periodic",
                    false_positive=false_positive,
                )
        removed += self.store.expire_stale()
        self.purged += removed
        self._republish_lost()
        return removed

    def _republish_lost(self) -> int:
        """Still-live subjects of crash-lost records re-publish them --
        soft-state durability's last line of defence.

        Only records in the store's crash-loss ledger qualify: a record
        purged by *lease expiry* must stay gone until its subject
        refreshes it, not be resurrected by the sweep.
        """
        telemetry = self._telemetry
        store = self.store
        restored = 0
        for node_id in sorted({n for _, n in store.lost_records}):
            if node_id not in self.ecan.can.nodes:
                continue
            if store.missing_regions(node_id):
                store.publish(node_id)
                self.network.stats.count("recovery_republish")
                restored += 1
                if telemetry is not None:
                    telemetry.emit("republish", node_id=node_id)
        store.lost_records = [
            (region, n)
            for region, n in store.lost_records
            if n in self.ecan.can.nodes and store.missing_regions(n)
        ]
        self.republished += restored
        return restored

    def stale_entries(self) -> int:
        """Records in the maps whose nodes are no longer overlay members."""
        alive = self.ecan.can.nodes
        return sum(
            1
            for bucket in self.store.maps.values()
            for node_id in bucket
            if node_id not in alive
        )
