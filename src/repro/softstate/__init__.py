"""Global soft-state: the paper's central contribution.

The overlay itself stores proximity information about its members,
one *map* per high-order zone, placed so that records of physically
close nodes sit logically close:

* :mod:`repro.softstate.records` -- the soft-state record: landmark
  vector/number, load statistics, expiry.
* :mod:`repro.softstate.maps` -- regions (high-order zones), the
  space-filling-curve hash that positions a record inside a region,
  and the *condense rate* that shrinks a map onto few hosting nodes.
* :mod:`repro.softstate.store` -- the distributed store: publish /
  withdraw / lookup (the paper's Table 1 procedure, including the
  TTL-bounded widening when a map shard is empty), expiry, refresh.
* :mod:`repro.softstate.pubsub` -- publish/subscribe on map events
  with notification delivery along distribution trees embedded in the
  overlay.
* :mod:`repro.softstate.maintenance` -- the three §5.2 staleness
  policies: reactive purge, periodic polling, proactive deregistration.
* :mod:`repro.softstate.neighbor_selection` -- proximity-neighbor
  selection through the maps: landmark pre-selection + RTT probes.
"""

from repro.softstate.maintenance import MaintenanceDriver, MaintenancePolicy
from repro.softstate.maps import Region, map_position, regions_of_zone
from repro.softstate.neighbor_selection import SoftStateNeighborPolicy
from repro.softstate.pubsub import Condition, PubSubService, Subscription
from repro.softstate.records import NodeRecord
from repro.softstate.store import SoftStateStore

__all__ = [
    "Condition",
    "MaintenanceDriver",
    "MaintenancePolicy",
    "NodeRecord",
    "PubSubService",
    "Region",
    "SoftStateNeighborPolicy",
    "SoftStateStore",
    "Subscription",
    "map_position",
    "regions_of_zone",
]
