"""The distributed soft-state store.

For every high-order zone (region) of the overlay there is one
proximity map containing a record per member node, placed inside the
region by :func:`repro.softstate.maps.map_position`.  Because a
record's location is a *function of the current zone tessellation*,
zone handover during churn implicitly migrates the hosted records,
exactly as objects move with zones in a real CAN.

Costs are accounted faithfully:

* ``softstate_publish`` -- overlay hops spent routing a record to its
  position, once per enclosing region;
* ``softstate_lookup`` -- hops of the Table-1 lookup, plus one message
  per extra node visited while widening an empty shard;
* ``softstate_withdraw`` / ``softstate_load_update`` -- analogous.

The store emits :class:`MapEvent` callbacks on every mutation; the
publish/subscribe layer listens to these.
"""

from __future__ import annotations

import contextlib
import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.softstate.maps import Region, map_position, regions_of_zone
from repro.softstate.records import NodeRecord


class EventKind(enum.Enum):
    NODE_JOINED = "node_joined"
    NODE_LEFT = "node_left"
    LOAD_UPDATED = "load_updated"
    RECORD_EXPIRED = "record_expired"


@dataclass(frozen=True)
class MapEvent:
    """A mutation of one region's proximity map."""

    kind: EventKind
    region: Region
    record: NodeRecord


@dataclass
class StoredRecord:
    record: NodeRecord
    position: tuple
    #: replica positions (empty unless the store replicates); the copy
    #: at ``position`` is the primary, lookups are served from it
    replicas: tuple = ()
    #: per-region insertion sequence (monotone); sorting by it
    #: reproduces the bucket's dict insertion order, so index-served
    #: lookups return records in exactly the order a bucket scan would
    seq: int = 0


@dataclass
class LookupResult:
    """Outcome of a map lookup (Table 1 of the paper)."""

    records: list
    #: overlay node that served the request
    served_by: int = None
    #: how many widening hops were needed beyond the first shard
    widened: int = 0


class SoftStateStore:
    """Publish / lookup / withdraw over the overlay's proximity maps."""

    def __init__(
        self,
        ecan,
        network,
        space,
        condense_rate: float = 1.0 / 16.0,
        record_ttl: float = math.inf,
        max_results: int = 16,
        widen_ttl: int = 2,
        replication_factor: int = 1,
    ):
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.ecan = ecan
        self.network = network
        self.space = space
        self.condense_rate = condense_rate
        self.record_ttl = record_ttl
        self.max_results = max_results
        self.widen_ttl = widen_ttl
        #: copies kept per record per region (1 = no replication); the
        #: extra copies sit at landmark-number offsets so they usually
        #: land on different hosting nodes and survive a host crash
        self.replication_factor = replication_factor
        #: region -> {node_id -> StoredRecord}
        self.maps: dict = {}
        #: region -> {node_id -> overlay node hosting the primary copy}.
        #: An incremental mirror of :attr:`maps` kept current through the
        #: CAN's observer events, so lookups and sweeps never re-resolve
        #: ``owner_of_point`` per record (owner resolution is a local
        #: data structure, never charged).
        self._owners: dict = {}
        #: reverse side of :attr:`_owners`: owner node -> {region ->
        #: set(node_id)} entries attributed to it, so a zone event
        #: re-resolves only the touched owner's entries and a lookup
        #: reads the serving node's shard without scanning the map
        self._attributed: dict = {}
        #: region -> next insertion sequence number (never reused, so
        #: seq order always equals bucket insertion order)
        self._seq: dict = {}
        #: kill switch for the incremental index; the determinism
        #: regression test runs with it off to prove the cache never
        #: leaks into charged behavior
        self.use_owner_index = True
        #: node_id -> its own NodeRecord (identity registry)
        self.registry: dict = {}
        #: node_id -> set of regions currently holding its record
        self._published: dict = {}
        #: inside :meth:`bulk_load`: nodes whose republish-on-zone-change
        #: is deferred to the context exit (None = normal operation)
        self._deferred = None
        #: crashed host's node id -> [(region, node_id)] records whose
        #: primary copy died but a replica survived (recovery re-hosts)
        self._pending_rehost: dict = {}
        #: (region, node_id) records lost outright with a crashed host;
        #: their subjects re-publish on the next maintenance sweep
        self.lost_records: list = []
        #: event hooks: callables taking a MapEvent
        self.hooks: list = []
        # A zone split/merge changes which regions enclose a node, so the
        # owner re-publishes to keep map placement current (it performed
        # the split itself, so it knows immediately).
        ecan.can.observers.append(self._on_zone_event)

    def _on_zone_event(self, event: str, node_id: int) -> None:
        # keep the position->owner index current *before* any republish:
        # ownership of a stored position can only change when the zone
        # set of its current host changes (split, merge, handover), so
        # only entries attributed to ``node_id`` need re-resolution.  A
        # "join" carries no attributed entries yet; the paired
        # "zone_change" of the split owner covers the moved positions.
        if event in ("zone_change", "leave"):
            self._reassign_hosted(node_id)
        if event == "zone_change" and node_id in self.registry:
            if self._deferred is not None:
                self._deferred.add(node_id)
            else:
                self.publish(node_id)

    def _attribution_drop(self, owner: int, region: Region, node_id: int) -> None:
        by_region = self._attributed.get(owner)
        if by_region is None:
            return
        shard = by_region.get(region)
        if shard is None:
            return
        shard.discard(node_id)
        if not shard:
            del by_region[region]
            if not by_region:
                del self._attributed[owner]

    def _index_insert(self, region: Region, node_id: int, owner: int) -> None:
        """Attribute ``(region, node_id)`` to ``owner`` in both directions."""
        owners = self._owners.setdefault(region, {})
        old = owners.get(node_id)
        if old is not None and old != owner:
            self._attribution_drop(old, region, node_id)
        owners[node_id] = owner
        self._attributed.setdefault(owner, {}).setdefault(region, set()).add(node_id)

    def _index_remove(self, region: Region, node_id: int) -> None:
        """Drop ``(region, node_id)`` from both sides of the index."""
        owners = self._owners.get(region)
        if owners is None:
            return
        owner = owners.pop(node_id, None)
        if not owners:
            del self._owners[region]
        if owner is not None:
            self._attribution_drop(owner, region, node_id)

    def _reassign_hosted(self, changed_id: int) -> None:
        """Re-resolve owner-index entries attributed to ``changed_id``.

        The reverse index names exactly the entries that can move, so
        the cost of a zone event is proportional to the changed node's
        hosted records, not the store size.  Positions still inside one
        of the node's zones keep their attribution without an owner
        walk; positions that moved (or whose host departed) are
        re-resolved against the fresh tessellation.
        """
        if not self.use_owner_index:
            return
        by_region = self._attributed.get(changed_id)
        if not by_region:
            return
        node = self.ecan.can.nodes.get(changed_id)
        owner_of = self.ecan.can.owner_of_point
        for region, shard in list(by_region.items()):
            bucket = self.maps.get(region, {})
            for node_id in list(shard):
                stored = bucket.get(node_id)
                if stored is None:  # defensive: index out of step with map
                    self._index_remove(region, node_id)
                    continue
                if node is not None and node.contains(stored.position):
                    continue
                self._index_insert(region, node_id, owner_of(stored.position))

    # -- internals ---------------------------------------------------------

    @property
    def clock(self):
        return self.network.clock

    def _emit(self, kind: EventKind, region: Region, record: NodeRecord) -> None:
        event = MapEvent(kind, region, record)
        for hook in self.hooks:
            hook(event)

    def _charge_route(self, src_node: int, position, category: str) -> int:
        """Route an overlay message and return the serving node."""
        if src_node in self.ecan.can.nodes:
            result = self.ecan.route(src_node, position, category=category)
            if result.success:
                return result.owner
        # degraded path: the message is delivered by direct owner lookup
        # (models retry through a bootstrap node); charge a single hop.
        self.network.stats.count(category)
        return self.ecan.can.owner_of_point(position)

    def position_of(self, record: NodeRecord, region: Region) -> tuple:
        return map_position(
            record.landmark_number, self.space.total_bits, region, self.condense_rate
        )

    def replica_positions(self, record: NodeRecord, region: Region) -> tuple:
        """Positions of the record's extra copies inside ``region``.

        Replica ``r`` sits at the primary position translated by
        ``r/R`` of the region's side in every dimension, wrapping
        inside the region.  A *geometric* offset is essential: the
        condense rate squeezes the whole map into one small sub-box,
        so any placement through :func:`map_position` (whatever the
        landmark number) lands in that same box -- usually on the very
        node whose crash replication must survive.  Spreading copies
        around the region torus puts them in different zones, hence on
        different hosting nodes.  Still a pure function of
        ``(record, region)``, so lookups and repair agree on placement
        under any tessellation.
        """
        if self.replication_factor <= 1:
            return ()
        primary = self.position_of(record, region)
        zone = region.zone()
        out = []
        for r in range(1, self.replication_factor):
            fraction = r / self.replication_factor
            out.append(
                tuple(
                    lo + ((p - lo) + fraction * (hi - lo)) % (hi - lo)
                    for p, lo, hi in zip(primary, zone.lo, zone.hi)
                )
            )
        return tuple(out)

    def record_owner(self, region: Region, node_id: int) -> int:
        """Owner of the record's primary copy, served from the index.

        Falls back to a fresh ``owner_of_point`` walk when the index is
        disabled or (defensively) missing the entry.
        """
        if self.use_owner_index:
            owner = self._owners.get(region, {}).get(node_id)
            if owner is not None:
                return owner
        return self.ecan.can.owner_of_point(self.maps[region][node_id].position)

    def hosting_node(self, region: Region, node_id: int) -> int:
        """Overlay node currently hosting ``node_id``'s record in ``region``."""
        return self.record_owner(region, node_id)

    def copy_hosts(self, region: Region, node_id: int) -> list:
        """Overlay nodes hosting each copy (primary first) of a record."""
        stored = self.maps[region][node_id]
        return self.ecan.can.owners_of_points(
            (stored.position, *stored.replicas)
        )

    # -- identity ------------------------------------------------------------

    def register_identity(
        self, node_id: int, host: int, landmark_vector, capacity: float = 1.0
    ) -> NodeRecord:
        """Create (without publishing) a node's own record."""
        vector = tuple(float(x) for x in landmark_vector)
        record = NodeRecord(
            node_id=node_id,
            host=host,
            landmark_vector=vector,
            landmark_number=self.space.number(np.asarray(vector)),
            capacity=capacity,
            published_at=self.clock.now,
            expires_at=self.clock.now + self.record_ttl,
        )
        self.registry[node_id] = record
        return record

    # -- publish / withdraw -----------------------------------------------------

    def current_regions(self, node_id: int) -> list:
        """Regions whose maps should hold ``node_id``'s record now."""
        node = self.ecan.can.nodes.get(node_id)
        if node is None:
            return []
        regions = []
        for zone in node.zones:
            regions.extend(regions_of_zone(zone))
        return regions

    def publish(self, node_id: int, charge: bool = True) -> int:
        """Insert/refresh the node's record in all enclosing region maps.

        Returns the number of regions written.  Also reconciles stale
        placements: maps of regions that no longer enclose the node's
        zone are cleaned up.
        """
        record = self.registry.get(node_id)
        if record is None:
            raise KeyError(f"node {node_id} has no registered identity")
        record = record.refreshed(self.clock.now, self.record_ttl)
        self.registry[node_id] = record

        wanted = set(self.current_regions(node_id))
        have = self._published.get(node_id, set())
        for region in have - wanted:
            self._remove_from(region, node_id, EventKind.NODE_LEFT, charge=False)
        for region in sorted(wanted, key=lambda r: r.level):
            position = self.position_of(record, region)
            replicas = self.replica_positions(record, region)
            bucket = self.maps.setdefault(region, {})
            prior = bucket.get(node_id)
            fresh = prior is None
            if fresh:
                seq = self._seq.get(region, 0)
                self._seq[region] = seq + 1
            else:
                seq = prior.seq
            bucket[node_id] = StoredRecord(
                record=record, position=position, replicas=replicas, seq=seq
            )
            if self.use_owner_index:
                self._index_insert(
                    region, node_id, self.ecan.can.owner_of_point(position)
                )
            if charge:
                self._charge_route(node_id, position, "softstate_publish")
                for replica in replicas:
                    self._charge_route(node_id, replica, "softstate_replicate")
            if fresh:
                self._emit(EventKind.NODE_JOINED, region, record)
        self._published[node_id] = wanted
        telemetry = getattr(self.network, "telemetry", None)
        if telemetry is not None and wanted:
            telemetry.emit("publish", n=len(wanted), node_id=node_id)
        return len(wanted)

    @contextlib.contextmanager
    def bulk_load(self):
        """Defer republish-on-zone-change for a batched mass join.

        Growing the overlay one join at a time republishes the split
        owner's record on *every* zone change, so building N members
        costs O(N) incremental republish cascades against intermediate
        tessellations that are all about to be invalidated.  Inside
        this context a zone change only marks the affected owner
        dirty; on clean exit every dirty node still registered and
        still a member publishes exactly once against the final
        tessellation.  The position->owner index keeps updating
        incrementally throughout, so reads inside the context stay
        consistent with whatever *is* in the maps.  Yields the dirty
        set -- callers add freshly registered nodes to it so their
        first publish is batched too.  Does not nest.
        """
        if self._deferred is not None:
            raise RuntimeError("bulk_load does not nest")
        self._deferred = set()
        try:
            yield self._deferred
            dirty, self._deferred = self._deferred, None
            members = self.ecan.can.nodes
            for node_id in sorted(dirty):
                if node_id in self.registry and node_id in members:
                    self.publish(node_id)
        finally:
            self._deferred = None

    def withdraw(self, node_id: int, charge: bool = True) -> int:
        """Remove the node's record from every map (proactive departure)."""
        regions = self._published.pop(node_id, set())
        for region in regions:
            if charge:
                self.network.stats.count("softstate_withdraw")
            self._remove_from(region, node_id, EventKind.NODE_LEFT, charge=False)
        self.registry.pop(node_id, None)
        return len(regions)

    def purge_record(self, node_id: int, charge: bool = True) -> int:
        """Drop a (dead) node's records, e.g. on reactive maintenance."""
        regions = self._published.pop(node_id, set())
        removed = 0
        for region in list(regions):
            removed += self._remove_from(
                region, node_id, EventKind.RECORD_EXPIRED, charge=charge
            )
        self.registry.pop(node_id, None)
        return removed

    def _remove_from(
        self, region: Region, node_id: int, kind: EventKind, charge: bool
    ) -> int:
        bucket = self.maps.get(region)
        if bucket is None:
            return 0
        stored = bucket.pop(node_id, None)
        if stored is None:
            return 0
        self._index_remove(region, node_id)
        if not bucket:
            del self.maps[region]
        if charge:
            self.network.stats.count("softstate_withdraw")
        self._emit(kind, region, stored.record)
        return 1

    def update_load(self, node_id: int, load: float, charge: bool = True) -> None:
        """Publish fresh load statistics to every map holding the node."""
        record = self.registry.get(node_id)
        if record is None:
            raise KeyError(f"node {node_id} has no registered identity")
        record = record.with_load(load)
        self.registry[node_id] = record
        for region in self._published.get(node_id, ()):
            bucket = self.maps.get(region, {})
            stored = bucket.get(node_id)
            if stored is None:
                continue
            stored.record = record
            if charge:
                self.network.stats.count("softstate_load_update")
            self._emit(EventKind.LOAD_UPDATED, region, record)

    # -- expiry -----------------------------------------------------------------

    def expire_stale(self) -> int:
        """Drop every record whose lease has lapsed (soft-state decay)."""
        now = self.clock.now
        removed = 0
        for region in list(self.maps):
            bucket = self.maps[region]
            for node_id in [n for n, s in bucket.items() if s.record.is_expired(now)]:
                self._published.get(node_id, set()).discard(region)
                removed += self._remove_from(
                    region, node_id, EventKind.RECORD_EXPIRED, charge=False
                )
        return removed

    # -- crash durability --------------------------------------------------------

    def drop_hosted_by(self, dead_id: int) -> tuple:
        """A member crash-stopped: every map copy it hosted vanishes.

        Called at *crash time* (the zones are still the corpse's --
        takeover has not run yet).  A record whose copies all lived on
        ``dead_id`` is removed outright and queued in
        :attr:`lost_records`; a record with a surviving replica stays
        in the map and is queued for :meth:`rehost_from_replicas`.
        Returns ``(salvageable, lost)`` lists of ``(region, node_id)``.
        """
        salvageable, lost = [], []
        owners_of = self.ecan.can.owners_of_points
        faults = getattr(self.network, "faults", None)
        crashed_hosts = faults.crashed_hosts if faults is not None else set()

        def copy_dead(owner: int) -> bool:
            # a copy is gone when its host crashed -- this corpse or an
            # earlier one of the same mass-crash
            if owner == dead_id:
                return True
            node = self.ecan.can.nodes.get(owner)
            return node is None or node.host in crashed_hosts

        for region in list(self.maps):
            bucket = self.maps[region]
            for node_id in list(bucket):
                stored = bucket[node_id]
                owners = owners_of((stored.position, *stored.replicas))
                if dead_id not in owners:
                    continue
                if all(copy_dead(owner) for owner in owners):
                    self._published.get(node_id, set()).discard(region)
                    self._remove_from(
                        region, node_id, EventKind.RECORD_EXPIRED, charge=False
                    )
                    lost.append((region, node_id))
                else:
                    vacated = tuple(
                        p
                        for p, owner in zip(
                            (stored.position, *stored.replicas), owners
                        )
                        if owner == dead_id
                    )
                    salvageable.append((region, node_id, vacated))
        if salvageable:
            self._pending_rehost.setdefault(dead_id, []).extend(salvageable)
        self.lost_records.extend(lost)
        telemetry = getattr(self.network, "telemetry", None)
        if telemetry is not None and (salvageable or lost):
            telemetry.emit(
                "record_loss",
                dead_id=dead_id,
                lost=len(lost),
                salvageable=len(salvageable),
            )
        return salvageable, lost

    def rehost_from_replicas(self, dead_id: int, charge: bool = True) -> int:
        """Re-host copies lost with ``dead_id`` from surviving replicas.

        Run by recovery *after* zone takeover, when the dead node's
        positions are owned by live takers again: a surviving copy's
        host routes the record back to each vacated position, charged
        as ``softstate_rehost`` traffic.  Returns copies re-hosted.
        """
        pending = self._pending_rehost.pop(dead_id, [])
        rehosted = 0
        owner_of = self.ecan.can.owner_of_point
        faults = getattr(self.network, "faults", None)
        crashed_hosts = faults.crashed_hosts if faults is not None else set()
        for region, node_id, vacated in pending:
            stored = self.maps.get(region, {}).get(node_id)
            if stored is None:
                continue  # withdrawn or purged in the meantime
            src = node_id
            for p in (stored.position, *stored.replicas):
                if p in vacated:
                    continue
                owner = owner_of(p)
                node = self.ecan.can.nodes.get(owner)
                if node is not None and node.host not in crashed_hosts:
                    src = owner  # a live surviving copy pushes the data
                    break
            for position in vacated:
                if charge:
                    self._charge_route(src, position, "softstate_rehost")
                rehosted += 1
        return rehosted

    def missing_regions(self, node_id: int) -> list:
        """Regions that should hold the node's record but do not.

        Non-empty when copies were lost with a crashed host (and no
        replica survived); the subject re-publishes on the next
        maintenance sweep or reconciliation pass.
        """
        if node_id not in self.registry:
            return []
        return [
            region
            for region in self.current_regions(node_id)
            if node_id not in self.maps.get(region, {})
        ]

    # -- lookup (the paper's Table 1) ----------------------------------------------

    def lookup(
        self,
        querier_id: int,
        region: Region,
        query_vector=None,
        max_results: int = None,
        charge: bool = True,
    ) -> LookupResult:
        """Find the closest candidates to ``querier_id`` in ``region``.

        Procedure: map the querier's landmark number into the region,
        route there, read the map entries hosted by the serving node;
        if that shard is empty, widen ring by ring over the region's
        nodes up to ``widen_ttl`` hops.  The serving node sorts the
        entries by full-landmark-vector distance and returns the top
        ``max_results``.
        """
        if max_results is None:
            max_results = self.max_results
        if query_vector is None:
            own = self.registry.get(querier_id)
            if own is None:
                raise KeyError(f"querier {querier_id} has no registered identity")
            query_vector = np.asarray(own.landmark_vector, dtype=np.float64)
            # the landmark number is cached on the registered identity --
            # a pure function of the vector and the space
            query_number = own.landmark_number
        else:
            query_vector = np.asarray(query_vector, dtype=np.float64)
            query_number = self.space.number(query_vector)

        position = map_position(
            query_number, self.space.total_bits, region, self.condense_rate
        )
        category = "softstate_lookup" if charge else None
        if charge:
            served_by = self._charge_route(querier_id, position, category)
        else:
            served_by = self.ecan.can.owner_of_point(position)

        bucket = self.maps.get(region, {})
        if self.use_owner_index:
            # zero owner walks and no bucket scan: the reverse index
            # yields exactly the asked-for node's records, in bucket
            # insertion order (seq), at cost proportional to what that
            # node hosts rather than to the region's map size
            def hosted(owner: int) -> list:
                by_region = self._attributed.get(owner)
                shard = None if by_region is None else by_region.get(region)
                if not shard:
                    return []
                found = [
                    stored
                    for nid in shard
                    if (stored := bucket.get(nid)) is not None
                ]
                found.sort(key=lambda s: s.seq)
                return [s.record for s in found]
        else:
            hosted_by: dict = {}
            for node_id, stored in bucket.items():
                owner = self.ecan.can.owner_of_point(stored.position)
                hosted_by.setdefault(owner, []).append(stored.record)

            def hosted(owner: int) -> list:
                return hosted_by.get(owner, ())

        collected = list(hosted(served_by))
        widened = 0
        if not collected:
            # widen within the region, ring by ring over CAN neighbors
            region_zone = region.zone()
            visited = {served_by}
            frontier = [served_by]
            while not collected and widened < self.widen_ttl and frontier:
                widened += 1
                next_frontier = []
                for node_id in frontier:
                    node = self.ecan.can.nodes.get(node_id)
                    if node is None:
                        continue
                    for neighbor_id in sorted(node.neighbors):
                        if neighbor_id in visited:
                            continue
                        neighbor = self.ecan.can.nodes[neighbor_id]
                        inside = any(
                            all(
                                zl < h and l < zh
                                for zl, zh, l, h in zip(
                                    z.lo, z.hi, region_zone.lo, region_zone.hi
                                )
                            )
                            for z in neighbor.zones
                        )
                        if not inside:
                            continue
                        visited.add(neighbor_id)
                        next_frontier.append(neighbor_id)
                        if charge:
                            self.network.stats.count("softstate_lookup")
                        collected.extend(hosted(neighbor_id))
                frontier = next_frontier

        collected = [r for r in collected if r.node_id != querier_id]
        if collected:
            vectors = np.array([r.vector() for r in collected])
            order = np.argsort(np.linalg.norm(vectors - query_vector, axis=1), kind="stable")
            collected = [collected[i] for i in order[:max_results]]
        return LookupResult(records=collected, served_by=served_by, widened=widened)

    # -- diagnostics -------------------------------------------------------------

    def entries_per_node(self) -> dict:
        """Map entries hosted per overlay node (Figure 16's dashed line)."""
        counts: dict = {}
        for region, bucket in self.maps.items():
            for node_id in bucket:
                owner = self.record_owner(region, node_id)
                counts[owner] = counts.get(owner, 0) + 1
        return counts

    def check_owner_index(self) -> None:
        """AssertionError unless the incremental index matches brute force.

        Cross-checks every indexed attribution against a fresh
        ``owner_of_point`` walk over the live tessellation; run from the
        stack-wide :func:`repro.core.recovery.check_invariants`.
        """
        if not self.use_owner_index:
            return
        owner_of = self.ecan.can._resolve_owner
        for region, bucket in self.maps.items():
            owners = self._owners.get(region, {})
            assert set(owners) == set(bucket), (
                f"owner index of {region} tracks {sorted(owners)} "
                f"but the map holds {sorted(bucket)}"
            )
            for node_id, stored in bucket.items():
                expected = owner_of(stored.position)
                assert owners[node_id] == expected, (
                    f"owner index of {region} attributes record {node_id} "
                    f"to {owners[node_id]}, brute force says {expected}"
                )
                assert node_id in self._attributed.get(expected, {}).get(region, ()), (
                    f"reverse index misses ({region}, {node_id}) under {expected}"
                )
        total = sum(len(b) for b in self.maps.values())
        reverse = sum(
            len(shard)
            for by_region in self._attributed.values()
            for shard in by_region.values()
        )
        assert reverse == total, (
            f"reverse index holds {reverse} attributions, maps hold {total}"
        )

    def rebuild_owner_index(self) -> int:
        """Recompute the position->owner index from scratch; return fixes.

        The anti-entropy repair for an arbitrarily corrupted (poisoned)
        index: both the forward and the reverse side are rebuilt from
        the authoritative map contents against the live tessellation,
        which restores the invariant :meth:`check_owner_index` asserts
        no matter what state the index was left in.  Purely local
        data-structure work, never charged.  Returns the number of
        attributions that changed (or were dropped as orphans).
        """
        if not self.use_owner_index:
            return 0
        stale = self._owners
        self._owners = {}
        self._attributed = {}
        owner_of = self.ecan.can.owner_of_point
        changed = 0
        for region, bucket in self.maps.items():
            prior = stale.get(region, {})
            for node_id, stored in bucket.items():
                owner = owner_of(stored.position)
                if prior.get(node_id) != owner:
                    changed += 1
                self._index_insert(region, node_id, owner)
        for region, prior in stale.items():
            bucket = self.maps.get(region, {})
            changed += sum(1 for node_id in prior if node_id not in bucket)
        return changed

    def total_entries(self) -> int:
        return sum(len(bucket) for bucket in self.maps.values())
