"""Regions, map placement and the condense rate.

A *region* is a high-order zone of the eCAN (a quadtree cell; for
Pastry it would be a node-id prefix).  One proximity map exists per
region and is stored *on the nodes of that region*.

Placement uses the paper's hash ``p' = h(p, dp, dz, z)``: the
landmark number -- itself a Hilbert index over the (binned) landmark
space -- is re-expanded through a ``dz``-dimensional Hilbert curve
into a position inside the region, so nodes with close landmark
numbers are recorded at nearby positions, i.e. usually on the same
hosting node.

The *condense rate* is the ratio of the map's footprint to the
region's size: positions are squeezed into a sub-box anchored at the
region's lower corner whose volume is ``condense_rate`` of the
region.  A small rate concentrates the whole map on one or two nodes
(cheap lookup, more entries per node); rate 1 spreads it across the
region (Figure 16 sweeps this trade-off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.overlay.zone import Zone, cell_zone
from repro.proximity.hilbert import HilbertCurve


@dataclass(frozen=True)
class Region:
    """A high-order zone: quadtree ``cell`` at ``level``."""

    level: int
    cell: tuple

    @property
    def dims(self) -> int:
        return len(self.cell)

    def zone(self) -> Zone:
        return cell_zone(self.cell, self.level)

    def contains_point(self, point) -> bool:
        return self.zone().contains(point)

    def parent(self) -> "Region":
        if self.level == 0:
            raise ValueError("the root region has no parent")
        return Region(self.level - 1, tuple(c >> 1 for c in self.cell))


def regions_of_zone(zone: Zone) -> list:
    """All regions (high-order zones) that enclose ``zone``.

    A node appears in the map of every region returned here -- at
    most ``log N`` of them, as the paper notes.
    """
    return [Region(level, zone.cell(level)) for level in range(1, zone.max_level + 1)]


@lru_cache(maxsize=64)
def _expansion_curve(total_bits: int, dims: int) -> HilbertCurve:
    bits_per_dim = max(1, math.ceil(total_bits / dims))
    return HilbertCurve(bits=bits_per_dim, dims=dims)


@lru_cache(maxsize=1 << 16)
def map_position(
    landmark_number: int,
    total_bits: int,
    region: Region,
    condense_rate: float = 1.0,
) -> tuple:
    """Position inside ``region`` at which a record is stored.

    ``landmark_number`` is a Hilbert index of ``total_bits`` bits;
    it is scaled onto a region-dimensional Hilbert curve (preserving
    order, hence locality), decoded to a point of the unit cube, then
    squeezed into the condensed sub-box of the region.
    """
    if not 0 < condense_rate <= 1.0:
        raise ValueError("condense_rate must be in (0, 1]")
    dims = region.dims
    curve = _expansion_curve(total_bits, dims)
    shift = curve.bits * dims - total_bits
    index = landmark_number << shift if shift >= 0 else landmark_number >> -shift
    unit = curve.decode_center(index)
    side_fraction = condense_rate ** (1.0 / dims)
    zone = region.zone()
    return tuple(
        lo + (hi - lo) * side_fraction * u
        for lo, hi, u in zip(zone.lo, zone.hi, unit)
    )
