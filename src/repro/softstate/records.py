"""Soft-state records.

A record is what a node publishes about itself into the proximity
maps: identity, physical host, landmark vector and number, and --
for the §6 extension -- capacity and current load.  Records are
*soft*: they carry an expiry time and survive only while their owner
keeps refreshing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np


@dataclass
class NodeRecord:
    """Self-description a node stores in the global soft-state."""

    node_id: int
    host: int
    landmark_vector: tuple
    landmark_number: int
    capacity: float = 1.0
    load: float = 0.0
    published_at: float = 0.0
    expires_at: float = math.inf
    #: extension point for additional published statistics (§6)
    extra: dict = field(default_factory=dict)
    #: lazily cached read-only ndarray of ``landmark_vector``; derived
    #: data, so excluded from equality/repr and carried by ``replace``
    vector_array: object = field(default=None, compare=False, repr=False)

    def vector(self) -> np.ndarray:
        """The landmark vector as a cached read-only float64 array."""
        array = self.vector_array
        if array is None:
            array = np.asarray(self.landmark_vector, dtype=np.float64)
            array.flags.writeable = False
            self.vector_array = array
        return array

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    @property
    def utilization(self) -> float:
        """Fraction of forwarding capacity currently in use."""
        if self.capacity <= 0:
            return math.inf
        return self.load / self.capacity

    def refreshed(self, now: float, ttl: float) -> "NodeRecord":
        """Copy with a renewed lease."""
        return replace(self, published_at=now, expires_at=now + ttl)

    def with_load(self, load: float) -> "NodeRecord":
        """Copy with updated load statistics."""
        return replace(self, load=load)
