"""Chord port of the global-soft-state technique.

The paper claims its machinery "is generic for overlay networks such
as Pastry, Chord, and eCAN" and the appendix spells out the Chord
mapping: "simply use the landmark number as the key to store the
information of a node on a node whose ID is equal to or greater than
the landmark number".  This package demonstrates that generality:

* :mod:`repro.chord.ring` -- a Chord ring: consistent-hashing ID
  space, successor routing, finger tables with *flexible* finger
  choice (any node of the finger's ID interval qualifies -- Chord's
  equivalent of proximity-neighbor selection);
* :mod:`repro.chord.softstate` -- per-prefix-region proximity maps on
  the ring, placed by scaling the landmark number into the region's
  ID interval (the 1-dimensional analogue of the eCAN placement -- no
  space-filling curve needed on a ring), plus the landmark+RTT finger
  selection policy.

The ``bench_ext_chord_generality`` benchmark shows the same
random < soft-state < oracle stretch ordering as on eCAN.
"""

from repro.chord.ring import ChordRing, FingerPolicy, SuccessorFingerPolicy
from repro.chord.softstate import (
    ChordClosestFingerPolicy,
    ChordRegion,
    ChordSoftState,
    ChordSoftStateFingerPolicy,
    RandomFingerPolicy,
)

__all__ = [
    "ChordClosestFingerPolicy",
    "ChordRegion",
    "ChordRing",
    "ChordSoftState",
    "ChordSoftStateFingerPolicy",
    "FingerPolicy",
    "RandomFingerPolicy",
    "SuccessorFingerPolicy",
]
