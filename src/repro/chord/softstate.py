"""Global soft-state on Chord: landmark-keyed maps and finger selection.

On a ring the paper's placement hash degenerates pleasantly: a prefix
region is an aligned ID interval, and a landmark number is *scaled*
directly into the (condensed prefix of the) interval -- "use the
landmark number as the key", per the appendix.  Closeness in landmark
number then means closeness in ring position, so records of nearby
nodes co-locate on the same successor, exactly as on eCAN.

A node publishes its record into the map of every aligned interval
(prefix region) that contains its ring id -- at most ``log N`` useful
levels -- and a finger selection queries the region(s) overlapping the
finger's interval, ranks the returned records by landmark-vector
distance, and confirms the top few with RTT probes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chord.ring import ChordRing, FingerPolicy, in_interval
from repro.softstate.records import NodeRecord


@dataclass(frozen=True)
class ChordRegion:
    """Aligned ID interval: at ``level`` l the ring splits into 2^l arcs."""

    level: int
    index: int

    def bounds(self, bits: int) -> tuple:
        size = 1 << (bits - self.level)
        lo = self.index * size
        return lo, lo + size

    @classmethod
    def containing(cls, node_id: int, level: int, bits: int) -> "ChordRegion":
        return cls(level=level, index=node_id >> (bits - level))


class ChordSoftState:
    """Publish / lookup proximity records over the ring."""

    def __init__(
        self,
        ring: ChordRing,
        network,
        space,
        max_level: int = None,
        condense_rate: float = 1.0 / 16.0,
        max_results: int = 16,
    ):
        self.ring = ring
        self.network = network
        self.space = space  # LandmarkSpace
        self.condense_rate = condense_rate
        self.max_results = max_results
        self.max_level = max_level if max_level is not None else min(12, ring.bits - 1)
        self.registry: dict = {}
        #: region -> {ring id -> (record, map key)}
        self.maps: dict = {}
        ring.observers.append(self._on_ring_event)

    def _on_ring_event(self, event: str, node_id: int) -> None:
        if event == "leave":
            self.withdraw(node_id, charge=False)

    # -- placement -----------------------------------------------------------

    def levels_for(self) -> range:
        """Useful region levels: arcs holding >= a handful of nodes."""
        population = max(len(self.ring), 2)
        useful = max(1, int(np.ceil(np.log2(population))) - 1)
        return range(1, min(useful, self.max_level) + 1)

    def map_key(self, landmark_number: int, region: ChordRegion) -> int:
        """Ring key at which a record is stored inside ``region``."""
        lo, hi = region.bounds(self.ring.bits)
        span = int((hi - lo) * self.condense_rate)
        span = max(span, 1)
        fraction = landmark_number / self.space.number_range
        return (lo + int(fraction * span)) % self.ring.space

    def regions_of(self, node_id: int) -> list:
        return [
            ChordRegion.containing(node_id, level, self.ring.bits)
            for level in self.levels_for()
        ]

    # -- publish / withdraw -----------------------------------------------------

    def register_identity(self, node_id: int, host: int, landmark_vector) -> NodeRecord:
        vector = tuple(float(x) for x in landmark_vector)
        record = NodeRecord(
            node_id=node_id,
            host=host,
            landmark_vector=vector,
            landmark_number=self.space.number(np.asarray(vector)),
        )
        self.registry[node_id] = record
        return record

    def publish(self, node_id: int, charge: bool = True) -> int:
        """Write the record to all current regions; drop stale placements.

        Soft-state refresh naturally reconciles level drift: as the
        ring grows, deeper region levels become useful and the next
        refresh covers them.
        """
        record = self.registry[node_id]
        wanted = set(self.regions_of(node_id))
        for region in [r for r in self.maps if node_id in self.maps[r]]:
            if region not in wanted:
                self.maps[region].pop(node_id, None)
                if not self.maps[region]:
                    del self.maps[region]
        for region in sorted(wanted, key=lambda r: r.level):
            key = self.map_key(record.landmark_number, region)
            self.maps.setdefault(region, {})[node_id] = (record, key)
            if charge:
                self.ring.route(node_id, key, category="softstate_publish")
        return len(wanted)

    def withdraw(self, node_id: int, charge: bool = True) -> int:
        removed = 0
        for region in list(self.maps):
            if self.maps[region].pop(node_id, None) is not None:
                removed += 1
                if charge:
                    self.network.stats.count("softstate_withdraw")
            if not self.maps[region]:
                del self.maps[region]
        self.registry.pop(node_id, None)
        return removed

    # -- lookup --------------------------------------------------------------------

    def lookup(self, querier_id: int, region: ChordRegion,
               max_results: int = None, charge: bool = True) -> list:
        """Candidates of ``region`` closest (landmark-wise) to the querier."""
        if max_results is None:
            max_results = self.max_results
        own = self.registry[querier_id]
        key = self.map_key(own.landmark_number, region)
        if charge:
            self.ring.route(querier_id, key, category="softstate_lookup")
        bucket = self.maps.get(region, {})
        records = [rec for node_id, (rec, _k) in bucket.items()
                   if node_id != querier_id and node_id in self.ring.nodes]
        if not records:
            return []
        own_vector = np.asarray(own.landmark_vector)
        vectors = np.array([r.landmark_vector for r in records])
        order = np.argsort(np.linalg.norm(vectors - own_vector, axis=1),
                           kind="stable")
        return [records[i] for i in order[:max_results]]

    def entries_per_node(self) -> dict:
        counts: dict = {}
        for bucket in self.maps.values():
            for _node_id, (_record, key) in bucket.items():
                owner = self.ring.successor_of(key)
                counts[owner] = counts.get(owner, 0) + 1
        return counts


class RandomFingerPolicy(FingerPolicy):
    """Baseline: any member of the finger interval, uniformly."""

    name = "random"

    def __init__(self, rng=None):
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, ring, node_id, index, candidates):
        return candidates[int(self.rng.integers(0, len(candidates)))]


class ChordClosestFingerPolicy(FingerPolicy):
    """Oracle: the physically closest interval member (free probes)."""

    name = "optimal"

    def __init__(self, network):
        self.network = network

    def select(self, ring, node_id, index, candidates):
        host = ring.nodes[node_id].host
        return min(
            candidates,
            key=lambda c: (self.network.latency(host, ring.nodes[c].host), c),
        )


class ChordSoftStateFingerPolicy(FingerPolicy):
    """The paper's technique on Chord: map lookup + RTT confirmation."""

    name = "softstate"

    def __init__(self, softstate: ChordSoftState, network, rtt_budget: int = 10):
        self.softstate = softstate
        self.network = network
        self.rtt_budget = rtt_budget
        self._selecting = False

    def select(self, ring, node_id, index, candidates):
        if self._selecting or node_id not in self.softstate.registry:
            return None
        lo, hi = ring.finger_interval(node_id, index)
        # query the finest region level whose arcs are not smaller than
        # the finger interval, for both arcs the interval may straddle
        interval_bits = index + 1
        level = min(
            max(self.softstate.levels_for(), default=1),
            max(1, ring.bits - interval_bits),
        )
        regions = {
            ChordRegion.containing(lo % ring.space, level, ring.bits),
            ChordRegion.containing((hi - 1) % ring.space, level, ring.bits),
        }
        self._selecting = True
        try:
            records = []
            for region in regions:
                records.extend(self.softstate.lookup(node_id, region))
        finally:
            self._selecting = False
        usable = [
            r for r in records
            if r.node_id != node_id
            and r.node_id in ring.nodes
            and in_interval(r.node_id, lo, hi, ring.space)
        ]
        if not usable:
            return None
        host = ring.nodes[node_id].host
        best = None
        for record in usable[: self.rtt_budget]:
            rtt = self.network.rtt(host, record.host, category="neighbor_probe")
            if best is None or (rtt, record.node_id) < best:
                best = (rtt, record.node_id)
        return best[1]


def build_soft_state_ring(
    network,
    num_nodes: int,
    landmarks: int = 15,
    policy_name: str = "softstate",
    rtt_budget: int = 10,
    bits: int = 20,
    seed: int = 0,
    converge: bool = True,
):
    """Assemble a Chord ring with the chosen finger policy, fully built.

    ``converge=True`` runs one finger-rebuild round after all joins
    (the steady state Chord's fix-fingers stabilization converges to;
    its cost is charged to the usual counters).  Returns ``(ring,
    softstate)``; ``softstate`` is None for non-soft-state policies.
    """
    from repro.proximity.landmarks import LandmarkSpace, select_landmarks

    seeds = np.random.SeedSequence(seed).spawn(4)
    ring_rng = np.random.default_rng(seeds[0])
    host_rng = np.random.default_rng(seeds[1])
    landmark_rng = np.random.default_rng(seeds[2])
    policy_rng = np.random.default_rng(seeds[3])

    ring = ChordRing(bits=bits, network=network, rng=ring_rng, stats=network.stats)
    landmark_set = select_landmarks(network, landmarks, landmark_rng)
    space = LandmarkSpace(landmark_set)
    softstate = ChordSoftState(ring, network, space)

    if policy_name == "random":
        ring.policy = RandomFingerPolicy(policy_rng)
    elif policy_name == "optimal":
        ring.policy = ChordClosestFingerPolicy(network)
    elif policy_name == "successor":
        ring.policy = SuccessorFingerPolicyDefault()
    elif policy_name == "softstate":
        ring.policy = ChordSoftStateFingerPolicy(softstate, network, rtt_budget)
    else:
        raise ValueError(f"unknown finger policy {policy_name!r}")

    hosts = network.sample_hosts(num_nodes, host_rng)
    for host in hosts:
        node_id = ring.join(int(host))
        if policy_name == "softstate":
            vector = space.measure(network, int(host))
            softstate.register_identity(node_id, int(host), vector)
            softstate.publish(node_id)
        ring.build_fingers(node_id)
    if converge:
        if policy_name == "softstate":
            for node_id in ring.members():
                softstate.publish(node_id)  # soft-state refresh round
        for node_id in ring.members():
            ring.build_fingers(node_id)
    return ring, (softstate if policy_name == "softstate" else None)


class SuccessorFingerPolicyDefault(FingerPolicy):
    """Alias of the vanilla policy, importable by name."""

    name = "successor"

    def select(self, ring, node_id, index, candidates):
        from repro.chord.ring import SuccessorFingerPolicy

        return SuccessorFingerPolicy().select(ring, node_id, index, candidates)
