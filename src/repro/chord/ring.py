"""A Chord ring with policy-driven finger selection.

Simulator conventions:

* Ring membership is kept globally consistent (joins and leaves update
  a sorted ID list) -- this models a converged stabilization protocol,
  the same idealization the CAN substrate makes about its neighbor
  sets.  Finger tables, by contrast, are per-node state chosen by a
  :class:`FingerPolicy` and may go stale; routing validates entries
  lazily and repairs through the policy, charging ``table_repair``.
* Finger ``i`` of node ``n`` may be ANY member of the ID interval
  ``[n + 2^i, n + 2^(i+1))`` -- the standard proximity-neighbor-
  selection freedom on Chord.  Vanilla Chord (the first node of the
  interval, i.e. ``successor(n + 2^i)``) is the
  :class:`SuccessorFingerPolicy`.
* Greedy routing forwards to the furthest finger that does not
  overshoot the key; each hop at least halves the remaining clockwise
  distance, so hops stay O(log N) for any per-interval choice.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


def distance_cw(a: int, b: int, space: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % space


def in_interval(x: int, lo: int, hi: int, space: int) -> bool:
    """True if ``x`` lies in the clockwise half-open interval [lo, hi)."""
    return distance_cw(lo, x, space) < distance_cw(lo, hi, space)


@dataclass
class ChordNode:
    """State of one ring participant."""

    node_id: int
    host: int
    #: finger index -> chosen node id (sparse; computed lazily)
    fingers: dict = field(default_factory=dict)


class FingerPolicy:
    """Strategy for choosing a finger among an interval's members."""

    name = "base"

    def select(self, ring: "ChordRing", node_id: int, index: int, candidates):
        """Pick from non-empty ``candidates``; None defers to successor."""
        raise NotImplementedError


class SuccessorFingerPolicy(FingerPolicy):
    """Vanilla Chord: the first node at or after ``n + 2^i``."""

    name = "successor"

    def select(self, ring, node_id, index, candidates):
        start = (node_id + (1 << index)) % ring.space
        return min(candidates, key=lambda c: distance_cw(start, c, ring.space))


class ChordRing:
    """The ring, its members, routing, and finger management."""

    def __init__(self, bits: int = 24, network=None, rng=None, stats=None,
                 policy: FingerPolicy = None):
        if bits < 3:
            raise ValueError("bits must be >= 3")
        self.bits = bits
        self.space = 1 << bits
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = stats
        self.policy = policy if policy is not None else SuccessorFingerPolicy()
        self._ids: list = []  # sorted member ids
        self.nodes: dict = {}
        #: observers notified as (event, node_id)
        self.observers: list = []

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def _count(self, category: str, n: int = 1) -> None:
        if self.stats is not None and category is not None and n:
            self.stats.count(category, n)

    def members(self) -> list:
        return list(self._ids)

    def random_member(self) -> int:
        if not self._ids:
            raise RuntimeError("ring is empty")
        return self._ids[int(self.rng.integers(0, len(self._ids)))]

    def random_key(self) -> int:
        return int(self.rng.integers(0, self.space))

    # -- ring arithmetic -------------------------------------------------------

    def successor_of(self, key: int) -> int:
        """First member at or after ``key`` (wrapping)."""
        if not self._ids:
            raise RuntimeError("ring is empty")
        i = bisect.bisect_left(self._ids, key % self.space)
        return self._ids[i % len(self._ids)]

    def successor(self, node_id: int) -> int:
        """The member clockwise-after ``node_id``."""
        return self.successor_of((node_id + 1) % self.space)

    def predecessor(self, node_id: int) -> int:
        i = bisect.bisect_left(self._ids, node_id)
        return self._ids[(i - 1) % len(self._ids)]

    def interval_members(self, lo: int, hi: int) -> list:
        """Members with ids in the clockwise interval [lo, hi)."""
        lo %= self.space
        hi %= self.space
        if lo == hi:
            return []
        if lo < hi:
            i = bisect.bisect_left(self._ids, lo)
            j = bisect.bisect_left(self._ids, hi)
            return self._ids[i:j]
        i = bisect.bisect_left(self._ids, lo)
        j = bisect.bisect_left(self._ids, hi)
        return self._ids[i:] + self._ids[:j]

    # -- membership ---------------------------------------------------------------

    def join(self, host: int, node_id: int = None) -> int:
        """Add a member; returns its ring id."""
        if node_id is None:
            while True:
                node_id = int(self.rng.integers(0, self.space))
                if node_id not in self.nodes:
                    break
        elif node_id in self.nodes:
            raise ValueError(f"id {node_id} already on the ring")
        bisect.insort(self._ids, node_id)
        self.nodes[node_id] = ChordNode(node_id=node_id, host=host)
        # a join costs one lookup for the id position, as in Chord
        if len(self._ids) > 1:
            self.route(self.random_member(), node_id, category="join_route")
        for observer in self.observers:
            observer("join", node_id)
        return node_id

    def leave(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise KeyError(f"id {node_id} not on the ring")
        self._ids.remove(node_id)
        del self.nodes[node_id]
        for observer in self.observers:
            observer("leave", node_id)

    def invalidate_member(self, dead_id: int) -> int:
        """Eagerly drop every finger pointing at ``dead_id``.

        Crash recovery calls this once a death is *confirmed*, instead
        of leaving each stale finger to be discovered (and charged as
        ``table_repair``) on first use.  Returns entries removed.
        """
        removed = 0
        for node in self.nodes.values():
            stale = [i for i, entry in node.fingers.items() if entry == dead_id]
            for index in stale:
                del node.fingers[index]
            removed += len(stale)
        self._count("eager_invalidate", removed)
        return removed

    # -- fingers ------------------------------------------------------------------------

    def finger_interval(self, node_id: int, index: int) -> tuple:
        """The clockwise ID interval finger ``index`` may point into."""
        lo = (node_id + (1 << index)) % self.space
        hi = (node_id + (1 << (index + 1))) % self.space
        return lo, hi

    def _select_finger(self, node_id: int, index: int):
        lo, hi = self.finger_interval(node_id, index)
        candidates = [c for c in self.interval_members(lo, hi) if c != node_id]
        if not candidates:
            return None
        chosen = self.policy.select(self, node_id, index, candidates)
        if chosen is None:
            start = (node_id + (1 << index)) % self.space
            chosen = min(candidates, key=lambda c: distance_cw(start, c, self.space))
        self._count("neighbor_select")
        return chosen

    def build_fingers(self, node_id: int) -> None:
        """(Re)build every finger of ``node_id`` through the policy."""
        node = self.nodes[node_id]
        node.fingers = {}
        for index in range(self.bits):
            chosen = self._select_finger(node_id, index)
            if chosen is not None:
                node.fingers[index] = chosen

    def finger(self, node_id: int, index: int):
        """Current finger, lazily repaired when stale or missing."""
        node = self.nodes[node_id]
        entry = node.fingers.get(index)
        if entry is not None and entry in self.nodes:
            lo, hi = self.finger_interval(node_id, index)
            if in_interval(entry, lo, hi, self.space):
                return entry
        repaired = entry is not None
        entry = self._select_finger(node_id, index)
        if entry is None:
            node.fingers.pop(index, None)
            return None
        if repaired:
            self._count("table_repair")
        node.fingers[index] = entry
        return entry

    # -- routing --------------------------------------------------------------------------

    def route(self, start_id: int, key: int, category: str = "chord_route",
              max_hops: int = None):
        """Greedy clockwise routing; returns (path ids, owner id)."""
        from repro.overlay.routing import RouteResult

        if start_id not in self.nodes:
            raise KeyError(f"start node {start_id} not on the ring")
        if max_hops is None:
            max_hops = 4 * self.bits
        key %= self.space
        path = [start_id]
        current = start_id
        result = RouteResult(path=path)
        while True:
            successor = self.successor(current)
            if current == key or in_interval(
                key, (current + 1) % self.space, (successor + 1) % self.space,
                self.space,
            ) or len(self) == 1:
                owner = self.successor_of(key)
                if owner != current:
                    path.append(owner)
                    self._count(category)
                result.owner = owner
                return result
            if len(path) > max_hops:
                result.owner = None
                result.success = False
                return result
            # furthest finger that does not overshoot the key
            next_hop = None
            gap = distance_cw(current, key, self.space)
            for index in range(self.bits - 1, -1, -1):
                if (1 << index) >= gap:
                    continue
                entry = self.finger(current, index)
                if entry is None or entry in path:
                    continue
                if in_interval(entry, (current + 1) % self.space, key, self.space):
                    next_hop = entry
                    break
            if next_hop is None:
                next_hop = successor
                if next_hop in path:
                    result.owner = None
                    result.success = False
                    return result
            path.append(next_hop)
            current = next_hop
            self._count(category)

    # -- metrics -------------------------------------------------------------------------------

    def host_of(self, node_id: int) -> int:
        return self.nodes[node_id].host

    def measure_stretch(self, samples: int, rng=None) -> np.ndarray:
        """Routing stretch over random member pairs (needs a network)."""
        if self.network is None:
            raise RuntimeError("ring has no attached network")
        if rng is None:
            rng = self.rng
        ids = np.array(self._ids)
        stretches = []
        attempts = 0
        while len(stretches) < samples and attempts < 4 * samples:
            attempts += 1
            src, dst = rng.choice(ids, size=2, replace=False)
            result = self.route(int(src), int(dst))
            if not result.success or result.owner != int(dst):
                continue
            hosts = [self.nodes[n].host for n in result.path]
            direct = self.network.latency(self.nodes[int(src)].host,
                                          self.nodes[int(dst)].host)
            if direct <= 1e-9:
                continue
            stretches.append(self.network.path_latency(hosts) / direct)
        return np.asarray(stretches)
