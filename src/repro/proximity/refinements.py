"""§5.4 refinements: closing the second performance gap.

The paper lists three optimizations for the proximity-generation gap
("additional optimizations can only improve this second gap"), all
implemented here:

* **Landmark groups** (:class:`LandmarkGroups`) -- "divide a large
  number of landmarks into groups, and each node computes a set of
  landmark positions.  All these positions are then joined together
  to reduce false clustering."  A candidate only ranks as close if it
  is close in *every* group (max-over-groups distance), so a single
  group's false clustering cannot promote a far-away node.
* **Hierarchical landmark spaces** (:class:`HierarchicalLandmarks`) --
  "a small number of widely scattered landmarks are used to do a
  preselection, and localized landmarks are then used to refine the
  result."  Global distance buckets pre-select; candidates sharing
  the querier's coarse bucket are re-ranked by distance to a set of
  *local* landmarks (placed per transit domain, the natural locality
  unit of a transit-stub internet).
* **SVD de-noising** (:class:`SvdProjector`) -- "use a large number of
  randomly selected landmarks and then rely on classical data analysis
  techniques such as Singular Value Decomposition to extract useful
  information from the large number of RTTs and to suppress noises."
  Vectors are centered and projected onto the top singular directions
  before ranking.  (The paper's follow-on idea of training a neural
  network on top of the SVD features is out of scope; the linear
  projection is the load-bearing part.)

All three expose ``rank(query_vector, candidate_vectors) -> order``,
interchangeable with :func:`repro.proximity.hybrid.rank_candidates`
in the hybrid search; the ablation bench compares them under noisy
latencies where plain ranking degrades.
"""

from __future__ import annotations

import numpy as np

from repro.proximity.landmarks import LandmarkSet, select_landmarks


class LandmarkGroups:
    """Joint ranking over several independent landmark groups."""

    def __init__(self, groups):
        """``groups``: per-group index arrays into the full vector."""
        self.groups = [np.asarray(g, dtype=np.int64) for g in groups]
        if not self.groups:
            raise ValueError("need at least one group")

    @classmethod
    def split(cls, num_landmarks: int, num_groups: int) -> "LandmarkGroups":
        """Partition ``num_landmarks`` landmarks into equal groups."""
        if num_groups < 1 or num_groups > num_landmarks:
            raise ValueError("need 1 <= num_groups <= num_landmarks")
        return cls(np.array_split(np.arange(num_landmarks), num_groups))

    def rank(self, query_vector, candidate_vectors) -> np.ndarray:
        """Order by the worst (max) per-group distance -- a candidate
        must look close in every group to rank high."""
        query_vector = np.asarray(query_vector, dtype=np.float64)
        candidate_vectors = np.asarray(candidate_vectors, dtype=np.float64)
        per_group = []
        for group in self.groups:
            diff = candidate_vectors[:, group] - query_vector[group]
            # normalize by group size so groups weigh equally
            per_group.append(np.linalg.norm(diff, axis=1) / np.sqrt(len(group)))
        worst = np.max(per_group, axis=0)
        return np.argsort(worst, kind="stable")


class HierarchicalLandmarks:
    """Coarse global pre-selection refined by localized landmarks."""

    def __init__(self, network, global_count: int = 5, local_count: int = 3,
                 bucket_ms: float = 40.0, rng=None):
        if rng is None:
            rng = np.random.default_rng(0)
        self.network = network
        self.bucket_ms = bucket_ms
        self.global_set = select_landmarks(network, global_count, rng)
        # localized landmarks: a few per transit domain, drawn from that
        # domain's stub nodes
        topo = network.topology
        self.local_sets: dict = {}
        for domain in range(topo.config.transit_domains):
            pool = np.flatnonzero(
                (topo.transit_domain == domain) & (topo.stub_domain >= 0)
            )
            if len(pool) == 0:
                continue
            picks = rng.choice(pool, size=min(local_count, len(pool)), replace=False)
            self.local_sets[domain] = LandmarkSet(
                hosts=picks, max_rtt_ms=self.global_set.max_rtt_ms
            )

    def measure(self, host: int, charge_category: str = "landmark_probe"):
        """(global vector, {domain: local vector}) for ``host``.

        Every node measures the global set plus each domain's local
        set it can see; in a deployment the local measurement happens
        on demand against the candidate's home landmarks.
        """
        global_vector = self.network.rtt_many(
            int(host), self.global_set.hosts, category=charge_category
        )
        local_vectors = {
            domain: self.network.rtt_many(
                int(host), local.hosts, category=charge_category
            )
            for domain, local in self.local_sets.items()
        }
        return global_vector, local_vectors

    def rank(self, query, candidates) -> np.ndarray:
        """``query``/``candidates[i]`` are ``measure()`` outputs.

        Sort key: (coarse global-distance bucket, refined local
        distance within the best-matching domain, fine global
        distance).
        """
        q_global, q_locals = query
        keys = []
        for c_global, c_locals in candidates:
            global_distance = float(np.linalg.norm(
                np.asarray(c_global) - np.asarray(q_global)
            ))
            bucket = int(global_distance // self.bucket_ms)
            local_distance = min(
                (
                    float(np.linalg.norm(
                        np.asarray(c_locals[d]) - np.asarray(q_locals[d])
                    ))
                    for d in q_locals
                    if d in c_locals
                ),
                default=global_distance,
            )
            keys.append((bucket, local_distance, global_distance))
        return np.asarray(
            sorted(range(len(keys)), key=lambda i: keys[i]), dtype=np.int64
        )


class SvdProjector:
    """Rank in the top-k singular subspace of the landmark vectors."""

    def __init__(self, components: int = 5):
        if components < 1:
            raise ValueError("components must be >= 1")
        self.components = components
        self.mean_: np.ndarray = None
        self.basis_: np.ndarray = None

    def fit(self, vectors) -> "SvdProjector":
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape[0] <= self.components:
            raise ValueError("need more sample vectors than components")
        self.mean_ = vectors.mean(axis=0)
        _u, _s, vt = np.linalg.svd(vectors - self.mean_, full_matrices=False)
        self.basis_ = vt[: self.components].T  # (landmarks, components)
        return self

    def transform(self, vectors) -> np.ndarray:
        if self.basis_ is None:
            raise RuntimeError("fit must run first")
        vectors = np.asarray(vectors, dtype=np.float64)
        return (vectors - self.mean_) @ self.basis_

    def rank(self, query_vector, candidate_vectors) -> np.ndarray:
        query = self.transform(np.asarray(query_vector)[None, :])[0]
        projected = self.transform(candidate_vectors)
        return np.argsort(
            np.linalg.norm(projected - query, axis=1), kind="stable"
        )
