"""The paper's hybrid landmark + RTT nearest-neighbor search.

Landmark clustering alone cannot tell close-by nodes apart; blind
probing is expensive.  The hybrid uses the landmark machinery only to
*rank* candidates, then spends a small RTT budget confirming the top
of the ranking:

1. rank all known candidates by a landmark-derived closeness metric
   to the querying node;
2. probe the top ``budget`` candidates' real RTTs;
3. keep the closest.

Ranking metrics (``rank=``):

* ``"vector"`` -- Euclidean distance between full landmark vectors
  (what a rendezvous node does when serving a map lookup);
* ``"number"`` -- absolute difference of scalar landmark numbers
  (what a raw map *placement* gives before the full-vector sort);
* ``"order"`` -- landmark-ordering similarity, the Topologically-Aware
  CAN baseline: candidates sharing a longer prefix of the query's
  landmark permutation rank higher, ties broken randomly (the paper's
  point is precisely that this cannot differentiate same-order nodes).
* ``"coordinates"`` -- Euclidean distance in a GNP-style coordinate
  embedding (see :mod:`repro.proximity.coordinates`).

A search with ``budget=1`` reproduces the "landmark clustering alone"
series of Figures 3 and 5 (the first point of the ``lmk+rtt`` curve).
"""

from __future__ import annotations

import numpy as np

from repro.netsim.faults import ProbeTimeout
from repro.proximity.ers import SearchCurve, _CurveBuilder


def rank_candidates(
    query_vector: np.ndarray,
    candidate_vectors: np.ndarray,
    rank: str = "vector",
    landmark_space=None,
    rng: np.random.Generator = None,
    coordinates=None,
    query_coords=None,
) -> np.ndarray:
    """Indices of candidates sorted from most to least promising."""
    candidate_vectors = np.asarray(candidate_vectors, dtype=np.float64)
    if rank == "vector":
        dist = np.linalg.norm(candidate_vectors - query_vector, axis=1)
        return np.argsort(dist, kind="stable")
    if rank == "number":
        if landmark_space is None:
            raise ValueError("rank='number' requires a landmark_space")
        query_number = landmark_space.number(query_vector)
        numbers = np.array(
            [landmark_space.number(v) for v in candidate_vectors], dtype=np.int64
        )
        return np.argsort(np.abs(numbers - query_number), kind="stable")
    if rank == "order":
        if rng is None:
            rng = np.random.default_rng(0)
        query_order = np.argsort(query_vector, kind="stable")
        orders = np.argsort(candidate_vectors, axis=1, kind="stable")
        agree = orders == query_order
        # length of the agreeing prefix of the permutation
        prefix = np.where(agree.all(axis=1), agree.shape[1], agree.argmin(axis=1))
        noise = rng.random(len(candidate_vectors))
        return np.lexsort((noise, -prefix))
    if rank == "coordinates":
        if coordinates is None or query_coords is None:
            raise ValueError("rank='coordinates' requires an embedding")
        dist = np.linalg.norm(coordinates - query_coords, axis=1)
        return np.argsort(dist, kind="stable")
    raise ValueError(f"unknown ranking {rank!r}")


def hybrid_search(
    network,
    query_host: int,
    query_vector: np.ndarray,
    candidate_hosts,
    candidate_vectors,
    budget: int = 30,
    rank: str = "vector",
    landmark_space=None,
    rng: np.random.Generator = None,
    category: str = "hybrid_probe",
    coordinates=None,
    query_coords=None,
    retry_policy=None,
) -> SearchCurve:
    """Landmark-guided nearest-neighbor search; returns the probe curve.

    ``candidate_hosts`` / ``candidate_vectors`` describe the pool the
    ranking sees (in the full system: the records returned by a map
    lookup; in the Figure 3-6 experiments: every node in the system).
    The query host itself is skipped if present in the pool.

    Under an armed fault injector, candidate probes may time out: a
    ``retry_policy`` re-probes with sim-clock backoff before the
    candidate is skipped (a timed-out candidate still consumes one
    unit of probe budget).  If *every* probed candidate times out the
    search degrades to landmark-only ranking -- the top-ranked
    candidate is returned with its landmark-space distance standing in
    for the unmeasurable RTT.
    """
    candidate_hosts = np.asarray(candidate_hosts, dtype=np.int64)
    candidate_vectors = np.asarray(candidate_vectors, dtype=np.float64)
    order = rank_candidates(
        query_vector,
        candidate_vectors,
        rank=rank,
        landmark_space=landmark_space,
        rng=rng,
        coordinates=coordinates,
        query_coords=query_coords,
    )
    builder = _CurveBuilder(method=f"lmk+rtt[{rank}]")
    fallback_idx = None
    for idx in order:
        host = int(candidate_hosts[idx])
        if host == query_host:
            continue
        if fallback_idx is None:
            fallback_idx = idx
        try:
            if retry_policy is None:
                builder.probe(network, query_host, host, category)
            else:
                rtt = retry_policy.probe(network, query_host, host, category=category)
                builder.record(float(rtt), host)
        except ProbeTimeout:
            builder.failed()
        if builder._count >= budget:
            break
    if not builder.probes and fallback_idx is not None:
        # landmark-only degradation: trust the ranking outright
        estimate = float(
            np.linalg.norm(candidate_vectors[fallback_idx] - query_vector)
        )
        builder.record(estimate, int(candidate_hosts[fallback_idx]))
        builder.method = f"lmk-only[{rank}]"
        telemetry = getattr(network, "telemetry", None)
        if telemetry is not None:
            telemetry.emit("degraded", rank=rank, query_host=int(query_host))
    return builder.build()
