"""n-dimensional Hilbert space-filling curves.

The paper (appendix) uses Hilbert curves twice:

1. to reduce a node's high-dimensional landmark vector to a single
   scalar *landmark number* while preserving closeness, and
2. to map landmark numbers back to positions inside an overlay region
   when placing soft-state records (the hash ``p' = h(p, dp, dz, z)``).

This module implements John Skilling's compact transformation
("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which
converts between d-dimensional integer coordinates and the Hilbert
index for an arbitrary number of dimensions and bits of precision.

The defining locality property -- consecutive indices map to cells
that differ by exactly 1 in exactly one coordinate -- is exercised by
the property-based tests.
"""

from __future__ import annotations

from functools import lru_cache

#: entries kept per curve instance and direction (encode / decode)
_CACHE_SIZE = 1 << 15


class HilbertCurve:
    """Hilbert index <-> coordinates for ``dims`` dimensions, ``bits`` each.

    Coordinates live in ``[0, 2**bits)``; indices in
    ``[0, 2**(bits*dims))``.
    """

    def __init__(self, bits: int, dims: int):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.bits = bits
        self.dims = dims
        # Skilling's transform is pure in (bits, dims, input), so both
        # directions memoise per instance; the curves in play are few
        # and long-lived, and hot paths re-encode the same cells.
        self._encode_cached = lru_cache(maxsize=_CACHE_SIZE)(self._encode_impl)
        self._decode_cached = lru_cache(maxsize=_CACHE_SIZE)(self._decode_impl)

    @property
    def side(self) -> int:
        """Cells per dimension."""
        return 1 << self.bits

    @property
    def length(self) -> int:
        """Total number of cells on the curve."""
        return 1 << (self.bits * self.dims)

    # -- integer interface ---------------------------------------------------

    def encode(self, coords) -> int:
        """Hilbert index of integer cell ``coords``."""
        return self._encode_cached(tuple(coords))

    def decode(self, index: int) -> tuple:
        """Integer cell coordinates of Hilbert ``index``."""
        return self._decode_cached(index)

    def _encode_impl(self, coords: tuple) -> int:
        x = list(coords)
        if len(x) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates, got {len(x)}")
        side = self.side
        for value in x:
            if not 0 <= value < side:
                raise ValueError(f"coordinate {value} outside [0, {side})")
        transpose = self._axes_to_transpose(x)
        return self._transpose_to_index(transpose)

    def _decode_impl(self, index: int) -> tuple:
        if not 0 <= index < self.length:
            raise ValueError(f"index {index} outside [0, {self.length})")
        transpose = self._index_to_transpose(index)
        return tuple(self._transpose_to_axes(transpose))

    # -- unit-cube convenience interface ----------------------------------------

    def encode_point(self, point) -> int:
        """Hilbert index of a point in the unit cube ``[0, 1)^dims``.

        Coordinates outside ``[0, 1]`` raise :class:`ValueError` --
        silently clamping them would mask landmark-vector
        normalisation errors upstream.  The exact ``x == 1.0``
        boundary (a closed-interval artefact of float normalisation)
        still clamps into the last cell.
        """
        side = self.side
        coords = []
        for x in point:
            if not 0.0 <= x <= 1.0:
                raise ValueError(
                    f"coordinate {x} outside the unit interval [0, 1]"
                )
            coords.append(min(side - 1, int(x * side)))
        return self.encode(coords)

    def decode_center(self, index: int) -> tuple:
        """Center of the unit-cube cell of Hilbert ``index``."""
        side = self.side
        return tuple((c + 0.5) / side for c in self.decode(index))

    # -- Skilling's transform ------------------------------------------------------

    def _axes_to_transpose(self, x: list) -> list:
        """In-place conversion from coordinates to 'transpose' form."""
        m = 1 << (self.bits - 1)
        n = self.dims
        # Inverse undo of the excess work below
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q >>= 1
        # Gray encode
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = 0
        q = m
        while q > 1:
            if x[n - 1] & q:
                t ^= q - 1
            q >>= 1
        for i in range(n):
            x[i] ^= t
        return x

    def _transpose_to_axes(self, x: list) -> list:
        """In-place conversion from 'transpose' form back to coordinates."""
        n = self.dims
        top = 2 << (self.bits - 1)
        # Gray decode by H ^ (H/2)
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        # Undo excess work
        q = 2
        while q != top:
            p = q - 1
            for i in range(n - 1, -1, -1):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q <<= 1
        return x

    # -- bit interleaving between transpose form and a single integer ------------

    def _transpose_to_index(self, x: list) -> int:
        index = 0
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                index = (index << 1) | ((x[i] >> bit) & 1)
        return index

    def _index_to_transpose(self, index: int) -> list:
        x = [0] * self.dims
        position = self.bits * self.dims - 1
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                x[i] |= ((index >> position) & 1) << bit
                position -= 1
        return x
