"""Proximity-information generation.

The paper contrasts three ways of producing proximity information and
contributes a hybrid of two of them:

* :mod:`repro.proximity.ers` -- expanding-ring search, the blind
  flooding baseline;
* :mod:`repro.proximity.landmarks` -- landmark clustering: landmark
  RTT vectors, landmark orderings (the Topologically-Aware CAN
  technique) and scalar *landmark numbers* derived through a
  space-filling curve;
* :mod:`repro.proximity.hybrid` -- the paper's contribution: landmark
  pre-selection followed by a handful of real RTT measurements;
* :mod:`repro.proximity.hilbert` -- n-dimensional Hilbert curves
  (Skilling's algorithm), the dimensionality-reduction device;
* :mod:`repro.proximity.coordinates` -- a GNP-style coordinate
  embedding, reproduced as a related-work baseline.
"""

from repro.proximity.coordinates import CoordinateSystem
from repro.proximity.ers import SearchCurve, expanding_ring_search
from repro.proximity.hilbert import HilbertCurve
from repro.proximity.hybrid import hybrid_search, rank_candidates
from repro.proximity.landmarks import (
    LandmarkSet,
    LandmarkSpace,
    landmark_order,
    measure_vector,
    select_landmarks,
)

__all__ = [
    "CoordinateSystem",
    "HilbertCurve",
    "LandmarkSet",
    "LandmarkSpace",
    "SearchCurve",
    "expanding_ring_search",
    "hybrid_search",
    "landmark_order",
    "measure_vector",
    "rank_candidates",
    "select_landmarks",
]
