"""Landmark clustering: vectors, orderings and landmark numbers.

Every node measures its RTT to a small set of landmark hosts
"randomly scattered in the Internet".  The resulting *landmark
vector* positions the node in an n-dimensional *landmark space*
(Figure 7 of the paper); nodes close in the physical network land
close in landmark space.  Three derived forms are used:

* the raw **vector** -- used at rendezvous nodes to sort map entries
  by proximity to a requester;
* the **landmark order** -- the permutation of landmarks sorted by
  increasing RTT; the (coarser) technique of Topologically-Aware CAN,
  reproduced here as a baseline;
* the **landmark number** -- a scalar obtained by binning the vector
  onto a grid of ``2^(bits * index_dims)`` cells and threading a
  Hilbert curve through the grid; closeness in landmark number
  indicates physical closeness, and the number doubles as the DHT key
  under which a node's soft-state is stored.

Per the paper's appendix optimisation, only a few components of the
vector (the *landmark vector index*, ``index_dims`` of them) feed the
landmark number; the full vector is still carried in soft-state
records for the final sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.proximity.hilbert import HilbertCurve


@dataclass
class LandmarkSet:
    """The chosen landmark hosts plus a normalisation bound."""

    hosts: np.ndarray
    #: RTT value mapped to the top edge of the landmark-space grid (ms)
    max_rtt_ms: float

    @property
    def count(self) -> int:
        return len(self.hosts)


def select_landmarks(
    network,
    count: int,
    rng: np.random.Generator,
    stub_only: bool = False,
    margin: float = 1.25,
    strategy: str = "random",
) -> LandmarkSet:
    """Pick ``count`` landmark hosts from the topology.

    Strategies (the paper uses ``random`` -- "randomly scattered in
    the Internet"; the others exist for the placement ablation):

    * ``random`` -- uniform over hosts;
    * ``transit`` -- uniform over backbone (transit) nodes, modelling
      landmarks hosted at well-connected infrastructure;
    * ``spread`` -- greedy max-min latency separation (2-approximate
      k-center): pick a random seed, then repeatedly add the host
      farthest from the chosen set.  Separation costs extra
      calibration probes, charged as usual.

    The normalisation bound is estimated from the measured pairwise
    landmark RTTs (times ``margin``), mirroring a deployment where the
    landmarks calibrate the grid among themselves.
    """
    if count < 2:
        raise ValueError("need at least two landmarks")
    if strategy == "random":
        hosts = network.sample_hosts(count, rng, stub_only=stub_only)
    elif strategy == "transit":
        pool = network.topology.transit_nodes()
        if count > len(pool):
            raise ValueError(f"only {len(pool)} transit nodes available")
        hosts = rng.choice(pool, size=count, replace=False)
    elif strategy == "spread":
        # candidates: a modest random pool to keep probing realistic
        pool = network.sample_hosts(
            min(8 * count, len(network.topology.stub_nodes())), rng,
            stub_only=stub_only,
        )
        chosen = [int(pool[int(rng.integers(0, len(pool)))])]
        best_gap = {int(h): np.inf for h in pool}
        while len(chosen) < count:
            newest = chosen[-1]
            farthest, farthest_gap = None, -1.0
            for host in pool:
                host = int(host)
                if host in chosen:
                    continue
                rtt = network.rtt(newest, host, category="landmark_calibration")
                best_gap[host] = min(best_gap[host], rtt)
                if best_gap[host] > farthest_gap:
                    farthest, farthest_gap = host, best_gap[host]
            chosen.append(farthest)
        hosts = np.asarray(chosen, dtype=np.int64)
    else:
        raise ValueError(f"unknown landmark strategy {strategy!r}")
    max_rtt = 0.0
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            max_rtt = max(max_rtt, network.rtt(int(a), int(b), category="landmark_calibration"))
    return LandmarkSet(hosts=hosts, max_rtt_ms=max_rtt * margin)


def measure_vector(
    network, host: int, landmarks: LandmarkSet, category: str = "landmark_probe"
) -> np.ndarray:
    """Measure ``host``'s landmark RTT vector (charged as probes)."""
    return network.rtt_many(int(host), landmarks.hosts, category=category)


def landmark_order(vector: np.ndarray) -> tuple:
    """Landmark permutation sorted by increasing RTT (ties by index).

    This is Topologically-Aware CAN's "landmark ordering": nodes with
    equal permutations are deemed close; the technique cannot
    differentiate nodes that share an ordering.
    """
    return tuple(int(i) for i in np.argsort(vector, kind="stable"))


class LandmarkSpace:
    """Landmark set + grid + Hilbert curve = landmark numbers.

    Parameters
    ----------
    landmarks:
        The landmark hosts and normalisation bound.
    bits_per_dim:
        Grid resolution ``x``: each landmark-space axis is cut into
        ``2^x`` bins.  Smaller ``x`` makes it likelier that two nodes
        share a landmark number (coarser clustering).
    index_dims:
        How many vector components feed the landmark number (the
        *landmark vector index*); ``None`` uses min(4, n).
    """

    def __init__(
        self,
        landmarks: LandmarkSet,
        bits_per_dim: int = 5,
        index_dims: int = None,
    ):
        self.landmarks = landmarks
        self.bits_per_dim = bits_per_dim
        if index_dims is None:
            index_dims = min(4, landmarks.count)
        if not 1 <= index_dims <= landmarks.count:
            raise ValueError("index_dims must be within [1, #landmarks]")
        self.index_dims = index_dims
        self.curve = HilbertCurve(bits=bits_per_dim, dims=index_dims)
        # vector-prefix bytes -> (bin cell, landmark number); the same
        # registered vectors are re-binned on every publish/lookup, so
        # the derivation is memoised (bounded -- see _MEMO_LIMIT)
        self._derived: dict = {}

    #: entries kept in the vector -> (cell, number) memo
    _MEMO_LIMIT = 1 << 16

    @property
    def total_bits(self) -> int:
        """Bits in a landmark number."""
        return self.bits_per_dim * self.index_dims

    @property
    def number_range(self) -> int:
        """Exclusive upper bound on landmark numbers."""
        return 1 << self.total_bits

    def measure(self, network, host: int, category: str = "landmark_probe") -> np.ndarray:
        """Measure a host's landmark vector (charged)."""
        return measure_vector(network, host, self.landmarks, category)

    def _derive(self, vector: np.ndarray) -> tuple:
        """(grid cell, landmark number) of a vector, memoised."""
        prefix = np.ascontiguousarray(
            np.asarray(vector, dtype=np.float64)[: self.index_dims]
        )
        key = prefix.tobytes()
        hit = self._derived.get(key)
        if hit is not None:
            return hit
        side = 1 << self.bits_per_dim
        scaled = prefix / self.landmarks.max_rtt_ms
        cells = np.clip((scaled * side).astype(np.int64), 0, side - 1)
        cell = tuple(int(c) for c in cells)
        derived = (cell, self.curve.encode(cell))
        if len(self._derived) >= self._MEMO_LIMIT:
            self._derived.clear()
        self._derived[key] = derived
        return derived

    def bin_vector(self, vector: np.ndarray) -> tuple:
        """Grid cell of the vector's first ``index_dims`` components."""
        return self._derive(vector)[0]

    def number(self, vector: np.ndarray) -> int:
        """Landmark number: Hilbert index of the vector's grid cell."""
        return self._derive(vector)[1]

    def number_distance(self, a: int, b: int) -> int:
        """1-D distance between landmark numbers (closeness proxy)."""
        return abs(a - b)
