"""GNP-style coordinate embedding (related-work baseline).

"Towards global network positioning" (Ng & Zhang) embeds a few
landmark hosts into a low-dimensional Euclidean space from their
pairwise RTTs, then lets every other host solve its own coordinates
from its RTTs to the landmarks.  The paper cites this as the
"coordinate-based" alternative to landmark ordering; we reproduce it
so the hybrid search can be compared against coordinate ranking in an
ablation bench.

Implementation: classical multidimensional scaling seeds the landmark
coordinates, a Gauss-Newton refinement (scipy ``least_squares``)
polishes them, and each host's coordinates are solved with the same
refinement against the landmark anchors.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares


def _classical_mds(distances: np.ndarray, dims: int) -> np.ndarray:
    """Classical MDS embedding of a symmetric distance matrix."""
    n = len(distances)
    squared = distances.astype(np.float64) ** 2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dims]
    scale = np.sqrt(np.maximum(eigenvalues[order], 0.0))
    return eigenvectors[:, order] * scale


class CoordinateSystem:
    """Landmark-anchored Euclidean coordinates for hosts."""

    def __init__(self, dims: int = 4):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.landmark_hosts: np.ndarray = None
        self.landmark_coords: np.ndarray = None

    def fit_landmarks(self, network, landmark_hosts, category: str = "gnp_probe") -> None:
        """Measure pairwise landmark RTTs and embed the landmarks."""
        hosts = np.asarray(landmark_hosts, dtype=np.int64)
        n = len(hosts)
        if n <= self.dims:
            raise ValueError("need more landmarks than embedding dimensions")
        if n * (n - 1) // 2 < n * self.dims:
            raise ValueError(
                f"{n} landmarks give {n * (n - 1) // 2} pairwise constraints, "
                f"fewer than the {n * self.dims} coordinates to solve; use "
                f"more landmarks or fewer dimensions"
            )
        rtt = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                rtt[i, j] = rtt[j, i] = network.rtt(
                    int(hosts[i]), int(hosts[j]), category=category
                )
        # one-way latency target (embedding is defined on latency, factor-free)
        target = rtt / 2.0
        seed = _classical_mds(target, self.dims)

        def residuals(flat):
            coords = flat.reshape(n, self.dims)
            diff = coords[:, None, :] - coords[None, :, :]
            dist = np.linalg.norm(diff, axis=2)
            iu = np.triu_indices(n, k=1)
            return dist[iu] - target[iu]

        solution = least_squares(residuals, seed.ravel(), method="lm", max_nfev=200)
        self.landmark_hosts = hosts
        self.landmark_coords = solution.x.reshape(n, self.dims)

    def solve_host(self, network, host: int, category: str = "gnp_probe") -> np.ndarray:
        """Measure RTTs to the landmarks and solve the host's coordinates."""
        if self.landmark_coords is None:
            raise RuntimeError("fit_landmarks must run first")
        rtts = network.rtt_many(int(host), self.landmark_hosts, category=category)
        return self.solve_from_rtts(rtts)

    def solve_from_rtts(self, rtts: np.ndarray) -> np.ndarray:
        """Coordinates from an already-measured landmark RTT vector."""
        target = np.asarray(rtts, dtype=np.float64) / 2.0
        anchors = self.landmark_coords
        seed = anchors[np.argmin(target)]

        def residuals(point):
            return np.linalg.norm(anchors - point, axis=1) - target

        solution = least_squares(residuals, seed, method="lm", max_nfev=100)
        return solution.x

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Estimated one-way latency between two embedded hosts."""
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))
