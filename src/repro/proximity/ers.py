"""Expanding-ring search: the blind flooding baseline.

The paper evaluates ERS over a 2-dimensional CAN containing *all*
nodes of the topology: starting from the querying node's own CAN
position, rings of increasing overlay hop distance are flooded and
every newly reached node is RTT-probed.  The output of a search is a
*curve* -- the best (smallest) RTT discovered after each probe -- so
one breadth-first sweep yields every point of the paper's
probes-versus-stretch plots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SearchCurve:
    """Best-so-far nearest-neighbor search trajectory.

    ``best_rtt[k]`` is the smallest RTT seen after ``probes[k]``
    measurements, and ``best_host[k]`` the corresponding host.
    """

    probes: np.ndarray
    best_rtt: np.ndarray
    best_host: np.ndarray
    #: search-algorithm label, for experiment tables
    method: str = "search"
    #: overlay/control messages spent in addition to the RTT probes
    control_messages: int = 0

    def __len__(self) -> int:
        return len(self.probes)

    def best_after(self, budget: int):
        """(host, rtt) of the best node found within ``budget`` probes."""
        if len(self.probes) == 0:
            return None, float("inf")
        k = int(np.searchsorted(self.probes, budget, side="right")) - 1
        if k < 0:
            return None, float("inf")
        return int(self.best_host[k]), float(self.best_rtt[k])

    def stretch_after(self, budget: int, nearest_latency: float) -> float:
        """Found-vs-true nearest-neighbor distance ratio at ``budget``.

        ``nearest_latency`` is the one-way latency to the true nearest
        node; a perfect search reaches stretch 1.0.
        """
        _, rtt = self.best_after(budget)
        if not np.isfinite(rtt):
            return float("inf")
        if nearest_latency <= 0:
            return 1.0
        return (rtt / 2.0) / nearest_latency


@dataclass
class _CurveBuilder:
    method: str
    probes: list = field(default_factory=list)
    rtts: list = field(default_factory=list)
    hosts: list = field(default_factory=list)
    _count: int = 0
    _best: float = float("inf")

    def probe(self, network, src_host: int, dst_host: int, category: str) -> None:
        rtt = network.rtt(src_host, dst_host, category=category)
        self.record(rtt, dst_host)

    def record(self, rtt: float, dst_host: int) -> None:
        """Account one (already measured or estimated) probe result."""
        self._count += 1
        if rtt < self._best:
            self._best = rtt
            self.probes.append(self._count)
            self.rtts.append(rtt)
            self.hosts.append(dst_host)

    def failed(self) -> None:
        """A probe that timed out still consumed budget."""
        self._count += 1

    def build(self, control_messages: int = 0) -> SearchCurve:
        return SearchCurve(
            probes=np.asarray(self.probes, dtype=np.int64),
            best_rtt=np.asarray(self.rtts, dtype=np.float64),
            best_host=np.asarray(self.hosts, dtype=np.int64),
            method=self.method,
            control_messages=control_messages,
        )


def expanding_ring_search(
    network,
    can,
    query_node: int,
    max_probes: int = 1000,
    category: str = "ers_probe",
) -> SearchCurve:
    """Probe outward ring by ring from ``query_node``'s CAN position.

    ``can`` is a :class:`~repro.overlay.can.CanOverlay` whose members
    stand in for "all nodes in the topology".  Every node reached by
    the flood costs one control message; every distinct host is
    RTT-probed once.  Returns the best-so-far curve.
    """
    if query_node not in can.nodes:
        raise KeyError(f"query node {query_node} not in the search CAN")
    src_host = can.nodes[query_node].host
    builder = _CurveBuilder(method="ers")
    visited = {query_node}
    frontier = deque([query_node])
    control = 0
    while frontier and builder._count < max_probes:
        # advance one ring
        next_frontier = deque()
        while frontier and builder._count < max_probes:
            node_id = frontier.popleft()
            for neighbor_id in sorted(can.nodes[node_id].neighbors):
                if neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                next_frontier.append(neighbor_id)
                control += 1
                host = can.nodes[neighbor_id].host
                if host != src_host:
                    builder.probe(network, src_host, host, category)
                    if builder._count >= max_probes:
                        break
        frontier = next_frontier
    return builder.build(control_messages=control)
