"""Figures 3-6: finding the physically nearest neighbor.

Setup (paper §4): a 2-dimensional CAN containing *all* nodes of the
topology, 15 random landmarks, and a set of random query nodes.  For
each query node, three searches look for its nearest neighbor:

* expanding-ring search (ERS) -- flood outward, probing everyone;
* landmark clustering alone -- the first point of the hybrid curve;
* the hybrid landmark+RTT search -- rank by landmark-vector distance,
  probe the top candidates.

The metric is *stretch*: latency to the node found over latency to
the true nearest node, averaged over queries, as a function of the
number of RTT measurements spent.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, bulk_vectors, current_scale, get_network
from repro.overlay import CanOverlay
from repro.proximity import expanding_ring_search, hybrid_search, select_landmarks
from repro.proximity.landmarks import LandmarkSpace


class NearestNeighborTestbed:
    """Everything the Figure 3-6 searches share for one topology."""

    def __init__(
        self,
        topology: str,
        latency: str = "generated",
        topo_scale: float = None,
        landmarks: int = 15,
        seed: int = 0,
    ):
        if topo_scale is None:
            topo_scale = current_scale().topo_scale
        self.network = get_network(topology, latency, topo_scale, seed)
        self.rng = np.random.default_rng(seed + 1)
        self.landmarks = select_landmarks(self.network, landmarks, self.rng)
        self.space = LandmarkSpace(self.landmarks)
        # the paper puts *all* topology nodes into the search CAN
        self.hosts = np.arange(self.network.num_nodes)
        self.vectors = bulk_vectors(self.network, self.landmarks, self.hosts)
        self._can = None
        self._coords = None

    @property
    def can(self) -> CanOverlay:
        """All-host CAN, built lazily (only ERS needs it)."""
        if self._can is None:
            self._can = CanOverlay(dims=2, rng=np.random.default_rng(17))
            for i, host in enumerate(self.hosts):
                self._can.join(int(i), int(host))
        return self._can

    @property
    def coords(self) -> np.ndarray:
        """GNP coordinates for every host (lazily embedded).

        The landmark RTTs were already measured for the vectors, so
        only the per-host solve runs here; the ranking is the
        'coordinate-based' related-work baseline."""
        if self._coords is None:
            from repro.proximity.coordinates import CoordinateSystem

            system = CoordinateSystem(dims=min(5, self.landmarks.count - 1))
            system.fit_landmarks(self.network, self.landmarks.hosts)
            self._coords = np.array(
                [system.solve_from_rtts(v) for v in self.vectors]
            )
        return self._coords

    def sample_queries(self, count: int) -> np.ndarray:
        return self.rng.choice(len(self.hosts), size=count, replace=False)

    def true_nearest_latency(self, query_index: int) -> float:
        """One-way latency to the true nearest distinct host."""
        host = int(self.hosts[query_index])
        lat = self.network.latencies_from(host)[self.hosts].astype(np.float64)
        lat[query_index] = np.inf
        # co-located hosts (zero latency) are legitimate nearest neighbors
        return float(lat.min())

    # -- searches ---------------------------------------------------------

    def hybrid_curve(self, query_index: int, budget: int, rank: str = "vector"):
        host = int(self.hosts[query_index])
        coordinates = self.coords if rank == "coordinates" else None
        query_coords = coordinates[query_index] if rank == "coordinates" else None
        return hybrid_search(
            self.network,
            host,
            self.vectors[query_index],
            self.hosts,
            self.vectors,
            budget=budget,
            rank=rank,
            landmark_space=self.space,
            rng=self.rng,
            coordinates=coordinates,
            query_coords=query_coords,
        )

    def ers_curve(self, query_index: int, budget: int):
        return expanding_ring_search(
            self.network, self.can, int(query_index), max_probes=budget
        )


def _stretch_rows(testbed, queries, budgets, curves, method: str) -> list:
    rows = []
    for budget in budgets:
        stretches = []
        for q, curve in zip(queries, curves):
            true_nn = testbed.true_nearest_latency(int(q))
            if true_nn <= 0:
                continue  # co-located true nearest: stretch undefined
            stretches.append(curve.stretch_after(budget, true_nn))
        stretches = [s for s in stretches if np.isfinite(s)]
        rows.append(
            {
                "method": method,
                "probes": budget,
                "mean_stretch": float(np.mean(stretches)) if stretches else float("nan"),
                "queries": len(stretches),
            }
        )
    return rows


def run(
    topology: str,
    latency: str = "generated",
    scale: Scale = None,
    seed: int = 0,
    methods: tuple = ("lmk+rtt", "ers"),
) -> list:
    """Rows: {"method", "probes", "mean_stretch"} for one topology.

    ``topology="tsk-large"`` reproduces Figures 3-4,
    ``topology="tsk-small"`` Figures 5-6.  The ``order`` method (the
    pure Topologically-Aware-CAN ranking) is available as an extra.
    """
    if scale is None:
        scale = current_scale()
    testbed = NearestNeighborTestbed(
        topology, latency, scale.topo_scale, seed=seed
    )
    queries = testbed.sample_queries(scale.nn_queries)
    rows = []
    if "lmk+rtt" in methods:
        budget = max(scale.hybrid_budgets)
        curves = [testbed.hybrid_curve(int(q), budget) for q in queries]
        rows += _stretch_rows(testbed, queries, scale.hybrid_budgets, curves, "lmk+rtt")
    if "order" in methods:
        budget = max(scale.hybrid_budgets)
        curves = [testbed.hybrid_curve(int(q), budget, rank="order") for q in queries]
        rows += _stretch_rows(
            testbed, queries, scale.hybrid_budgets, curves, "lmk-order"
        )
    if "gnp" in methods:
        budget = max(scale.hybrid_budgets)
        curves = [
            testbed.hybrid_curve(int(q), budget, rank="coordinates")
            for q in queries
        ]
        rows += _stretch_rows(testbed, queries, scale.hybrid_budgets, curves, "gnp")
    if "ers" in methods:
        budget = max(scale.ers_budgets)
        curves = [testbed.ers_curve(int(q), budget) for q in queries]
        rows += _stretch_rows(testbed, queries, scale.ers_budgets, curves, "ers")
    return rows
