"""Shared infrastructure for experiment runners.

Scale presets
-------------
``quick``
    CI-friendly: ~1k-node topologies, 192-node overlays, short probe
    sweeps.  Shapes (who wins, monotonicity, crossovers) already hold
    at this size.
``paper``
    Full reconstruction of the paper's setup: ~10k-node topologies,
    4096-node overlays, 2N route samples.  Select it with
    ``REPRO_SCALE=paper``.

Networks are memoised per (topology, latency, scale, seed) so a bench
suite touches each Dijkstra-heavy build once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.config import NetworkParams, make_network


@dataclass(frozen=True)
class Scale:
    """Sizing knobs shared by all experiment runners."""

    name: str
    topo_scale: float
    overlay_nodes: int
    #: overlay sizes for the Figure 14/15 N-sweep
    node_sweep: tuple
    #: N values for the Figure 2 hop-count sweep
    fig2_sweep: tuple
    #: CAN dimensionalities compared against eCAN in Figure 2
    fig2_dims: tuple
    route_samples: int
    #: nearest-neighbor queries per Figure 3-6 series
    nn_queries: int
    ers_budgets: tuple
    hybrid_budgets: tuple
    #: RTT-probe sweep for Figures 10-13
    rtt_sweep: tuple
    #: landmark-count series for Figures 10-13
    landmark_sweep: tuple
    #: condense-rate sweep for Figure 16
    condense_sweep: tuple
    #: churn events for the pub/sub ablation
    churn_events: int


SCALES = {
    "quick": Scale(
        name="quick",
        topo_scale=0.5,
        overlay_nodes=192,
        node_sweep=(48, 96, 192, 384),
        fig2_sweep=(64, 256, 1024),
        fig2_dims=(2, 3, 4),
        route_samples=384,
        nn_queries=24,
        ers_budgets=(10, 25, 50, 100, 200, 400),
        hybrid_budgets=(1, 2, 4, 8, 16, 32),
        rtt_sweep=(1, 2, 5, 10, 20),
        landmark_sweep=(5, 15),
        condense_sweep=(1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0),
        churn_events=60,
    ),
    # closer-to-paper numbers at workstation-friendly runtimes (~20 min
    # for the whole bench suite): full-size topologies, 1k overlays
    "medium": Scale(
        name="medium",
        topo_scale=1.0,
        overlay_nodes=1024,
        node_sweep=(128, 256, 512, 1024),
        fig2_sweep=(256, 1024, 4096, 16384),
        fig2_dims=(2, 3, 4, 5),
        route_samples=2048,
        nn_queries=50,
        ers_budgets=(10, 50, 100, 250, 500, 1000, 2000),
        hybrid_budgets=(1, 2, 5, 10, 20, 40, 80),
        rtt_sweep=(1, 2, 5, 10, 20, 40),
        landmark_sweep=(5, 15),
        condense_sweep=(1.0 / 1024, 1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0),
        churn_events=150,
    ),
    "paper": Scale(
        name="paper",
        topo_scale=1.0,
        overlay_nodes=4096,
        node_sweep=(512, 1024, 2048, 4096, 8192),
        fig2_sweep=(1024, 4096, 16384, 32768),
        fig2_dims=(2, 3, 4, 5),
        route_samples=8192,
        nn_queries=100,
        ers_budgets=(10, 50, 100, 250, 500, 1000, 2000),
        hybrid_budgets=(1, 2, 5, 10, 20, 40, 80),
        rtt_sweep=(1, 2, 5, 10, 20, 40),
        landmark_sweep=(5, 15, 30),
        condense_sweep=(1.0 / 1024, 1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0),
        churn_events=400,
    ),
}


def current_scale() -> Scale:
    """Scale preset selected by the ``REPRO_SCALE`` environment knob."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; known presets: {sorted(SCALES)}"
        ) from None


@lru_cache(maxsize=16)
def get_network(
    topology: str, latency: str, topo_scale: float, seed: int = 0
):
    """Memoised physical network (shared across runners in a process)."""
    return make_network(
        NetworkParams(
            topology=topology, latency=latency, topo_scale=topo_scale, seed=seed
        )
    )


def bulk_vectors(network, landmark_set, hosts, charge: bool = True) -> np.ndarray:
    """Landmark vectors for many hosts at once.

    Equivalent to per-host :func:`repro.proximity.landmarks.measure_vector`
    (RTT symmetry lets the Dijkstra run from the landmark side), but a
    single bulk computation.  Probe accounting stays faithful.
    """
    hosts = np.asarray(hosts, dtype=np.int64)
    rows = network.oracle.rows(landmark_set.hosts)  # (L, N) one-way
    if charge:
        network.stats.count("landmark_probe", len(hosts) * landmark_set.count)
    return 2.0 * rows[:, hosts].T.astype(np.float64)


def format_table(rows, columns=None, floatfmt: str = "{:.3f}") -> str:
    """Render rows as an aligned text table (bench output)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), max(len(line[i]) for line in table))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    )
    return f"{header}\n{rule}\n{body}"
