"""Figure 16: the map condense-rate trade-off.

The condense rate controls what fraction of a region hosts its map.
Squeezing the map onto fewer nodes piles more entries per node but
barely moves stretch -- the paper finds ~10 entries per node is
already enough, because landmark clustering concentrates records
anyway.  This runner sweeps the rate and reports both the entries-
per-node distribution (the dashed line) and routing stretch (the
solid line).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, current_scale
from repro.experiments.fig10_13_stretch_rtts import build_overlay


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
) -> list:
    """Rows: {"condense_rate", "entries_per_node_mean",
    "entries_per_node_max", "hosting_nodes", "mean_stretch"}."""
    if scale is None:
        scale = current_scale()
    num_nodes = scale.overlay_nodes
    samples = min(scale.route_samples, 2 * num_nodes)
    rows = []
    for rate in scale.condense_sweep:
        overlay = build_overlay(
            topology,
            latency,
            num_nodes,
            policy="softstate",
            topo_scale=scale.topo_scale,
            seed=seed,
            condense_rate=rate,
        )
        counts = overlay.store.entries_per_node()
        occupancy = np.array(list(counts.values()), dtype=np.float64)
        rng = np.random.default_rng(seed + 13)
        stretch = overlay.measure_stretch(samples=samples, rng=rng)
        rows.append(
            {
                "condense_rate": rate,
                "entries_per_node_mean": float(occupancy.mean()) if occupancy.size else 0.0,
                "entries_per_node_max": int(occupancy.max()) if occupancy.size else 0,
                "hosting_nodes": int(occupancy.size),
                "total_entries": overlay.store.total_entries(),
                "mean_stretch": float(stretch.mean()),
            }
        )
    return rows
