"""Join-cost scaling: the price of maintaining global soft-state.

The paper's §5.1 argues the overhead is acceptable: "each node will
appear in a maximum of log(N) such maps...  This, we believe, is not
a big issue."  This runner quantifies the claim: the message bill of
one join -- landmark probes, CAN join routing, soft-state publication
(log N maps x log N hops each), map lookups and RTT confirmation for
table construction -- as a function of overlay size, broken down by
category.

Expected shape: per-join cost grows polylogarithmically (dominated by
publish/lookup routes of O(log^2 N) total hops), not linearly.
"""

from __future__ import annotations

from repro.experiments.common import Scale, current_scale
from repro.experiments.fig10_13_stretch_rtts import build_overlay

#: categories that make up a join, in reporting order
JOIN_CATEGORIES = (
    "landmark_probe",
    "join_route",
    "join_update",
    "softstate_publish",
    "softstate_lookup",
    "neighbor_probe",
    "pubsub_subscribe",
)


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    probe_joins: int = 16,
) -> list:
    """Rows: per-join message counts by category at each overlay size."""
    if scale is None:
        scale = current_scale()
    rows = []
    for num_nodes in scale.node_sweep:
        overlay = build_overlay(
            topology,
            latency,
            num_nodes,
            policy="softstate",
            topo_scale=scale.topo_scale,
            seed=seed,
        )
        stats = overlay.network.stats
        before = stats.snapshot()
        for _ in range(probe_joins):
            overlay.add_node()
        delta = stats.delta(before)
        row = {"N": num_nodes}
        for category in JOIN_CATEGORIES:
            row[category] = delta.get(category, 0) / probe_joins
        row["total_per_join"] = sum(delta.values()) / probe_joins
        rows.append(row)
    return rows
