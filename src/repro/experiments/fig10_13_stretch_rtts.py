"""Figures 10-13: routing stretch vs. RTT budget and landmark count.

Four panels -- {tsk-large, tsk-small} x {generated, manual}
latencies -- each plotting mean routing stretch of a soft-state
overlay as the per-selection RTT budget grows, one series per
landmark count, plus the *optimal* line (oracle-closest neighbor,
i.e. an infinite RTT budget) and the random baseline.

The paper's observations this runner must reproduce:

* stretch falls with the RTT budget and approaches optimal;
* more landmarks help most with manually-set latencies and large
  transit backbones;
* tsk-small sits closer to optimal (suboptimal routes are cheap when
  the backbone is small).
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import TopologyAwareOverlay
from repro.core.config import OverlayParams
from repro.experiments.common import Scale, current_scale, get_network


def build_overlay(
    topology: str,
    latency: str,
    num_nodes: int,
    policy: str = "softstate",
    landmarks: int = 15,
    rtt_budget: int = 10,
    topo_scale: float = None,
    seed: int = 0,
    **overrides,
) -> TopologyAwareOverlay:
    """One fully built overlay for the given experiment cell."""
    if topo_scale is None:
        topo_scale = current_scale().topo_scale
    network = get_network(topology, latency, topo_scale, seed)
    params = OverlayParams(
        num_nodes=num_nodes,
        policy=policy,
        landmarks=landmarks,
        rtt_budget=rtt_budget,
        seed=seed + 101,
        **overrides,
    )
    overlay = TopologyAwareOverlay(network, params)
    overlay.build()
    return overlay


def _mean_stretch(overlay, samples: int, seed: int) -> float:
    rng = np.random.default_rng(seed + 7)
    stretch = overlay.measure_stretch(samples=samples, rng=rng)
    return float(stretch.mean()) if stretch.size else float("nan")


def run(
    topology: str,
    latency: str,
    scale: Scale = None,
    seed: int = 0,
    num_nodes: int = None,
) -> list:
    """Rows: {"landmarks", "rtt_probes", "mean_stretch"} plus the
    ``optimal`` and ``random`` reference rows (landmarks="optimal" /
    "random")."""
    if scale is None:
        scale = current_scale()
    if num_nodes is None:
        num_nodes = scale.overlay_nodes
    samples = min(scale.route_samples, 2 * num_nodes)
    rows = []
    for landmarks in scale.landmark_sweep:
        for budget in scale.rtt_sweep:
            overlay = build_overlay(
                topology,
                latency,
                num_nodes,
                policy="softstate",
                landmarks=landmarks,
                rtt_budget=budget,
                topo_scale=scale.topo_scale,
                seed=seed,
            )
            rows.append(
                {
                    "landmarks": landmarks,
                    "rtt_probes": budget,
                    "mean_stretch": _mean_stretch(overlay, samples, seed),
                }
            )
    for reference in ("optimal", "random"):
        overlay = build_overlay(
            topology,
            latency,
            num_nodes,
            policy=reference,
            topo_scale=scale.topo_scale,
            seed=seed,
        )
        rows.append(
            {
                "landmarks": reference,
                "rtt_probes": 0,
                "mean_stretch": _mean_stretch(overlay, samples, seed),
            }
        )
    return rows


def gap_breakdown(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
) -> dict:
    """§5.4: split total stretch into the two performance gaps.

    * gap 1 (structure): optimal-policy stretch minus 1 -- the price
      of the overlay's prefix constraint even with perfect proximity;
    * gap 2 (information): soft-state stretch minus optimal -- the
      price of imperfect proximity generation;
    * headroom: random-policy stretch, for reference.
    """
    if scale is None:
        scale = current_scale()
    num_nodes = scale.overlay_nodes
    samples = min(scale.route_samples, 2 * num_nodes)
    values = {}
    for policy in ("optimal", "softstate", "random"):
        overlay = build_overlay(
            topology,
            latency,
            num_nodes,
            policy=policy,
            topo_scale=scale.topo_scale,
            seed=seed,
        )
        values[policy] = _mean_stretch(overlay, samples, seed)
    return {
        "topology": topology,
        "latency": latency,
        "shortest_path": 1.0,
        "optimal_stretch": values["optimal"],
        "softstate_stretch": values["softstate"],
        "random_stretch": values["random"],
        "structural_gap": values["optimal"] - 1.0,
        "information_gap": values["softstate"] - values["optimal"],
        "softstate_vs_random_saving": 1.0 - values["softstate"] / values["random"],
    }
