"""Assemble EXPERIMENTS.md from the benchmark outputs.

Each figure bench writes its regenerated series to
``benchmarks/out/<name>.txt``; this module pairs those files with the
paper's expected result and a measured-vs-paper verdict, and renders
the whole thing as EXPERIMENTS.md.

Usage::

    pytest benchmarks/ --benchmark-only      # produce benchmarks/out/*
    python -m repro.experiments.report       # rewrite EXPERIMENTS.md
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
#: table source; point REPRO_BENCH_DIR at benchmarks/results_medium to
#: rebuild EXPERIMENTS.md from the archived medium-scale run
OUT_DIR = pathlib.Path(
    os.environ.get("REPRO_BENCH_DIR", REPO_ROOT / "benchmarks" / "out")
)
TARGET = REPO_ROOT / "EXPERIMENTS.md"


@dataclass(frozen=True)
class FigureReport:
    exp_id: str
    title: str
    out_files: tuple
    paper_says: str
    we_measure: str
    bench: str


REPORTS = [
    FigureReport(
        exp_id="Figure 2",
        title="eCAN vs CAN logical hops",
        out_files=("fig02_hops",),
        paper_says=(
            "A 2-d eCAN ('EXP') reaches O(log N) hops and outperforms basic "
            "CAN up to dimensionality 5 across N = 1K..128K (digits partially "
            "recovered from the OCR: the x-axis ends at 128K)."
        ),
        we_measure=(
            "At medium scale (N up to 16384): eCAN d=2 grows ~log N (3.1 -> "
            "5.5 mean hops) while CAN d=2 grows ~sqrt(N) (6.8 -> 50.7); even "
            "CAN d=5 (7.6 at 16K) loses to eCAN at every size.  Shape, "
            "who-wins and growth orders all match the paper."
        ),
        bench="benchmarks/bench_fig02_hops.py",
    ),
    FigureReport(
        exp_id="Figure 3",
        title="Hybrid landmark+RTT vs expanding-ring search, tsk-large",
        out_files=("fig03_nn_compare",),
        paper_says=(
            "ERS is not effective unless thousands of nodes are probed; "
            "landmark clustering alone (the first lmk+rtt point) is poor; the "
            "hybrid locates the nearest node with high probability after a "
            "moderate number of RTT measurements (tens)."
        ),
        we_measure=(
            "At medium scale lmk+rtt falls from 6.7x (1 probe = landmark-"
            "only) to 1.00 at 80 probes; ERS is still 2.2x after 2000 probes "
            "('thousands needed', as the paper says).  The landmark-ordering "
            "baseline (18.8x at 1 probe, 2.9x at 80) is far worse than "
            "vector ranking, matching the paper's critique; the GNP "
            "coordinate ranking (extra series) tracks vector ranking on "
            "this substrate."
        ),
        bench="benchmarks/bench_fig03_nn_compare.py",
    ),
    FigureReport(
        exp_id="Figure 4",
        title="ERS alone, tsk-large",
        out_files=("fig04_ers_large",),
        paper_says=(
            "Expanding-ring search needs a large number (thousands) of probed "
            "nodes to approach the true nearest neighbor on the sparse-stub "
            "topology."
        ),
        we_measure=(
            "Monotone but very slow decay; at the largest budget the stretch "
            "is still well above ideal (>2x at quick scale, consistent with "
            "the paper's 'thousands needed' at 10k nodes)."
        ),
        bench="benchmarks/bench_fig04_ers_large.py",
    ),
    FigureReport(
        exp_id="Figure 5",
        title="Hybrid search, tsk-small",
        out_files=("fig05_hybrid_small",),
        paper_says=(
            "Dense edge networks are harder: the hybrid needs to test on the "
            "order of a hundred nodes to get close to ideal, because "
            "landmarks cannot differentiate nodes within nearby stubs, but "
            "accuracy improves quickly with the RTT budget."
        ),
        we_measure=(
            "Same shape: stretch falls monotonically (5.0x at 1 probe, "
            "1.85x at 20, 1.26x at 80) -- the hybrid must 'test about a "
            "hundred nodes' for near-ideal results on dense stubs, exactly "
            "the paper's observation; convergence is slower than tsk-large "
            "at matched budgets."
        ),
        bench="benchmarks/bench_fig05_hybrid_small.py",
    ),
    FigureReport(
        exp_id="Figure 6",
        title="ERS alone, tsk-small",
        out_files=("fig06_ers_small",),
        paper_says="Blind flooding on the dense-stub topology; same story as Figure 4.",
        we_measure=(
            "Monotone decay; absolute stretch lower than tsk-large (rings "
            "contain genuinely close nodes in dense stubs) but convergence "
            "still takes orders of magnitude more probes than the hybrid."
        ),
        bench="benchmarks/bench_fig06_ers_small.py",
    ),
    FigureReport(
        exp_id="Figures 10-13",
        title="Routing stretch vs RTT budget and landmark count (4 panels)",
        out_files=(
            "fig10_stretch_vs_rtts",
            "fig11_stretch_vs_rtts",
            "fig12_stretch_vs_rtts",
            "fig13_stretch_vs_rtts",
        ),
        paper_says=(
            "Stretch falls with the number of RTT measurements and approaches "
            "the optimal line; increasing landmarks helps more with manually "
            "set latencies and large transits; tsk-small sits closer to "
            "optimal because suboptimal routes are cheap there. Landmark "
            "series reconstructed as {5, 15} (digits stripped)."
        ),
        we_measure=(
            "All four panels show soft-state sandwiched between random "
            "(~1.9x worse) and optimal, converging onto the optimal line as "
            "the budget grows (tsk-large manual: 3.67 at 1 probe -> 3.53 at "
            "10+, optimal 3.52); 15 landmarks edge out 5, most visibly on "
            "manual latencies; tsk-small sits closest to optimal -- the "
            "paper's 'closer to optimal for small transit'."
        ),
        bench="benchmarks/bench_fig10_13_stretch_vs_rtts.py",
    ),
    FigureReport(
        exp_id="Figures 14-15",
        title="Routing stretch vs overlay size, soft-state vs random",
        out_files=("fig14_stretch_vs_nodes", "fig15_stretch_vs_nodes"),
        paper_says=(
            "With 15 landmarks and 10 RTTs, global state improves stretch by "
            "a stable margin over random selection at every size (the '~%' "
            "improvement lost to OCR; tens of percent); the improvement is "
            "more significant for small-transit/large-stub topologies, and "
            "more prominent with manual latencies."
        ),
        we_measure=(
            "Soft-state wins at every (topology, N) cell, cutting mean "
            "stretch 47-60% (e.g. 3.9 vs 8.8 on tsk-large at N=1024, 4.2 vs "
            "10.6 on tsk-small); the relative win on tsk-small is slightly "
            "larger at the top sizes and the curves are roughly flat in N, "
            "as the paper observes."
        ),
        bench="benchmarks/bench_fig14_15_stretch_vs_nodes.py",
    ),
    FigureReport(
        exp_id="Figure 16",
        title="Map condense rate: entries/node vs stretch",
        out_files=("fig16_condense_rate",),
        paper_says=(
            "As long as there are about 10 entries on each hosting node the "
            "performance impact of condensing is negligible; landmark "
            "clustering concentrates records regardless, so the map must be "
            "spread (rate toward 1) to cut entries per node."
        ),
        we_measure=(
            "Condensing from rate 1 to 1/1024 shrinks the hosting set and "
            "raises mean entries/node (5.0 -> 6.5, max 43 -> 348) while "
            "mean stretch moves <20% across the sweep (3.6-4.3) -- flat, as "
            "the paper claims, with ~6 entries/node already sufficient.  "
            "The max-entries column is the landmark-clustering hot-spot the "
            "paper warns about (its reason for enlarging maps)."
        ),
        bench="benchmarks/bench_fig16_condense_rate.py",
    ),
    FigureReport(
        exp_id="S1 claim",
        title="Topologically-Aware CAN imbalance",
        out_files=("intro_tacan_imbalance",),
        paper_says=(
            "For a typical 10,000-node Topologically-Aware CAN, ~10% of nodes "
            "can occupy 80-98% of the Cartesian space, and some nodes "
            "maintain 20-30 neighbors (digits restored per DESIGN.md)."
        ),
        we_measure=(
            "At N=1024 the ordering-constrained layout needs only 13% of "
            "nodes to cover 80% of the space versus 58% for a uniform CAN "
            "(and 56% for 98%), with a heavier neighbor tail and 8x the "
            "uniform layout's max zone-volume ratio.  The paper's ~10% at "
            "10k nodes is right on this trend line."
        ),
        bench="benchmarks/bench_intro_tacan_imbalance.py",
    ),
    FigureReport(
        exp_id="S5.4",
        title="Two-gap breakdown of overlay stretch",
        out_files=("gap_breakdown_tsk-large", "gap_breakdown_tsk-small"),
        paper_says=(
            "Gap 1: meeting the prefix constraint costs tens of percent over "
            "shortest path even with perfect proximity. Gap 2: imperfect "
            "proximity generation adds a second, smaller gap; the technique "
            "cuts a large share of the random baseline's latency and "
            "approaches optimal for small backbones."
        ),
        we_measure=(
            "Structural gap ~2.1 (optimal stretch 3.1) on tsk-large/manual "
            "at quick scale -- the prefix constraint dominates; information "
            "gap is small (0.07), i.e. landmark+RTT nearly closes gap 2, and "
            "soft-state saves ~58% vs random. On tsk-small the optimal and "
            "soft-state lines almost coincide, as the paper predicts."
        ),
        bench="benchmarks/bench_gap_breakdown.py",
    ),
    FigureReport(
        exp_id="S5.2",
        title="Publish/subscribe vs periodic polling (ablation)",
        out_files=("pubsub_vs_polling",),
        paper_says=(
            "Re-selection 'ideally should be conducted in a demand-driven "
            "fashion'; gossip/polling 'may require extensive message "
            "exchanges to achieve reasonable accuracy'. No figure in the "
            "paper -- this ablation quantifies the design argument."
        ),
        we_measure=(
            "Under a join wave, pub/sub reaches within ~15% of polling-grade "
            "stretch for ~3.5x fewer maintenance messages; letting tables go "
            "stale ('none') costs ~2x stretch."
        ),
        bench="benchmarks/bench_pubsub_vs_polling.py",
    ),
    FigureReport(
        exp_id="S6",
        title="Load-aware neighbor selection (extension)",
        out_files=("qos_load_tradeoff",),
        paper_says=(
            "Nodes publish capacity/load with their proximity records and "
            "'trade off network distance with forwarding capacity and "
            "current load'; a full treatment is in a companion report, so "
            "the paper gives no figure."
        ),
        we_measure=(
            "Scoring candidates by RTT x (1 + w x utilization) lowers p99 "
            "relay utilization across seeds at a <5% stretch cost; the "
            "single hottest relay is often a default CAN hop the expressway "
            "policy cannot avoid."
        ),
        bench="benchmarks/bench_qos_load.py",
    ),
    FigureReport(
        exp_id="Generality",
        title="The technique on Chord and Pastry (extensions)",
        out_files=("ext_chord_generality", "ext_pastry_generality"),
        paper_says=(
            "'The techniques are generic for overlay networks such as "
            "Pastry, Chord, and eCAN, where there exists flexibility in "
            "selecting routing neighbors'; the appendix gives the mapping "
            "(landmark number as storage key on Chord, nodeId prefixes as "
            "regions on Pastry).  No figures in the paper."
        ),
        we_measure=(
            "Both ports show the same ordering as eCAN: soft-state matches "
            "the oracle and beats random neighbor choice.  The margin is "
            "dramatic on Pastry (~5x, base-4 prefix routing gives many "
            "high-choice hops) and modest on Chord (~1.4x, a binary ring "
            "spends more hops in low-choice terminal intervals) -- "
            "consistent with the known dependence of proximity selection "
            "on prefix base."
        ),
        bench="benchmarks/bench_ext_chord_generality.py / bench_ext_pastry_generality.py",
    ),
    FigureReport(
        exp_id="S5.4 refinements",
        title="Landmark groups / hierarchical landmarks / SVD (extensions)",
        out_files=("ext_ranking_refinements",),
        paper_says=(
            "Three sketched optimizations to shrink the second gap: join "
            "positions from landmark groups to reduce false clustering, "
            "hierarchical (global + localized) landmark spaces, and SVD "
            "over many landmarks to suppress measurement noise."
        ),
        we_measure=(
            "Under per-probe measurement jitter, group-joined ranking "
            "helps at probe budget 1 and SVD helps at larger budgets, but "
            "all effects are modest: a handful of RTT probes already "
            "forgives most ranking error.  That is the paper's own hybrid "
            "insight, and why it relegates these techniques to future "
            "work on the (small) second gap."
        ),
        bench="benchmarks/bench_ext_ranking_refinements.py",
    ),
    FigureReport(
        exp_id="Placement",
        title="Landmark placement strategies (extension)",
        out_files=("ext_landmark_placement",),
        paper_says=(
            "Landmarks are simply 'randomly scattered in the Internet'; "
            "the binning literature sometimes argues for well-separated or "
            "infrastructure-hosted landmarks."
        ),
        we_measure=(
            "Random, backbone-hosted and greedy max-min-separated "
            "placements land in the same quality band once a few RTT "
            "probes are in the loop -- placement is second-order, "
            "validating the paper's untuned choice."
        ),
        bench="benchmarks/bench_ext_landmark_placement.py",
    ),
    FigureReport(
        exp_id="S5.1 cost",
        title="Per-join message bill of maintaining global state (extension)",
        out_files=("ext_join_cost",),
        paper_says=(
            "'Each node will appear in a maximum of log(N) such maps ... "
            "this, we believe, is not a big issue.'  No figure."
        ),
        we_measure=(
            "The itemized per-join bill (landmark probes + join routing + "
            "publication + map lookups + RTT confirmation) grows ~2x while "
            "the overlay grows 8x -- clearly polylogarithmic; RTT "
            "confirmation probes dominate, exactly the knob Figures 10-13 "
            "sweep."
        ),
        bench="benchmarks/bench_ext_join_cost.py",
    ),
    FigureReport(
        exp_id="S5.2 policies",
        title="Maintenance-policy spectrum under churn (extension)",
        out_files=("ext_churn_policies",),
        paper_says=(
            "Three sketched points on the laziness spectrum: reactive "
            "deletion on failed use, periodic polling by map owners, "
            "proactive deregistration at departure.  No figure."
        ),
        we_measure=(
            "Under mostly-ungraceful churn: reactive keeps the maps "
            "cleanest for free, periodic buys cleanliness with ping "
            "traffic, proactive only covers the graceful minority.  Final "
            "stretch is policy-insensitive -- stale records cost wasted "
            "probes, not route quality, because the hybrid RTT-confirms "
            "candidates before installing them."
        ),
        bench="benchmarks/bench_ext_churn_policies.py",
    ),
    FigureReport(
        exp_id="Fault tolerance",
        title="Mass simultaneous crashes with lazy repair (extension)",
        out_files=("ext_failure_resilience",),
        paper_says=(
            "'We choose a 2-dimensional eCAN to give a reasonable "
            "fault-tolerance capability.'  No figure."
        ),
        we_measure=(
            "With up to half the members crashing at once, routing success "
            "stays at 100% (the CAN invariant keeps every key owned and "
            "greedy + lazy repair always completes); stretch degrades only "
            "mildly and repair traffic scales with the crash fraction."
        ),
        bench="benchmarks/bench_ext_failure_resilience.py",
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Regenerate everything with:

```bash
pytest benchmarks/ --benchmark-only                     # quick scale (default)
REPRO_SCALE=medium pytest benchmarks/ --benchmark-only  # the scale shown below
python -m repro report                                  # rewrite this file from benchmarks/out/
REPRO_BENCH_DIR=benchmarks/results_medium python -m repro report  # from the archive
```

The OCR of the paper available to this reproduction stripped nearly all
digits; DESIGN.md documents every reconstructed parameter (topologies
~10k nodes, 4096-node overlays, 15 landmarks, 10 RTT probes, manual
latencies 100/20/5.5/1 ms). Absolute numbers therefore cannot be
compared digit-for-digit; the reproduction target is the *shape* of
each result -- who wins, by what factor class, and how curves move with
each parameter.

Scales: `quick` (default; ~1k-node topologies, 192-256-node overlays,
~2 min for the whole suite), `medium` (full ~10k-node topologies,
1024-node overlays, ~30 min) and `paper` (4096-node overlays, 2N route
samples). The tables below are whatever run last populated
`benchmarks/out/` -- the scale is printed in each table's title line.
A `medium` archive is kept in `benchmarks/results_medium/`.
"""


def render() -> str:
    """EXPERIMENTS.md content assembled from reports + bench outputs."""
    parts = [HEADER]
    for report in REPORTS:
        parts.append(f"\n## {report.exp_id}: {report.title}\n")
        parts.append(f"**Paper says.** {report.paper_says}\n")
        parts.append(f"**We measure.** {report.we_measure}\n")
        parts.append(f"**Bench.** `{report.bench}`\n")
        for name in report.out_files:
            path = OUT_DIR / f"{name}.txt"
            if path.exists():
                parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
            else:
                parts.append(
                    f"*(run the bench to produce `benchmarks/out/{name}.txt`)*\n"
                )
    return "\n".join(parts)


def main() -> None:
    """Rewrite EXPERIMENTS.md in place."""
    TARGET.write_text(render())
    print(f"wrote {TARGET}")


if __name__ == "__main__":
    main()
