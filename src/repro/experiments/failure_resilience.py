"""Failure resilience: routing through a partially crashed overlay.

The paper picks a 2-dimensional eCAN "to give a reasonable
fault-tolerance capability".  This runner quantifies the resilience
that dimensionality (plus lazy table repair) buys: a fraction of
nodes crash simultaneously -- no graceful departure, no CAN takeover,
just dead expressway entries and dead soft-state records -- and the
survivors keep routing, repairing stale entries on the fly.

Crashes are modelled by removing the nodes through the normal CAN
takeover (zones must stay covered for keys to remain owned -- the CAN
invariant) while *not* withdrawing their soft-state or notifying
anyone: every routing table and map still references them, so every
path through a dead reference must detect and repair.

Reported per crash fraction: routing success rate, mean stretch of
the survivors, and repair traffic.

:func:`run_fault_injection` goes further: instead of a one-shot mass
crash against a perfect network, a :class:`FaultPlan` injects
continuous probe/message loss and the sweep compares the
fire-and-forget baseline against the full reliability stack
(per-hop retries with sim-clock backoff, dead-expressway skipping,
greedy degradation, N-confirmation maintenance probing).

:func:`run_recovery_policies` compares the lazy-repair-only stack
against the active self-healing stack (failure detection, crash
takeover, map replication, partition-heal reconciliation) under the
same chaos scenario, reporting completion rate, stretch and the
recovery traffic each policy pays.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import OverlayParams, RetryPolicy, TopologyAwareOverlay
from repro.core.recovery import RECOVERY_CATEGORIES, check_invariants
from repro.core.reliability import NO_RETRY
from repro.experiments.common import Scale, current_scale, get_network
from repro.experiments.fig10_13_stretch_rtts import build_overlay
from repro.netsim.faults import FaultPlan, Partition
from repro.softstate.maintenance import MaintenancePolicy


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    crash_fractions: tuple = (0.0, 0.1, 0.25, 0.5),
    probes: int = 128,
) -> list:
    """Rows: {"crash_fraction", "success_rate", "mean_stretch",
    "table_repairs", "stale_records"}."""
    if scale is None:
        scale = current_scale()
    rows = []
    for fraction in crash_fractions:
        overlay = build_overlay(
            topology,
            latency,
            scale.overlay_nodes,
            policy="softstate",
            topo_scale=scale.topo_scale,
            seed=seed,
        )
        rng = np.random.default_rng(seed + 91)
        victims = rng.choice(
            overlay.node_ids,
            size=int(fraction * len(overlay)),
            replace=False,
        )
        for victim in victims:
            # crash: zones hand over (CAN takeover), but soft-state and
            # other nodes' tables are left stale
            overlay.ecan.leave(int(victim))

        stats = overlay.network.stats
        repairs_before = stats.get("table_repair")
        survivors = np.array(overlay.node_ids)
        successes, stretches = 0, []
        for _ in range(probes):
            src, dst = rng.choice(survivors, size=2, replace=False)
            result, stretch = overlay.route_between(int(src), int(dst))
            if result.success:
                successes += 1
                if stretch is not None:
                    stretches.append(stretch)
        rows.append(
            {
                "crash_fraction": fraction,
                "success_rate": successes / probes,
                "mean_stretch": float(np.mean(stretches)) if stretches else None,
                "table_repairs": stats.get("table_repair") - repairs_before,
                "stale_records": overlay.maintenance.stale_entries(),
            }
        )
    return rows


#: the reliability stack the "retry" arm of the sweep enables
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=25.0, max_delay=400.0)


def run_fault_injection(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    loss_rates: tuple = (0.0, 0.05, 0.1, 0.2),
    probes: int = 128,
    crash_fraction: float = 0.1,
    max_sweeps: int = 20,
) -> list:
    """Sweep loss rate x retry policy under an armed fault plan.

    For each cell an overlay is built on a perfect network, then a
    :class:`FaultPlan` with symmetric probe/message loss is armed and
    three phases run:

    1. **routing** -- ``probes`` random routes; reports success rate,
       mean stretch, resend attempts and expressway degradations;
    2. **maintenance under loss** -- one periodic sweep over a fully
       live overlay; reports false-positive purges (the baseline arm
       polls with one unconfirmed fire-and-forget ping, the retry arm
       with N-confirmation probing);
    3. **crash recovery** -- ``crash_fraction`` of members crash-stop
       and periodic sweeps run until every stale record is purged;
       reports the simulated ms until the state converged.

    Rows: {"loss_rate", "policy", "success_rate", "mean_stretch",
    "retries", "degraded", "false_purges", "recovery_ms",
    "injected_faults"}.
    """
    if scale is None:
        scale = current_scale()
    rows = []
    for loss in loss_rates:
        for policy_name, retry in (("none", None), ("retry", DEFAULT_RETRY)):
            network = get_network(topology, latency, scale.topo_scale, seed)
            overlay = TopologyAwareOverlay(
                network,
                OverlayParams(
                    num_nodes=scale.overlay_nodes, policy="softstate", seed=seed + 101
                ),
                retry_policy=retry,
            )
            overlay.build()
            injector = overlay.arm_faults(
                FaultPlan().with_loss(loss), seed=seed + 17
            )
            try:
                rng = np.random.default_rng(seed + 91)
                ids = np.array(overlay.node_ids)
                successes, stretches, resends, degradations = 0, [], 0, 0
                with network.telemetry.phase("fault_routing"):
                    for _ in range(probes):
                        src, dst = rng.choice(ids, size=2, replace=False)
                        result, stretch = overlay.route_between(int(src), int(dst))
                        resends += result.retries
                        degradations += result.degraded
                        if result.success:
                            successes += 1
                            if stretch is not None:
                                stretches.append(stretch)

                # one periodic sweep over a fully live overlay: every purge
                # is a false positive by construction
                overlay.maintenance.policy = MaintenancePolicy.PERIODIC
                if retry is None:
                    overlay.maintenance.retry_policy = NO_RETRY
                    overlay.maintenance.confirmations = 1
                overlay.maintenance.poll_once()
                false_purges = overlay.maintenance.false_purges

                # crash-stop a fraction and measure time-to-clean-state
                start = network.clock.now
                with network.telemetry.phase("fault_recovery"):
                    victims = rng.choice(
                        overlay.node_ids,
                        size=int(crash_fraction * len(overlay)),
                        replace=False,
                    )
                    for victim in victims:
                        overlay.remove_node(int(victim), graceful=False)
                    sweeps = 0
                    while (
                        overlay.maintenance.stale_entries() > 0
                        and sweeps < max_sweeps
                    ):
                        network.clock.advance(overlay.maintenance.poll_interval)
                        overlay.maintenance.poll_once()
                        sweeps += 1
                recovered = overlay.maintenance.stale_entries() == 0
                recovery_ms = network.clock.now - start if recovered else math.inf

                rows.append(
                    {
                        "loss_rate": loss,
                        "policy": policy_name,
                        "success_rate": successes / probes,
                        "mean_stretch": float(np.mean(stretches))
                        if stretches
                        else None,
                        "retries": resends,
                        "degraded": degradations,
                        "false_purges": false_purges,
                        "recovery_ms": recovery_ms,
                        "injected_faults": injector.injected_total(),
                    }
                )
            finally:
                overlay.disarm_faults()
    return rows


def run_recovery_policies(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    crash_fraction: float = 0.2,
    probe_loss: float = 0.1,
    probes: int = 128,
    replication_factor: int = 2,
    settle_ms: float = 20000.0,
    partition_window: tuple = (4000.0, 9000.0),
) -> list:
    """Lazy-repair-only vs active recovery under the same chaos.

    Both arms face the identical scenario: ``crash_fraction`` of the
    members crash-stop simultaneously (no takeover -- their zones are
    orphaned, their soft-state stale), one transit domain is
    partitioned off for ``partition_window`` (relative ms), and every
    probe suffers ``probe_loss``.  The **lazy** arm repairs only on
    use, as the pre-recovery stack did: periodic maintenance purges
    stale records and routing fixes dead expressway entries when it
    trips over them, but nobody absorbs the orphaned zones.  The
    **active** arm arms the full self-healing stack
    (:meth:`TopologyAwareOverlay.enable_recovery` + map replication).

    Rows: {"policy", "completion_rate", "mean_stretch",
    "recovery_traffic", "false_kills", "invariants_ok",
    "stale_records", "confirmed_dead"}.
    """
    if scale is None:
        scale = current_scale()
    traffic_categories = RECOVERY_CATEGORIES + ("table_repair", "maintenance_ping")
    rows = []
    for policy_name in ("lazy", "active"):
        active = policy_name == "active"
        network = get_network(topology, latency, scale.topo_scale, seed)
        overlay = TopologyAwareOverlay(
            network,
            OverlayParams(
                num_nodes=scale.overlay_nodes,
                policy="softstate",
                replication_factor=replication_factor if active else 1,
                seed=seed + 101,
            ),
            maintenance_policy=MaintenancePolicy.PERIODIC,
            retry_policy=DEFAULT_RETRY,
        )
        overlay.build()
        now = network.clock.now
        plan = FaultPlan(
            probe_loss_rate=probe_loss,
            partitions=(
                Partition(
                    now + partition_window[0], now + partition_window[1], (0,)
                ),
            ),
        )
        injector = overlay.arm_faults(plan, seed=seed + 17)
        if active:
            overlay.enable_recovery()
        try:
            rng = np.random.default_rng(seed + 91)
            victims = rng.choice(
                overlay.node_ids,
                size=int(crash_fraction * len(overlay)),
                replace=False,
            )
            before = {c: network.stats.get(c) for c in traffic_categories}
            for victim in victims:
                overlay.crash_node(int(victim))
            network.clock.run_until(now + settle_ms)
            # a bounded number of maintenance sweeps after the settle
            # window: purges whatever went stale, re-publishes whatever
            # was lost (one sweep's confirmation backoffs advance the
            # shared clock, so sweeps are driven explicitly rather than
            # racing a periodic timer against the detector)
            for _ in range(3):
                network.clock.advance(overlay.maintenance.poll_interval)
                overlay.maintenance.poll_once()
            traffic = sum(
                network.stats.get(c) - before[c] for c in traffic_categories
            )
            try:
                check_invariants(overlay, overlay.detector)
                invariants_ok = True
            except AssertionError:
                invariants_ok = False

            corpses = set(int(v) for v in victims)
            survivors = np.array(
                [n for n in overlay.node_ids if n not in corpses]
            )
            successes, stretches = 0, []
            for _ in range(probes):
                src, dst = rng.choice(survivors, size=2, replace=False)
                result, stretch = overlay.route_between(int(src), int(dst))
                if result.success and result.owner not in corpses:
                    successes += 1
                    if stretch is not None:
                        stretches.append(stretch)
            detector = overlay.detector
            rows.append(
                {
                    "policy": policy_name,
                    "completion_rate": successes / probes,
                    "mean_stretch": float(np.mean(stretches))
                    if stretches
                    else None,
                    "recovery_traffic": traffic,
                    "false_kills": 0 if detector is None else detector.false_kills,
                    "invariants_ok": invariants_ok,
                    "stale_records": overlay.maintenance.stale_entries(),
                    "confirmed_dead": 0
                    if detector is None
                    else len(detector.confirmed_dead),
                    "injected_faults": injector.injected_total(),
                }
            )
        finally:
            overlay.disable_recovery()
            overlay.disarm_faults()
    return rows
