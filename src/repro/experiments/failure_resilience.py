"""Failure resilience: routing through a partially crashed overlay.

The paper picks a 2-dimensional eCAN "to give a reasonable
fault-tolerance capability".  This runner quantifies the resilience
that dimensionality (plus lazy table repair) buys: a fraction of
nodes crash simultaneously -- no graceful departure, no CAN takeover,
just dead expressway entries and dead soft-state records -- and the
survivors keep routing, repairing stale entries on the fly.

Crashes are modelled by removing the nodes through the normal CAN
takeover (zones must stay covered for keys to remain owned -- the CAN
invariant) while *not* withdrawing their soft-state or notifying
anyone: every routing table and map still references them, so every
path through a dead reference must detect and repair.

Reported per crash fraction: routing success rate, mean stretch of
the survivors, and repair traffic.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, current_scale
from repro.experiments.fig10_13_stretch_rtts import build_overlay


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    crash_fractions: tuple = (0.0, 0.1, 0.25, 0.5),
    probes: int = 128,
) -> list:
    """Rows: {"crash_fraction", "success_rate", "mean_stretch",
    "table_repairs", "stale_records"}."""
    if scale is None:
        scale = current_scale()
    rows = []
    for fraction in crash_fractions:
        overlay = build_overlay(
            topology,
            latency,
            scale.overlay_nodes,
            policy="softstate",
            topo_scale=scale.topo_scale,
            seed=seed,
        )
        rng = np.random.default_rng(seed + 91)
        victims = rng.choice(
            overlay.node_ids,
            size=int(fraction * len(overlay)),
            replace=False,
        )
        for victim in victims:
            # crash: zones hand over (CAN takeover), but soft-state and
            # other nodes' tables are left stale
            overlay.ecan.leave(int(victim))

        stats = overlay.network.stats
        repairs_before = stats.get("table_repair")
        survivors = np.array(overlay.node_ids)
        successes, stretches = 0, []
        for _ in range(probes):
            src, dst = rng.choice(survivors, size=2, replace=False)
            result, stretch = overlay.route_between(int(src), int(dst))
            if result.success:
                successes += 1
                if stretch is not None:
                    stretches.append(stretch)
        rows.append(
            {
                "crash_fraction": fraction,
                "success_rate": successes / probes,
                "mean_stretch": float(np.mean(stretches)) if stretches else None,
                "table_repairs": stats.get("table_repair") - repairs_before,
                "stale_records": overlay.maintenance.stale_entries(),
            }
        )
    return rows
