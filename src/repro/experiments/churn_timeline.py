"""Churn timelines under the three maintenance policies.

§5.2: "The global state can be lazily maintained.  In the most
reactive case, departed nodes are deleted ... only when they are
selected as routing neighbor replacements and later found
un-reachable.  Alternatively, each owner of the map information can
periodically poll the liveliness of the nodes.  The most proactive
measure is to update the map when a node is about to depart."

This runner subjects identical overlays to the same churn trace under
each policy (with ungraceful departures so the policies actually
differ) and samples routing stretch, stale map entries and message
spend over time.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import TopologyAwareOverlay
from repro.core.churn import ChurnDriver, poisson_churn
from repro.core.config import OverlayParams
from repro.experiments.common import Scale, current_scale, get_network
from repro.softstate.maintenance import MaintenancePolicy


def run_policy(
    policy: MaintenancePolicy,
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    graceful_fraction: float = 0.2,
    poll_interval: float = 20.0,
) -> dict:
    """One churn run; returns the timeline plus end-state summary."""
    if scale is None:
        scale = current_scale()
    network = get_network(topology, latency, scale.topo_scale, seed)
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(
            num_nodes=scale.overlay_nodes, policy="softstate", seed=seed + 71
        ),
        maintenance_policy=policy,
    )
    overlay.build()
    overlay.maintenance.poll_interval = poll_interval
    overlay.maintenance.start()

    rng = np.random.default_rng(seed + 73)
    duration = 120.0
    rate = scale.churn_events / duration / 2
    events = poisson_churn(rng, duration, join_rate=rate, leave_rate=rate)
    driver = ChurnDriver(
        overlay, rng=rng, graceful_fraction=graceful_fraction,
        min_nodes=max(8, scale.overlay_nodes // 4),
    )
    stats = overlay.network.stats
    before = stats.snapshot()
    timeline = driver.run(
        events, measure_every=max(1, len(events) // 4), stretch_samples=48
    )
    overlay.maintenance.stop()
    delta = stats.delta(before)
    return {
        "policy": policy.value,
        "timeline": timeline,
        "final_stretch": timeline[-1]["mean_stretch"],
        "final_stale_entries": timeline[-1]["stale_entries"],
        "churn_messages": sum(delta.values()),
        "maintenance_pings": delta.get("maintenance_ping", 0),
        "wasted_probes": delta.get("neighbor_probe_failed", 0),
    }


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
) -> list:
    """Summary rows for the three §5.2 policies under identical churn."""
    rows = []
    for policy in (
        MaintenancePolicy.REACTIVE,
        MaintenancePolicy.PERIODIC,
        MaintenancePolicy.PROACTIVE,
    ):
        result = run_policy(policy, topology, latency, scale, seed)
        rows.append(
            {
                "policy": result["policy"],
                "final_stretch": result["final_stretch"],
                "stale_entries": result["final_stale_entries"],
                "churn_messages": result["churn_messages"],
                "maintenance_pings": result["maintenance_pings"],
                "wasted_probes": result["wasted_probes"],
            }
        )
    return rows
