"""§5.2 ablation: publish/subscribe versus periodic polling.

The paper argues re-selection should be demand-driven: "the frequency
of the checking ideally should be conducted in a demand-driven
fashion...  we propose to introduce publish/subscribe functionality".
This ablation quantifies the claim.  Starting from the same built
overlay, a wave of new nodes joins under two maintenance regimes:

* **pubsub** -- every existing node subscribes to the regions behind
  its expressway entries with a closer-candidate condition; matching
  joins trigger targeted re-selection of exactly the affected entry;
* **polling** -- nodes periodically re-run full table construction
  ("a node should periodically check the target high-order zone's
  map"), whether anything changed or not.

Reported: messages spent on maintenance during the churn phase and
the final routing stretch.  Equal-quality tables for far fewer
messages is the expected outcome.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, current_scale
from repro.experiments.fig10_13_stretch_rtts import build_overlay

#: message categories that count as maintenance traffic
MAINTENANCE_CATEGORIES = (
    "pubsub_subscribe",
    "pubsub_notify",
    "pubsub_unsubscribe",
    "neighbor_probe",
    "neighbor_select",
    "softstate_lookup",
    "table_repair",
    "maintenance_ping",
)


def _maintenance_messages(delta: dict) -> int:
    return sum(delta.get(cat, 0) for cat in MAINTENANCE_CATEGORIES)


def run_mode(
    mode: str,
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    polls: int = 4,
) -> dict:
    """One churn phase under ``mode`` ("pubsub" | "polling" | "none")."""
    if scale is None:
        scale = current_scale()
    base_nodes = scale.overlay_nodes
    joins = max(8, scale.churn_events)

    overlay = build_overlay(
        topology,
        latency,
        base_nodes,
        policy="softstate",
        topo_scale=scale.topo_scale,
        seed=seed,
    )
    network = overlay.network
    stats = network.stats

    if mode == "pubsub":
        for node_id in list(overlay.node_ids):
            overlay.enable_adaptive(node_id)
    before = stats.snapshot()

    poll_every = max(1, joins // max(polls, 1))
    for i in range(joins):
        overlay.add_node()
        if mode == "polling" and (i + 1) % poll_every == 0:
            for node_id in list(overlay.node_ids):
                overlay.ecan.build_table(node_id)

    # exclude ordinary join traffic from the maintenance accounting:
    # measure a control joining phase cost on the "none" mode instead
    delta = stats.delta(before)
    rng = np.random.default_rng(seed + 23)
    stretch = overlay.measure_stretch(
        samples=min(scale.route_samples, 2 * len(overlay)), rng=rng
    )
    return {
        "mode": mode,
        "final_nodes": len(overlay),
        "maintenance_messages": _maintenance_messages(delta),
        "notifications": delta.get("pubsub_notify", 0),
        "mean_stretch": float(stretch.mean()),
    }


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
) -> list:
    """Rows for the three modes: none (stale tables), polling, pubsub."""
    return [
        run_mode(mode, topology, latency, scale, seed)
        for mode in ("none", "polling", "pubsub")
    ]
