"""Figures 14-15: routing stretch vs. overlay size.

Landmarks and RTT budget fixed at their defaults (15 and 10); the
overlay size sweeps while the soft-state policy is compared against
random neighbor selection, on both topologies, for one latency model
per run.  The paper's observations:

* the global state improves stretch by a large constant factor;
* the improvement is larger on tsk-small (large stubs, cheap
  suboptimal routes keep even the random baseline lower, but the
  *relative* win of soft-state grows);
* stretch is roughly flat in N for the soft-state overlay.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, current_scale
from repro.experiments.fig10_13_stretch_rtts import build_overlay


def run(
    latency: str,
    scale: Scale = None,
    seed: int = 0,
    topologies: tuple = ("tsk-large", "tsk-small"),
    policies: tuple = ("softstate", "random"),
) -> list:
    """Rows: {"topology", "policy", "N", "mean_stretch"}."""
    if scale is None:
        scale = current_scale()
    rows = []
    for topology in topologies:
        for num_nodes in scale.node_sweep:
            for policy in policies:
                overlay = build_overlay(
                    topology,
                    latency,
                    num_nodes,
                    policy=policy,
                    topo_scale=scale.topo_scale,
                    seed=seed,
                )
                samples = min(scale.route_samples, 2 * num_nodes)
                rng = np.random.default_rng(seed + 13)
                stretch = overlay.measure_stretch(samples=samples, rng=rng)
                rows.append(
                    {
                        "topology": topology,
                        "policy": policy,
                        "N": num_nodes,
                        "mean_stretch": float(stretch.mean()),
                    }
                )
    return rows
