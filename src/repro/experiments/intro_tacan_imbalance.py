"""§1 claim: Topologically-Aware CAN's geographic layout is unbalanced.

"Our study shows that, for a typical 10,000-node Topologically-Aware
CAN, 10% of the nodes can occupy 80-98% of the entire Cartesian space,
and some nodes have to maintain 20-30 neighbors."  (Digits restored
per DESIGN.md.)

Topologically-Aware CAN (Ratnasamy et al.) *constrains* the overlay
layout with landmark ordering: the space is cut into m! equal slices
along one axis, one per landmark permutation, and a joining node
picks its random point inside its own ordering's slice.  Because node
orderings are wildly non-uniform (most stubs agree on the landmark
ranking), a few slices absorb almost everyone while untouched slices
remain as huge zones owned by early joiners.

This runner builds such a CAN over a transit-stub topology and
reports the concentration of zone volume and the neighbor-count tail.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.common import Scale, bulk_vectors, current_scale, get_network
from repro.overlay import CanOverlay
from repro.proximity import select_landmarks
from repro.proximity.landmarks import landmark_order


def _ordering_slice(order: tuple, num_landmarks: int) -> int:
    """Lexicographic rank of a landmark permutation (its slice index)."""
    rank = 0
    remaining = list(range(num_landmarks))
    for position, landmark in enumerate(order):
        index = remaining.index(landmark)
        rank += index * math.factorial(num_landmarks - position - 1)
        remaining.pop(index)
    return rank


def build_tacan(
    network,
    num_nodes: int,
    num_landmarks: int = 4,
    seed: int = 0,
) -> CanOverlay:
    """A Topologically-Aware CAN: join points constrained by ordering."""
    rng = np.random.default_rng(seed)
    landmarks = select_landmarks(network, num_landmarks, rng)
    hosts = network.sample_hosts(num_nodes, rng)
    vectors = bulk_vectors(network, landmarks, hosts)
    slices = math.factorial(num_landmarks)
    can = CanOverlay(dims=2, rng=rng)
    for i, host in enumerate(hosts):
        order = landmark_order(vectors[i])
        slice_index = _ordering_slice(order, num_landmarks)
        x = (slice_index + float(rng.random())) / slices
        point = (min(x, np.nextafter(1.0, 0.0)), float(rng.random()))
        can.join(int(i), int(host), point=point)
    return can


def concentration(volumes: np.ndarray, space_fraction: float) -> float:
    """Smallest fraction of nodes owning ``space_fraction`` of the space."""
    ordered = np.sort(volumes)[::-1]
    cumulative = np.cumsum(ordered)
    needed = int(np.searchsorted(cumulative, space_fraction)) + 1
    return needed / len(volumes)


def run(
    topology: str = "tsk-large",
    latency: str = "generated",
    scale: Scale = None,
    num_landmarks: int = 4,
    seed: int = 0,
) -> dict:
    """Imbalance summary of a Topologically-Aware CAN vs a uniform CAN."""
    if scale is None:
        scale = current_scale()
    network = get_network(topology, latency, scale.topo_scale, seed)
    num_nodes = scale.overlay_nodes

    tacan = build_tacan(network, num_nodes, num_landmarks=num_landmarks, seed=seed)
    uniform = CanOverlay(dims=2, rng=np.random.default_rng(seed + 1))
    for i in range(num_nodes):
        uniform.join(i, host=i)

    def stats(can: CanOverlay) -> dict:
        volumes = np.array([n.total_volume() for n in can.nodes.values()])
        degrees = np.array([len(n.neighbors) for n in can.nodes.values()])
        return {
            "nodes_for_80pct_space": concentration(volumes, 0.80),
            "nodes_for_98pct_space": concentration(volumes, 0.98),
            "max_neighbors": int(degrees.max()),
            "mean_neighbors": float(degrees.mean()),
            "max_volume_ratio": float(volumes.max() / volumes.mean()),
        }

    return {
        "N": num_nodes,
        "landmarks": num_landmarks,
        "tacan": stats(tacan),
        "uniform": stats(uniform),
    }
