"""§6 experiment: trading network distance for forwarding headroom.

Nodes have heterogeneous (Pareto) forwarding capacities.  A skewed
lookup workload is routed over the overlay and per-node forwarding
load accumulates; loads are published into the soft-state; tables are
rebuilt; the workload repeats.  Load-aware selection (``load_weight >
0`` in the policy) should flatten the utilization tail at a modest
stretch cost versus pure proximity selection.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import gini
from repro.core.qos import LoadTracker, pareto_capacities
from repro.experiments.common import Scale, current_scale, get_network
from repro.core.builder import TopologyAwareOverlay
from repro.core.config import OverlayParams
from repro.workloads import zipf_points


def _route_workload(overlay, tracker, keys, rng) -> list:
    """Route a lookup per key from a random member; returns stretches."""
    ids = np.asarray(overlay.node_ids)
    stretches = []
    for key in keys:
        src = int(rng.choice(ids))
        result = overlay.ecan.route(src, tuple(key), category="lookup_route")
        if not result.success:
            continue
        tracker.record_route(result)
        src_host = overlay.ecan.can.nodes[src].host
        dst_host = overlay.ecan.can.nodes[result.owner].host
        direct = overlay.network.latency(src_host, dst_host)
        if direct > 1e-9:
            stretches.append(
                result.latency(overlay.ecan.can, overlay.network) / direct
            )
    return stretches


def run_weight(
    load_weight: float,
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    messages: int = None,
) -> dict:
    """One full adapt-then-measure cycle at a given ``load_weight``."""
    if scale is None:
        scale = current_scale()
    if messages is None:
        messages = min(scale.route_samples, 4 * scale.overlay_nodes)
    network = get_network(topology, latency, scale.topo_scale, seed)
    rng = np.random.default_rng(seed + 31)

    params = OverlayParams(
        num_nodes=scale.overlay_nodes,
        policy="softstate",
        load_weight=load_weight,
        seed=seed + 41,
    )
    overlay = TopologyAwareOverlay(network, params)
    capacities = pareto_capacities(rng, params.num_nodes, alpha=1.2)
    for capacity in capacities:
        overlay.add_node(capacity=float(capacity))

    keys = zipf_points(messages, overlay.params.dims, rng, distinct=48)
    tracker = LoadTracker(overlay, window=max(1.0, messages / 10))

    # phase 1: observe load under initial (proximity-only-informed) tables
    _route_workload(overlay, tracker, keys, rng)
    tracker.publish_all()
    # adapt: rebuild tables now that load statistics are published
    for node_id in list(overlay.node_ids):
        overlay.ecan.build_table(node_id)
    # phase 2: measure under adapted tables
    tracker.reset_window()
    stretches = _route_workload(overlay, tracker, keys, rng)
    tracker.publish_all()

    utilization = np.array(list(tracker.utilization().values()))
    return {
        "load_weight": load_weight,
        "mean_stretch": float(np.mean(stretches)) if stretches else float("nan"),
        "max_utilization": float(utilization.max()) if utilization.size else 0.0,
        "p99_utilization": float(np.percentile(utilization, 99))
        if utilization.size
        else 0.0,
        "load_gini": gini(utilization) if utilization.size else 0.0,
    }


def run(
    topology: str = "tsk-large",
    latency: str = "manual",
    scale: Scale = None,
    seed: int = 0,
    weights: tuple = (0.0, 0.5, 2.0),
) -> list:
    """Rows comparing proximity-only and load-aware selection."""
    return [run_weight(w, topology, latency, scale, seed) for w in weights]
