"""Figure 2: eCAN routing hops versus basic CAN of higher dimension.

The paper shows that a 2-dimensional eCAN ("EXP") reaches O(log N)
logical hops and beats plain CAN even at dimensionality 5, whose hops
grow as ~(d/4) N^(1/d).  We rebuild the sweep: for each overlay size
N, join N nodes into (a) plain CANs of each dimensionality and (b) a
2-d eCAN with random expressway neighbors, then measure mean logical
hops over random member pairs.

Physical hosts are irrelevant to hop counts, so joins use a synthetic
host id and no landmark machinery.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Scale, current_scale
from repro.overlay import CanOverlay, EcanOverlay


def _measure_hops(overlay, node_ids, samples: int, rng) -> float:
    nodes = overlay.nodes if isinstance(overlay, EcanOverlay) else overlay.nodes
    ids = np.asarray(node_ids)
    hops = []
    for _ in range(samples):
        src, dst = rng.choice(ids, size=2, replace=False)
        target = nodes[int(dst)].zone.center()
        result = overlay.route(int(src), target)
        if result.success:
            hops.append(result.hops)
    return float(np.mean(hops)) if hops else float("nan")


def build_can(num_nodes: int, dims: int, seed: int = 0) -> CanOverlay:
    """A plain CAN of ``num_nodes`` synthetic members."""
    can = CanOverlay(dims=dims, rng=np.random.default_rng(seed))
    for i in range(num_nodes):
        can.join(i, host=i)
    return can


def build_ecan(num_nodes: int, dims: int = 2, seed: int = 0) -> EcanOverlay:
    """An eCAN of ``num_nodes`` synthetic members (random expressways)."""
    ecan = EcanOverlay(dims=dims, rng=np.random.default_rng(seed))
    for i in range(num_nodes):
        ecan.join(i, host=i)
    return ecan


def run(scale: Scale = None, seed: int = 0, samples: int = None) -> list:
    """Rows: {"variant", "N", "mean_hops"} for every Figure-2 series."""
    if scale is None:
        scale = current_scale()
    if samples is None:
        samples = min(400, scale.route_samples)
    rng = np.random.default_rng(seed)
    rows = []
    for num_nodes in scale.fig2_sweep:
        for dims in scale.fig2_dims:
            can = build_can(num_nodes, dims, seed=seed)
            rows.append(
                {
                    "variant": f"CAN, d={dims}",
                    "N": num_nodes,
                    "mean_hops": _measure_hops(can, range(num_nodes), samples, rng),
                }
            )
        ecan = build_ecan(num_nodes, dims=2, seed=seed)
        rows.append(
            {
                "variant": "eCAN (EXP), d=2",
                "N": num_nodes,
                "mean_hops": _measure_hops(ecan, range(num_nodes), samples, rng),
            }
        )
    return rows
