"""Experiment runners: one module per paper figure/claim.

Every runner returns plain row dictionaries so the benches, the
EXPERIMENTS.md generator and the tests can all consume them.  Scale
comes from :func:`repro.experiments.common.current_scale` -- set
``REPRO_SCALE=paper`` for full-size runs (the default ``quick``
preset keeps each bench in seconds).
"""

from repro.experiments.common import (
    SCALES,
    Scale,
    current_scale,
    format_table,
    get_network,
)

__all__ = ["SCALES", "Scale", "current_scale", "format_table", "get_network"]
