"""One overlay member as a run-to-completion async actor.

A :class:`NodeProcess` owns an address on the transport, a FIFO
mailbox, and (once joined) an overlay node id.  Frames dispatch one
at a time in mailbox order, so all overlay-state access from a node
is serialized -- the actor model's usual guarantee.  Responses
(ACK / ERROR) bypass the mailbox and resolve the pending request
future directly: a node awaiting a reply never deadlocks behind its
own queue.

Dispatch is *run-to-completion*: an idle actor drains its mailbox
inline on the delivering task's stack instead of waking a dedicated
run-loop task, which removes an event-loop round trip from every hop
on the routing hot path.  A busy actor (``_draining``) just enqueues
-- the active drain picks the frame up, preserving serialization.
Deep loopback chains (each inline hop nests the Python stack) spill
to a scheduled drain task past :attr:`NodeProcess.MAX_INLINE_DEPTH`
so a pathological ``max_hops``-length route cannot overflow the
interpreter's recursion limit.

Routing is hop-by-hop over the wire: each actor makes exactly one
forwarding decision (:meth:`EcanOverlay.next_hop`, the fault-free
branch of the simulator's ``route``) and sends the ROUTE frame to the
chosen peer; the final owner replies straight to the origin.  The
wire therefore carries the same hop sequence the synchronous
simulator would produce for the same tessellation, which is what the
cluster's sim-parity check relies on.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque

from repro.runtime.transport import TransportError
from repro.runtime.wire import Frame, MsgType
from repro.softstate.maps import Region


#: kind -> kind.name (enum ``.name`` is a descriptor; skip it per frame)
_KIND_NAME = {member: member.name for member in MsgType}


class RemoteError(Exception):
    """A peer answered with an ERROR frame."""


class RequestTimeout(Exception):
    """No reply arrived within the request deadline."""


class NodeProcess:
    """An async overlay-node actor speaking the wire protocol."""

    def __init__(self, cluster, addr, host: int = None):
        self.cluster = cluster
        #: transport address; a temporary string while joining, the
        #: overlay node id (int) once a member
        self.addr = addr
        self.host = host
        self.mailbox: deque = deque()
        #: request_id -> Future awaiting an ACK/ERROR
        self.pending: dict = {}
        self._req_ids = itertools.count(1)
        self._draining = False
        self._stopped = True
        #: frames this actor processed, by kind name (diagnostics)
        self.handled: dict = {}
        #: request attempts this actor resent under its retry policy
        self.retries = 0

    @property
    def node_id(self):
        """Overlay node id (None until the join completes)."""
        return self.addr if isinstance(self.addr, int) else None

    @property
    def transport(self):
        return self.cluster.transport

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stopped = False
        await self.transport.bind(self.addr, self.on_frame, host=self.host)

    async def stop(self) -> None:
        # an in-flight drain (running on whichever task delivered the
        # frame) halts before its next dispatch; queued frames drop,
        # matching the old cancel-the-run-loop semantics
        self._stopped = True
        self.mailbox.clear()
        await self.transport.unbind(self.addr)
        # fail pending requests rather than cancelling them: a
        # CancelledError is a BaseException and would tear straight
        # through an awaiting load generator's error handling, turning
        # a crashed peer into a crashed workload
        for future in self.pending.values():
            if not future.done():
                future.set_exception(
                    TransportError(f"node {self.addr!r} stopped")
                )
        self.pending.clear()

    async def rebind(self, addr, host: int = None) -> None:
        """Adopt a new address (temporary joiner -> member node id)."""
        await self.transport.unbind(self.addr)
        self.addr = addr
        if host is not None:
            self.host = host
        await self.transport.bind(self.addr, self.on_frame, host=self.host)

    # -- frame plumbing ----------------------------------------------------

    #: inline loopback chains nested deeper than this (one level per
    #: actor handing off to the next) spill to a scheduled drain task,
    #: keeping a max_hops-length route clear of the recursion limit
    MAX_INLINE_DEPTH = 64
    _inline_depth = 0

    async def on_frame(self, frame: Frame) -> None:
        """Transport delivery callback."""
        if frame.kind in (MsgType.ACK, MsgType.ERROR):
            future = self.pending.pop(frame.request_id, None)
            if future is not None and not future.done():
                if frame.kind is MsgType.ERROR:
                    future.set_exception(
                        RemoteError(frame.payload.get("error", "remote error"))
                    )
                else:
                    future.set_result(frame.payload)
            return
        self.mailbox.append(frame)
        if self._draining or self._stopped:
            return  # the active drain picks it up / actor is gone
        if NodeProcess._inline_depth < self.MAX_INLINE_DEPTH:
            await self._drain()
        else:
            asyncio.get_running_loop().create_task(self._drain())

    #: dispatch-error reprs kept per actor before truncation
    MAX_ERROR_REPRS = 16

    async def _drain(self) -> None:
        if self._draining:  # single-threaded loop: check-and-set is atomic
            return
        self._draining = True
        NodeProcess._inline_depth += 1
        try:
            while self.mailbox and not self._stopped:
                frame = self.mailbox.popleft()
                name = _KIND_NAME[frame.kind]
                self.handled[name] = self.handled.get(name, 0) + 1
                try:
                    await self._dispatch(frame)
                except Exception as exc:  # answer rather than kill the actor
                    # a srcless frame has nobody to bounce the ERROR to,
                    # so without this accounting the failure would vanish
                    # until the requester's timeout: count every dispatch
                    # error and keep the repr visible in the diagnostics
                    self.cluster.network.telemetry.bump(
                        "runtime_dispatch_error"
                    )
                    errors = self.handled.setdefault("dispatch_errors", [])
                    if len(errors) < self.MAX_ERROR_REPRS:
                        errors.append(f"{name}: {exc!r}")
                    src = frame.payload.get("src")
                    if src is not None:
                        await self.transport.send(
                            self.addr,
                            src,
                            frame.reply(
                                {"error": repr(exc)}, kind=MsgType.ERROR
                            ),
                        )
        finally:
            NodeProcess._inline_depth -= 1
            self._draining = False

    async def request(
        self, dst, kind: MsgType, payload: dict, timeout=None, retry=None
    ) -> dict:
        """Send one frame and await the correlated ACK payload.

        ``retry`` selects the resend policy: ``None`` uses the
        cluster-wide :attr:`ClusterConfig.retry` (no resend when that
        is unset too), ``False`` forces a single attempt, and a
        :class:`~repro.core.reliability.RetryPolicy` overrides both.
        Lost or unanswered attempts back off by the policy's schedule
        -- interpreted as wall milliseconds -- and the shared policy
        instance accumulates the retry/backoff accounting, giving
        cluster-wide counters for free.  A :class:`RemoteError` is
        never retried: the peer answered, it just said no.
        """
        if retry is None:
            retry = self.cluster.config.retry
        attempts = 1 if retry in (None, False) else retry.max_attempts
        failure = None
        for attempt in range(attempts):
            try:
                return await self._request_once(dst, kind, payload, timeout)
            except (TransportError, RequestTimeout) as exc:
                failure = exc
                if attempt + 1 < attempts:
                    self.retries += 1
                    delay_ms = retry.sleep(attempt)
                    if delay_ms > 0.0:
                        await asyncio.sleep(delay_ms / 1000.0)
        raise failure

    async def _request_once(self, dst, kind: MsgType, payload: dict, timeout) -> dict:
        if timeout is None:
            timeout = self.cluster.config.request_timeout
        request_id = next(self._req_ids)
        future = asyncio.get_running_loop().create_future()
        self.pending[request_id] = future
        frame = Frame(kind, request_id, {**payload, "src": self.addr})
        if dst == self.addr:
            # a self-addressed frame never crosses a network in any
            # real deployment, so it skips the transport (and its
            # codec round trip, faults, and shaping) and dispatches
            # straight off the mailbox; the payload built above is
            # this frame's private copy, as a decode would guarantee
            await self.on_frame(frame)
        else:
            sent = await self.transport.send(self.addr, dst, frame)
            if not sent:
                self.pending.pop(request_id, None)
                raise TransportError(f"frame to {dst!r} was not sent")
        if future.done():
            # run-to-completion dispatch often resolves the future
            # inside send(); skip wait_for's timer setup entirely
            return future.result()
        # a crash may fail this future after its awaiter timed out and
        # moved on; retrieve defensively so no "exception was never
        # retrieved" noise outlives the actor (a future consumed on
        # the fast path above never needs the callback)
        future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.pending.pop(request_id, None)
            raise RequestTimeout(
                f"{kind.name} to {dst!r} unanswered after {timeout}s"
            ) from None

    # -- RPC entry points (called by the Cluster) --------------------------

    async def rpc_route(self, point, op: str = "route", timeout=None) -> dict:
        """Route ``point`` over the wire from this node; returns the ACK.

        The first forwarding decision runs through the same machinery
        as every later hop: the ROUTE frame is addressed to *this*
        node and dispatched from its own mailbox (delivered locally --
        a self-send never touches the wire).
        """
        return await self.request(
            self.addr,
            MsgType.ROUTE,
            {"point": [float(x) for x in point], "path": [self.addr], "op": op},
            timeout=timeout,
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, frame: Frame) -> None:
        if frame.kind is MsgType.ROUTE:
            await self._handle_route(frame)
        elif frame.kind is MsgType.JOIN:
            await self._handle_join(frame)
        elif frame.kind is MsgType.PUBLISH:
            await self._handle_publish(frame)
        elif frame.kind is MsgType.LOOKUP:
            await self._handle_lookup(frame)
        elif frame.kind is MsgType.HEARTBEAT:
            await self._handle_heartbeat(frame)
        else:  # pragma: no cover - on_frame filters ACK/ERROR already
            raise ValueError(f"unroutable frame kind {frame.kind!r}")

    async def _reply(self, frame: Frame, payload: dict, kind=None) -> None:
        dst = frame.payload.get("src")
        if dst is not None:
            await self.transport.send(self.addr, dst, frame.reply(payload, kind=kind))

    async def _handle_heartbeat(self, frame: Frame) -> None:
        """Answer a liveness probe; with ``relay`` set, probe on behalf.

        A ``relay`` payload is SWIM's indirect ping-req: this node is a
        witness, heartbeats the relay target itself, and reports in the
        reply whether the target answered -- so a prober whose direct
        path is down can still refute a suspicion through k witnesses.
        Plain heartbeats keep the bare ``{"seq", "from"}`` reply shape.
        """
        payload = frame.payload
        seq = payload.get("seq")
        relay = payload.get("relay")
        if relay is None:
            await self._reply(frame, {"seq": seq, "from": self.addr})
            return
        timeout = payload.get("timeout", self.cluster.config.probe_timeout)
        try:
            await self.request(
                relay, MsgType.HEARTBEAT, {"seq": seq}, timeout=timeout, retry=False
            )
            answered = True
        except Exception:
            answered = False
        await self._reply(
            frame, {"seq": seq, "from": self.addr, "relay": relay, "ok": answered}
        )

    async def _handle_join(self, frame: Frame) -> None:
        """Admit a newcomer (bootstrap-node duty)."""
        node_id, host = self.cluster.admit(capacity=frame.payload.get("capacity", 1.0))
        await self._reply(frame, {"node_id": node_id, "host": host})

    async def _handle_publish(self, frame: Frame) -> None:
        regions = self.cluster.overlay.store.publish(self.node_id)
        await self._reply(frame, {"regions": regions, "node_id": self.node_id})

    async def _handle_lookup(self, frame: Frame) -> None:
        """Serve a soft-state map read from this node's shard."""
        await self._reply(frame, await self._serve_map_read(frame.payload))

    #: forwarding-kind -> message-stats counter (saves an f-string per hop)
    _HOP_STAT = {"can": "runtime_can_hop", "expressway": "runtime_expressway_hop"}

    async def _handle_route(self, frame: Frame) -> None:
        # hot path: `payload` is this frame's private decoded dict, so
        # the forward below may mutate it in place, and `path` rides
        # through next_hop as the visited collection (membership only)
        payload = frame.payload
        path = payload["path"]
        cluster = self.cluster
        node_id = self.node_id
        next_id, kind = cluster.overlay.ecan.next_hop(
            node_id, payload["point"], visited=path
        )
        if kind == "delivered":
            result = {
                "owner": node_id,
                "path": path,
                "hops": len(path) - 1,
            }
            if payload.get("op") == "lookup" and "level" in payload:
                # map read at the serving node, fused into the delivery
                lookup = await self._serve_map_read(payload)
                result.update(lookup)
            await self._reply(frame, result)
            return
        if next_id is None or len(path) > cluster.config.max_hops:
            await self._reply(
                frame,
                {"error": f"route stuck after {len(path) - 1} hops", "path": path},
                kind=MsgType.ERROR,
            )
            return
        network = cluster.network
        network.stats.count(self._HOP_STAT[kind])
        network.telemetry.bump("runtime_hop")
        payload["path"] = path + [next_id]
        forwarded = Frame(MsgType.ROUTE, frame.request_id, payload)
        sent = await self.transport.send(self.addr, next_id, forwarded)
        if not sent:
            await self._reply(
                frame,
                {"error": f"hop {self.addr}->{next_id} dropped", "path": path},
                kind=MsgType.ERROR,
            )

    async def _serve_map_read(self, payload: dict) -> dict:
        store = self.cluster.overlay.store
        region = Region(
            int(payload["level"]), tuple(int(c) for c in payload["cell"])
        )
        result = store.lookup(int(payload["querier"]), region, charge=False)
        return {
            "served_by": result.served_by,
            "widened": result.widened,
            "records": [record.node_id for record in result.records],
        }
