"""One overlay member as a run-to-completion async actor.

A :class:`NodeProcess` owns an address on the transport, a two-lane
mailbox, and (once joined) an overlay node id.  Frames dispatch one
at a time in mailbox order, so all overlay-state access from a node
is serialized -- the actor model's usual guarantee.  Responses
(ACK / ERROR / BUSY) bypass the mailbox and resolve the pending
request future directly: a node awaiting a reply never deadlocks
behind its own queue.

Overload protection (PR 8) splits the mailbox into two lanes:

* the **control lane** (HEARTBEAT, JOIN) is unbounded and drained
  first, so liveness probes and membership traffic keep flowing no
  matter how much data traffic piles up -- an overloaded node must
  stay distinguishable from a crashed one;
* the **data lane** (ROUTE, LOOKUP, PUBLISH) is capped at
  ``ClusterConfig.mailbox_cap``.  A frame that would overflow it is
  *shed*: dropped, counted (``runtime_shed``), and answered with a
  BUSY frame to the request origin so the client backs off instead
  of waiting out a timeout.  ``shed_policy="oldest"`` drops the head
  of the queue (the arrival is admitted -- freshest work survives),
  ``"newest"`` refuses the arrival itself.

Dispatch is *run-to-completion* on the forwarding path: a nested
inline hop (one actor handing a ROUTE to the next on the same stack)
drains the receiving mailbox inline, which removes an event-loop
round trip from every hop.  *Ingress* deliveries -- the outermost
frame of a chain -- instead enqueue and kick a single drain task per
actor, and that task yields to the event loop every
:attr:`NodeProcess.YIELD_EVERY` frames: without that decoupling a
saturating data flood would run each request to completion on the
arrival stack, the lanes would never fill, and heartbeats would
starve behind the ready queue rather than the mailbox.  Chains
deeper than :attr:`NodeProcess.MAX_INLINE_DEPTH` spill to the drain
task as before, keeping a ``max_hops``-length route clear of the
interpreter's recursion limit.

Client-side reaction lives in :meth:`NodeProcess.request`: BUSY
replies retry on a decorrelated-jitter schedule, a per-peer
:class:`~repro.core.reliability.CircuitBreaker` fast-fails locally
after ``breaker_threshold`` consecutive BUSY/timeout failures, and
per-peer Jacobson RTO (:class:`~repro.core.reliability.AdaptiveTimeout`)
replaces the static request timeout for data traffic once RTT
samples exist.

Routing is hop-by-hop over the wire: each actor makes exactly one
forwarding decision (:meth:`EcanOverlay.next_hop`, the fault-free
branch of the simulator's ``route``) and sends the ROUTE frame to the
chosen peer; the final owner replies straight to the origin.  The
wire therefore carries the same hop sequence the synchronous
simulator would produce for the same tessellation, which is what the
cluster's sim-parity check relies on.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque

from repro.core.reliability import (
    AdaptiveTimeout,
    CircuitBreaker,
    CircuitOpenError,
    DecorrelatedJitter,
)
from repro.runtime.transport import TransportError
from repro.runtime.wire import Frame, MsgType
from repro.softstate.maps import Region


#: kind -> kind.name (enum ``.name`` is a descriptor; skip it per frame)
_KIND_NAME = {member: member.name for member in MsgType}

#: never shed, drained before any data frame
_CONTROL_KINDS = frozenset({MsgType.HEARTBEAT, MsgType.JOIN})

#: capped lane; sheds answer BUSY to the request origin
_DATA_KINDS = frozenset({MsgType.ROUTE, MsgType.LOOKUP, MsgType.PUBLISH})


class RemoteError(Exception):
    """A peer answered with an ERROR frame."""


class RequestTimeout(Exception):
    """No reply arrived within the request deadline."""


class PeerBusy(Exception):
    """A peer shed the request from a full data lane (BUSY frame)."""


class NodeProcess:
    """An async overlay-node actor speaking the wire protocol."""

    def __init__(self, cluster, addr, host: int = None):
        self.cluster = cluster
        #: transport address; a temporary string while joining, the
        #: overlay node id (int) once a member
        self.addr = addr
        self.host = host
        #: HEARTBEAT/JOIN frames; unbounded, drained first
        self.control_lane: deque = deque()
        #: ROUTE/LOOKUP/PUBLISH frames; capped at config.mailbox_cap
        self.data_lane: deque = deque()
        #: request_id -> Future awaiting an ACK/ERROR/BUSY
        self.pending: dict = {}
        self._req_ids = itertools.count(1)
        self._draining = False
        self._drain_task = None
        self._stopped = True
        #: frames this actor processed, by kind name (diagnostics)
        self.handled: dict = {}
        #: request attempts this actor resent under its retry policy
        self.retries = 0
        #: BUSY replies this actor retried after backoff
        self.busy_retries = 0
        #: dst -> CircuitBreaker (data-kind requests only)
        self._breakers: dict = {}
        #: dst -> AdaptiveTimeout (data-kind requests only)
        self._rtos: dict = {}

    @property
    def node_id(self):
        """Overlay node id (None until the join completes)."""
        return self.addr if isinstance(self.addr, int) else None

    @property
    def transport(self):
        return self.cluster.transport

    @property
    def mailbox_depth(self) -> int:
        """Total queued frames across both lanes (diagnostics)."""
        return len(self.control_lane) + len(self.data_lane)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._stopped = False
        await self.transport.bind(self.addr, self.on_frame, host=self.host)

    async def stop(self) -> None:
        # an in-flight drain (running on whichever task delivered the
        # frame) halts before its next dispatch; queued frames drop --
        # visibly: each cleared frame counts as runtime_crash_dropped
        # so a crash can never silently eat queued work
        self._stopped = True
        dropped = len(self.control_lane) + len(self.data_lane)
        if dropped:
            self.cluster.network.telemetry.bump("runtime_crash_dropped", dropped)
        self.control_lane.clear()
        self.data_lane.clear()
        # fail pending requests *before* the unbind await: callers
        # learn of the crash immediately instead of racing the event
        # loop until their timeout.  Failing (not cancelling) keeps a
        # CancelledError -- a BaseException -- from tearing through an
        # awaiting load generator's error handling.
        pending = list(self.pending.values())
        self.pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    TransportError(f"node {self.addr!r} stopped")
                )
        await self.transport.unbind(self.addr)

    async def rebind(self, addr, host: int = None) -> None:
        """Adopt a new address (temporary joiner -> member node id)."""
        await self.transport.unbind(self.addr)
        self.addr = addr
        if host is not None:
            self.host = host
        await self.transport.bind(self.addr, self.on_frame, host=self.host)

    # -- frame plumbing ----------------------------------------------------

    #: inline loopback chains nested deeper than this (one level per
    #: actor handing off to the next) spill to a scheduled drain task,
    #: keeping a max_hops-length route clear of the recursion limit
    MAX_INLINE_DEPTH = 64
    _inline_depth = 0

    #: an outermost drain task yields to the event loop this often so
    #: transport deliveries (heartbeats!) interleave with a deep drain
    YIELD_EVERY = 32

    async def on_frame(self, frame: Frame) -> None:
        """Transport delivery callback."""
        kind = frame.kind
        if kind is MsgType.ACK or kind is MsgType.ERROR or kind is MsgType.BUSY:
            future = self.pending.pop(frame.request_id, None)
            if future is not None and not future.done():
                if kind is MsgType.ACK:
                    future.set_result(frame.payload)
                elif kind is MsgType.BUSY:
                    future.set_exception(
                        PeerBusy(
                            f"peer {frame.payload.get('from')!r} shed "
                            f"{frame.payload.get('shed', 'request')}"
                        )
                    )
                else:
                    future.set_exception(
                        RemoteError(frame.payload.get("error", "remote error"))
                    )
            return
        if self._stopped:
            return  # the actor is gone; arrivals drop on the floor
        if kind in _CONTROL_KINDS:
            self.control_lane.append(frame)
        else:
            cap = self.cluster.config.mailbox_cap
            lane = self.data_lane
            if cap is not None and len(lane) >= cap:
                if self.cluster.config.shed_policy == "oldest":
                    # admit the arrival, shed the head: under sustained
                    # overload the freshest work is the likeliest to
                    # still have a waiting client
                    await self._shed(lane.popleft())
                    lane.append(frame)
                else:  # "newest": refuse the arrival itself
                    await self._shed(frame)
            else:
                lane.append(frame)
        if self._draining:
            return  # the active drain picks it up
        depth = NodeProcess._inline_depth
        if 0 < depth < self.MAX_INLINE_DEPTH:
            # nested hop of an in-flight chain: run to completion on
            # the delivering stack (the per-hop fast path)
            await self._drain()
        else:
            # ingress (depth 0) or too-deep chain: decouple from the
            # arrival stack so floods queue in the *lanes* (where the
            # cap and shed policy apply) instead of the ready queue
            self._kick()

    def _kick(self) -> None:
        """Ensure exactly one scheduled drain task is alive."""
        task = self._drain_task
        if task is not None and not task.done():
            return
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def _shed(self, frame: Frame) -> None:
        """Drop ``frame`` from a full data lane and tell its origin."""
        self.cluster.network.telemetry.bump("runtime_shed")
        src = frame.payload.get("src")
        if src is not None:
            await self.transport.send(
                self.addr,
                src,
                frame.reply(
                    {"from": self.addr, "shed": _KIND_NAME[frame.kind]},
                    kind=MsgType.BUSY,
                ),
            )

    #: dispatch-error reprs kept per actor before truncation
    MAX_ERROR_REPRS = 16

    async def _drain(self) -> None:
        if self._draining:  # single-threaded loop: check-and-set is atomic
            return
        self._draining = True
        outermost = NodeProcess._inline_depth == 0
        NodeProcess._inline_depth += 1
        processed = 0
        try:
            while not self._stopped:
                if self.control_lane:
                    frame = self.control_lane.popleft()
                elif self.data_lane:
                    frame = self.data_lane.popleft()
                else:
                    break
                name = _KIND_NAME[frame.kind]
                self.handled[name] = self.handled.get(name, 0) + 1
                try:
                    await self._dispatch(frame)
                except Exception as exc:  # answer rather than kill the actor
                    # a srcless frame has nobody to bounce the ERROR to,
                    # so without this accounting the failure would vanish
                    # until the requester's timeout: count every dispatch
                    # error and keep the repr visible in the diagnostics
                    self.cluster.network.telemetry.bump(
                        "runtime_dispatch_error"
                    )
                    errors = self.handled.setdefault("dispatch_errors", [])
                    if len(errors) < self.MAX_ERROR_REPRS:
                        errors.append(f"{name}: {exc!r}")
                    src = frame.payload.get("src")
                    if src is not None:
                        await self.transport.send(
                            self.addr,
                            src,
                            frame.reply(
                                {"error": repr(exc)}, kind=MsgType.ERROR
                            ),
                        )
                processed += 1
                if outermost and processed % self.YIELD_EVERY == 0:
                    # let queued transport deliveries land; control
                    # frames they bring are drained first on resume
                    await asyncio.sleep(0)
        finally:
            NodeProcess._inline_depth -= 1
            self._draining = False

    # -- client side -------------------------------------------------------

    def _breaker_for(self, dst):
        config = self.cluster.config
        if not config.breaker_threshold:
            return None
        breaker = self._breakers.get(dst)
        if breaker is None:
            breaker = self._breakers[dst] = CircuitBreaker(
                threshold=config.breaker_threshold,
                reset_timeout_s=config.breaker_reset_s,
            )
        return breaker

    def _rto_for(self, dst):
        rto = self._rtos.get(dst)
        if rto is None:
            config = self.cluster.config
            rto = self._rtos[dst] = AdaptiveTimeout(
                initial_s=config.request_timeout,
                min_s=min(config.rto_min_s, config.request_timeout),
                max_s=config.request_timeout,
            )
        return rto

    async def request(
        self, dst, kind: MsgType, payload: dict, timeout=None, retry=None
    ) -> dict:
        """Send one frame and await the correlated ACK payload.

        ``retry`` selects the resend policy: ``None`` uses the
        cluster-wide :attr:`ClusterConfig.retry` (no resend when that
        is unset too), ``False`` forces a single attempt, and a
        :class:`~repro.core.reliability.RetryPolicy` overrides both.
        Lost or unanswered attempts back off by the policy's schedule
        -- interpreted as wall milliseconds -- and the shared policy
        instance accumulates the retry/backoff accounting, giving
        cluster-wide counters for free.  A :class:`RemoteError` is
        never retried: the peer answered, it just said no.

        Data-kind requests additionally react to overload: a BUSY
        shed retries up to ``ClusterConfig.busy_retries`` times on a
        decorrelated-jitter schedule (separate from the loss-retry
        budget -- a shed is *positive* evidence the peer is alive),
        consecutive BUSY/timeout failures trip the per-peer circuit
        breaker, and while the breaker is open the request fast-fails
        locally with :class:`~repro.core.reliability.CircuitOpenError`
        instead of piling more load on the struggling peer.
        """
        if retry is None:
            retry = self.cluster.config.retry
        attempts = 1 if retry in (None, False) else retry.max_attempts
        config = self.cluster.config
        telemetry = self.cluster.network.telemetry
        data_kind = kind in _DATA_KINDS
        breaker = self._breaker_for(dst) if data_kind else None
        if breaker is not None and not breaker.allow():
            telemetry.bump("runtime_breaker_fastfail")
            raise CircuitOpenError(dst, breaker.retry_after_s())
        busy_budget = config.busy_retries if data_kind else 0
        jitter = None
        attempt = 0
        while True:
            try:
                result = await self._request_once(dst, kind, payload, timeout)
            except PeerBusy:
                telemetry.bump("runtime_busy_reply")
                if breaker is not None and breaker.record_failure():
                    telemetry.bump("runtime_breaker_open")
                if busy_budget <= 0:
                    raise
                busy_budget -= 1
                self.busy_retries += 1
                if jitter is None:
                    jitter = DecorrelatedJitter(
                        base_ms=config.busy_backoff_base_ms,
                        cap_ms=config.busy_backoff_cap_ms,
                    )
                await asyncio.sleep(jitter.next_delay() / 1000.0)
            except RequestTimeout:
                if breaker is not None and breaker.record_failure():
                    telemetry.bump("runtime_breaker_open")
                attempt += 1
                if attempt >= attempts:
                    raise
                self.retries += 1
                delay_ms = retry.sleep(attempt - 1)
                if delay_ms > 0.0:
                    await asyncio.sleep(delay_ms / 1000.0)
            except TransportError:
                # refused sends feed the failure detector, not the
                # breaker: a dead peer needs takeover, not backoff
                attempt += 1
                if attempt >= attempts:
                    raise
                self.retries += 1
                delay_ms = retry.sleep(attempt - 1)
                if delay_ms > 0.0:
                    await asyncio.sleep(delay_ms / 1000.0)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    async def _request_once(self, dst, kind: MsgType, payload: dict, timeout) -> dict:
        config = self.cluster.config
        rto = None
        if timeout is None:
            if config.adaptive_timeout and kind in _DATA_KINDS:
                rto = self._rto_for(dst)
                timeout = rto.timeout()
            else:
                timeout = config.request_timeout
        request_id = next(self._req_ids)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self.pending[request_id] = future
        frame = Frame(kind, request_id, {**payload, "src": self.addr})
        started = loop.time()
        if dst == self.addr:
            # a self-addressed frame never crosses a network in any
            # real deployment, so it skips the transport (and its
            # codec round trip, faults, and shaping) and dispatches
            # straight off the mailbox; the payload built above is
            # this frame's private copy, as a decode would guarantee
            await self.on_frame(frame)
        else:
            sent = await self.transport.send(self.addr, dst, frame)
            if not sent:
                self.pending.pop(request_id, None)
                raise TransportError(f"frame to {dst!r} was not sent")
        if future.done():
            # run-to-completion dispatch often resolves the future
            # inside send(); skip wait_for's timer setup entirely
            result = future.result()
            if rto is not None:
                rto.observe(loop.time() - started)
            return result
        # a crash may fail this future after its awaiter timed out and
        # moved on; retrieve defensively so no "exception was never
        # retrieved" noise outlives the actor (a future consumed on
        # the fast path above never needs the callback)
        future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        try:
            result = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.pending.pop(request_id, None)
            if rto is not None:
                rto.backoff()
            raise RequestTimeout(
                f"{kind.name} to {dst!r} unanswered after {timeout}s"
            ) from None
        if rto is not None:
            rto.observe(loop.time() - started)
        return result

    # -- RPC entry points (called by the Cluster) --------------------------

    async def rpc_route(self, point, op: str = "route", timeout=None) -> dict:
        """Route ``point`` over the wire from this node; returns the ACK.

        The first forwarding decision runs through the same machinery
        as every later hop: the ROUTE frame is addressed to *this*
        node and dispatched from its own mailbox (delivered locally --
        a self-send never touches the wire).
        """
        return await self.request(
            self.addr,
            MsgType.ROUTE,
            {"point": [float(x) for x in point], "path": [self.addr], "op": op},
            timeout=timeout,
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, frame: Frame) -> None:
        if frame.kind is MsgType.ROUTE:
            await self._handle_route(frame)
        elif frame.kind is MsgType.JOIN:
            await self._handle_join(frame)
        elif frame.kind is MsgType.PUBLISH:
            await self._handle_publish(frame)
        elif frame.kind is MsgType.LOOKUP:
            await self._handle_lookup(frame)
        elif frame.kind is MsgType.HEARTBEAT:
            await self._handle_heartbeat(frame)
        else:  # pragma: no cover - on_frame filters reply kinds already
            raise ValueError(f"unroutable frame kind {frame.kind!r}")

    async def _reply(self, frame: Frame, payload: dict, kind=None) -> None:
        dst = frame.payload.get("src")
        if dst is not None:
            await self.transport.send(self.addr, dst, frame.reply(payload, kind=kind))

    async def _handle_heartbeat(self, frame: Frame) -> None:
        """Answer a liveness probe; with ``relay`` set, probe on behalf.

        A ``relay`` payload is SWIM's indirect ping-req: this node is a
        witness, heartbeats the relay target itself, and reports in the
        reply whether the target answered -- so a prober whose direct
        path is down can still refute a suspicion through k witnesses.
        Plain heartbeats keep the bare ``{"seq", "from"}`` reply shape.
        """
        payload = frame.payload
        seq = payload.get("seq")
        relay = payload.get("relay")
        if relay is None:
            await self._reply(frame, {"seq": seq, "from": self.addr})
            return
        timeout = payload.get("timeout", self.cluster.config.probe_timeout)
        try:
            await self.request(
                relay, MsgType.HEARTBEAT, {"seq": seq}, timeout=timeout, retry=False
            )
            answered = True
        except Exception:
            answered = False
        await self._reply(
            frame, {"seq": seq, "from": self.addr, "relay": relay, "ok": answered}
        )

    async def _handle_join(self, frame: Frame) -> None:
        """Admit a newcomer (bootstrap-node duty)."""
        node_id, host = self.cluster.admit(capacity=frame.payload.get("capacity", 1.0))
        await self._reply(frame, {"node_id": node_id, "host": host})

    async def _handle_publish(self, frame: Frame) -> None:
        regions = self.cluster.routing.store.publish(self.node_id)
        await self._reply(frame, {"regions": regions, "node_id": self.node_id})

    async def _handle_lookup(self, frame: Frame) -> None:
        """Serve a soft-state map read from this node's shard."""
        await self._reply(frame, await self._serve_map_read(frame.payload))

    #: forwarding-kind -> message-stats counter (saves an f-string per hop)
    _HOP_STAT = {"can": "runtime_can_hop", "expressway": "runtime_expressway_hop"}

    async def _handle_route(self, frame: Frame) -> None:
        # hot path: `payload` is this frame's private decoded dict, so
        # the forward below may mutate it in place, and `path` rides
        # through next_hop as the visited collection (membership only)
        payload = frame.payload
        path = payload["path"]
        cluster = self.cluster
        node_id = self.node_id
        next_id, kind = cluster.routing.next_hop(
            node_id, payload["point"], visited=path
        )
        if kind == "delivered":
            result = {
                "owner": node_id,
                "path": path,
                "hops": len(path) - 1,
            }
            if payload.get("op") == "lookup" and "level" in payload:
                # map read at the serving node, fused into the delivery
                lookup = await self._serve_map_read(payload)
                result.update(lookup)
            await self._reply(frame, result)
            return
        if next_id is None or len(path) > cluster.config.max_hops:
            await self._reply(
                frame,
                {"error": f"route stuck after {len(path) - 1} hops", "path": path},
                kind=MsgType.ERROR,
            )
            return
        network = cluster.network
        network.stats.count(self._HOP_STAT[kind])
        network.telemetry.bump("runtime_hop")
        payload["path"] = path + [next_id]
        forwarded = Frame(MsgType.ROUTE, frame.request_id, payload)
        sent = await self.transport.send(self.addr, next_id, forwarded)
        if not sent:
            await self._reply(
                frame,
                {"error": f"hop {self.addr}->{next_id} dropped", "path": path},
                kind=MsgType.ERROR,
            )

    async def _serve_map_read(self, payload: dict) -> dict:
        store = self.cluster.routing.store
        region = Region(
            int(payload["level"]), tuple(int(c) for c in payload["cell"])
        )
        result = store.lookup(int(payload["querier"]), region, charge=False)
        return {
            "served_by": result.served_by,
            "widened": result.widened,
            "records": [record.node_id for record in result.records],
        }
